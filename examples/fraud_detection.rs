//! Fraud detection at growing feature counts: the scenario behind the
//! paper's Figs. 9-10, scaled to a laptop.
//!
//! Compares the quantum kernel against the Gaussian baseline while the
//! number of features (= qubits) grows, on the synthetic elliptic-like
//! dataset.
//!
//! Run with: `cargo run --release -p qk-core --example fraud_detection`

use qk_core::pipeline::{run_gaussian_experiment, run_quantum_experiment, ExperimentConfig};
use qk_data::{generate, SyntheticConfig};
use qk_svm::default_c_grid;
use qk_tensor::backend::CpuBackend;

fn main() {
    // A mid-size slice of the elliptic-like distribution.
    let data = generate(&SyntheticConfig {
        num_features: 48,
        num_illicit: 400,
        num_licit: 900,
        ..SyntheticConfig::elliptic_like(7)
    });
    let samples = 240;
    let feature_counts = [6usize, 12, 24, 48];
    let backend = CpuBackend::new();

    println!(
        "fraud detection, {} balanced samples (80/20 split)",
        samples
    );
    println!("\n features   quantum AUC   gaussian AUC   quantum train AUC");
    for &k in &feature_counts {
        let config = ExperimentConfig::qml(samples, k, 7);
        let quantum = run_quantum_experiment(&data, &config, &backend);
        let gaussian = run_gaussian_experiment(&data, samples, k, 7, &default_c_grid(), 1e-3);
        println!(
            " {:>8} {:>13.3} {:>14.3} {:>19.3}",
            k,
            quantum.best_test_auc(),
            gaussian.best_test_auc(),
            quantum.best_train_auc(),
        );
    }
    println!("\nexpected shape (paper Figs. 9-10): test AUC improves as features grow.");
}
