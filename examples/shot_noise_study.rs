//! Shot-noise study: what happens to the quantum kernel model when the
//! kernel entries come from a *finite number of measurements* instead of
//! the exact MPS inner products the paper computes.
//!
//! The paper's simulations are "(virtually) noiseless" — one of its core
//! advantages over running on hardware, where each kernel entry
//! `|<psi(x_i)|psi(x_j)>|^2` must be estimated from S shots of a
//! compute–uncompute circuit and carries binomial noise of order
//! `sqrt(p(1-p)/S)`. This example quantifies that gap: it trains the same
//! SVM on the exact kernel and on shot-estimated kernels at increasing S,
//! and reports test AUC and the kernel error. Related to the exponential
//! concentration discussion the paper cites (Thanasilp et al.): as
//! kernels concentrate, entries shrink below the shot-noise floor and
//! hardware estimation needs exponentially many shots.
//!
//! Run with: `cargo run --release -p qk-core --example shot_noise_study`

use qk_circuit::AnsatzConfig;
use qk_core::gram::{gram_matrix, kernel_block};
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::sample::shot_estimate_overlap;
use qk_mps::TruncationConfig;
use qk_svm::{sweep_c, KernelBlock, KernelMatrix};
use qk_tensor::backend::CpuBackend;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let backend = CpuBackend::new();
    let data = generate(&SyntheticConfig {
        noise: 1.0,
        num_features: 12,
        num_illicit: 150,
        num_licit: 350,
        ..SyntheticConfig::small(77)
    });
    let split = prepare_experiment(&data, 160, 8, 77);
    let ansatz = AnsatzConfig::new(2, 1, 0.5);
    let trunc = TruncationConfig::default();

    let train = simulate_states(&split.train.features, &ansatz, &backend, &trunc);
    let test = simulate_states(&split.test.features, &ansatz, &backend, &trunc);

    // Exact (the paper's regime).
    let exact_gram = gram_matrix(&train.states, &backend).kernel;
    let exact_block = kernel_block(&test.states, &train.states, &backend).block;
    let c_grid = [0.1, 1.0, 4.0];
    let exact_auc = sweep_c(
        &exact_gram,
        &split.train.label_signs(),
        &exact_block,
        &split.test.label_signs(),
        &c_grid,
        1e-3,
    )
    .best_by_test_auc()
    .test
    .auc;

    println!(
        "shot-noise study: {} train / {} test points, r = 2, d = 1, gamma = 0.5",
        train.states.len(),
        test.states.len()
    );
    println!("exact-kernel test AUC (the paper's noiseless regime): {exact_auc:.3}\n");
    println!(
        "{:>9} | {:>12} {:>12} | {:>7} {:>9}",
        "shots", "mean |dK|", "max |dK|", "AUC", "dAUC"
    );

    let n = train.states.len();
    for &shots in &[32usize, 128, 512, 2048, 8192] {
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + shots as u64);
        // Estimate every kernel entry from `shots` measurements.
        let mut err_sum = 0.0f64;
        let mut err_max = 0.0f64;
        let mut count = 0usize;
        let noisy_gram = KernelMatrix::from_fn(n, |i, j| {
            if i == j {
                return 1.0; // overlap of a state with itself needs no shots
            }
            let v = shot_estimate_overlap(&train.states[i], &train.states[j], shots, &mut rng);
            let e = (v - exact_gram.get(i, j)).abs();
            err_sum += e;
            err_max = err_max.max(e);
            count += 1;
            v
        });
        let noisy_block = KernelBlock::from_fn(test.states.len(), n, |t, s| {
            shot_estimate_overlap(&test.states[t], &train.states[s], shots, &mut rng)
        });
        let auc = sweep_c(
            &noisy_gram,
            &split.train.label_signs(),
            &noisy_block,
            &split.test.label_signs(),
            &c_grid,
            1e-3,
        )
        .best_by_test_auc()
        .test
        .auc;
        println!(
            "{:>9} | {:>12.2e} {:>12.2e} | {:>7.3} {:>+9.3}",
            shots,
            err_sum / count as f64,
            err_max,
            auc,
            auc - exact_auc
        );
    }

    println!(
        "\nshot noise shrinks as 1/sqrt(S); the SVM tolerates surprisingly coarse \
         kernels,\nbut a concentrated kernel (deep/wide ansatz, Table III) would push \
         entries below\nthe noise floor and break trainability — the hardware-side case \
         for the paper's\nnoiseless MPS approach."
    );
}
