//! Serving demo: a 30-second load run against the batched-inference
//! service, with a mid-run hot-swap and a final metrics snapshot.
//!
//! Train a quantum-kernel SVM, stand up `qk-serve`'s worker pool, and
//! drive a duplicate-heavy request mix (production traffic repeats
//! itself; the encoding cache turns repeats into pure inner-product
//! work). Halfway through, a freshly retrained model is hot-swapped in
//! without dropping a request — the cache survives because the
//! encoding parameters are unchanged. Every 5 seconds, and at the end,
//! the server's metrics snapshot is printed: throughput, p50/p95/p99
//! latency, cache hit rate, queue depth, batch sizes.
//!
//! Run with: `cargo run --release --example serving [-- --seconds 10]`

use qk_bench::Args;
use qk_circuit::AnsatzConfig;
use qk_core::QuantumKernelModel;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_serve::{KernelServer, ServeConfig};
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn train(subsample_seed: u64) -> QuantumKernelModel {
    let data = generate(&SyntheticConfig {
        noise: 1.5,
        num_features: 10,
        num_illicit: 100,
        num_licit: 160,
        ..SyntheticConfig::small(41)
    });
    let split = prepare_experiment(&data, 100, 8, subsample_seed);
    QuantumKernelModel::fit(
        &split.train.features,
        &split.train.label_signs(),
        &AnsatzConfig::new(2, 1, 0.5),
        &TruncationConfig::default(),
        &SmoParams::with_c(1.0),
        &CpuBackend::new(),
    )
}

fn main() {
    let args = Args::from_env();
    let seconds: u64 = args.get_or("seconds", 30);
    let clients: usize = args.get_or("clients", 2);

    println!("training v1 (and pre-training v2 for the hot-swap)...");
    let v1 = train(41);
    let v2 = train(42);
    // Query pool: ~70% of traffic repeats one of 32 "hot" points, the
    // rest is fresh — a caricature of production skew.
    let hot = qk_bench::sample_rows(32, v1.num_features(), 7);

    let server = KernelServer::start(
        v1,
        &ServeConfig {
            workers: 4,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 128,
            ..ServeConfig::default()
        },
    );
    println!("serving on 4 workers for {seconds} s, {clients} pipelined clients\n");

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let handle = server.handle();
            let hot = &hot;
            let stop = &stop;
            scope.spawn(move || {
                let features = hot[0].len();
                let mut fresh_counter = c * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    // One pipelined burst: 7 of 10 requests hit the hot
                    // pool, 3 are fresh points never seen before.
                    let burst: Vec<_> = (0..10)
                        .filter_map(|r| {
                            let x = if r < 7 {
                                hot[(fresh_counter + r * 5) % hot.len()].clone()
                            } else {
                                fresh_counter += 1;
                                (0..features)
                                    .map(|j| ((fresh_counter * 13 + j * 29) % 1000) as f64 * 0.002)
                                    .collect()
                            };
                            handle.submit(x).ok()
                        })
                        .collect();
                    for pending in burst {
                        let _ = pending.wait();
                    }
                }
            });
        }

        // Reporter + hot-swap coordinator.
        let mut swapped = false;
        let mut v2 = Some(v2);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            std::thread::sleep(remaining.min(Duration::from_secs(5)));
            if !swapped
                && deadline.saturating_duration_since(Instant::now()).as_secs() <= seconds / 2
            {
                let summary = server.deploy(v2.take().expect("deploy once"));
                swapped = true;
                println!(
                    ">>> hot-swapped to v{} (encoding changed: {}; in-flight requests drain on v1)\n",
                    summary.version, summary.encoding_changed
                );
            }
            if Instant::now() < deadline {
                println!("{}\n", server.snapshot());
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    println!("final snapshot:\n{}", server.shutdown());
}
