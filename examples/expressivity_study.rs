//! Expressivity vs model quality (the paper's Tables II and III, scaled).
//!
//! Sweeps the feature-map hyperparameters that control expressivity —
//! interaction distance `d`, bandwidth `gamma`, and circuit depth `r` —
//! and reports classification metrics plus the kernel-concentration
//! diagnostic (off-diagonal mean of the Gram matrix).
//!
//! Run with: `cargo run --release -p qk-core --example expressivity_study`

use qk_circuit::AnsatzConfig;
use qk_core::gram::gram_matrix;
use qk_core::pipeline::{run_quantum_on_split, ExperimentConfig};
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_tensor::backend::CpuBackend;

fn main() {
    let data = generate(&SyntheticConfig {
        num_features: 16,
        num_illicit: 300,
        num_licit: 700,
        ..SyntheticConfig::elliptic_like(3)
    });
    let split = prepare_experiment(&data, 160, 12, 3);
    let backend = CpuBackend::new();

    println!("part 1: interaction distance x bandwidth (paper Table II shape)");
    println!("\n  d   gamma   test AUC   recall   precision  accuracy");
    for &gamma in &[0.1, 0.5, 1.0] {
        for &d in &[1usize, 2, 4] {
            let config = ExperimentConfig {
                ansatz: AnsatzConfig::new(2, d, gamma),
                ..ExperimentConfig::qml(160, 12, 3)
            };
            let result = run_quantum_on_split(&split, &config, &backend);
            let best = result.sweep.best_by_test_auc();
            println!(
                " {:>2} {:>7} {:>10.3} {:>8.3} {:>10.3} {:>9.3}",
                d, gamma, best.test.auc, best.test.recall, best.test.precision, best.test.accuracy
            );
        }
    }

    println!("\npart 2: circuit depth and kernel concentration (paper Table III shape)");
    println!("\n  r    test AUC   off-diag kernel mean");
    for &r in &[2usize, 4, 8, 12] {
        let config = ExperimentConfig {
            ansatz: AnsatzConfig::new(r, 1, 1.0),
            ..ExperimentConfig::qml(160, 12, 3)
        };
        let result = run_quantum_on_split(&split, &config, &backend);
        // Concentration diagnostic: off-diagonal mean of the train kernel.
        let batch = simulate_states(
            &split.train.features,
            &config.ansatz,
            &backend,
            &TruncationConfig::default(),
        );
        let kernel = gram_matrix(&batch.states, &backend).kernel;
        println!(
            " {:>2} {:>10.3} {:>18.4}",
            r,
            result.best_test_auc(),
            kernel.off_diagonal_mean()
        );
    }
    println!("\nexpected shape (paper Table III): deeper circuits concentrate the");
    println!("kernel (off-diagonal mean -> 0) and test AUC degrades.");
}
