//! CPU vs accelerator crossover (the paper's Fig. 5, scaled down).
//!
//! Sweeps the qubit interaction distance `d`, timing MPS simulation and
//! inner-product calculation on both execution backends. At small `d` the
//! accelerator's per-call launch latency dominates; at large `d` (large
//! bond dimension chi) its parallel kernels win.
//!
//! Run with: `cargo run --release -p qk-core --example crossover_study`

use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{MpsSimulator, TruncationConfig};
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, ExecutionBackend};
use std::time::{Duration, Instant};

fn sample_row(m: usize, seed: u64) -> Vec<f64> {
    (0..m)
        .map(|j| {
            let v = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(j as u64 * 1442695040888963407))
                >> 33;
            (v % 2000) as f64 / 1000.0
        })
        .collect()
}

/// Times a closure on the backend's clock: the virtual device clock for
/// the accelerator (see DESIGN.md), wall-clock for the CPU.
fn timed<T>(backend: &dyn ExecutionBackend, f: impl FnOnce() -> T) -> (T, Duration) {
    match backend.virtual_clock() {
        Some(before) => {
            let out = f();
            (out, backend.virtual_clock().unwrap() - before)
        }
        None => {
            let t0 = Instant::now();
            let out = f();
            (out, t0.elapsed())
        }
    }
}

fn time_backend(backend: &dyn ExecutionBackend, m: usize, d: usize) -> (Duration, Duration, usize) {
    let cfg = AnsatzConfig::new(2, d, 1.0);
    let trunc = TruncationConfig::default();
    let sim = MpsSimulator::new(backend).with_truncation(trunc);
    // Two sample circuits: time simulation, then one inner product.
    let ((a, b, rec), sim_time) = timed(backend, || {
        let (a, rec) = sim.simulate(&feature_map_circuit(&sample_row(m, 11), &cfg));
        let (b, _) = sim.simulate(&feature_map_circuit(&sample_row(m, 23), &cfg));
        (a, b, rec)
    });
    let (_, inner_time) = timed(backend, || a.inner_with(backend, &b));
    (sim_time / 2, inner_time, rec.peak_bond)
}

fn main() {
    let m = 16; // qubits; the paper uses 100 on Perlmutter hardware
    let cpu = CpuBackend::new();
    let acc = AcceleratorBackend::with_default_model();
    println!("m = {m} qubits, r = 2 layers, gamma = 1.0");
    println!("\n  d   chi    cpu sim      accel sim    cpu inner    accel inner");
    for d in [1usize, 2, 3, 4] {
        let (cpu_sim, cpu_inner, chi) = time_backend(&cpu, m, d);
        let (acc_sim, acc_inner, _) = time_backend(&acc, m, d);
        println!(
            " {:>2} {:>5} {:>10.2?} {:>12.2?} {:>12.2?} {:>12.2?}",
            d, chi, cpu_sim, acc_sim, cpu_inner, acc_inner
        );
    }
    println!("\nexpected shape (paper Fig. 5): the accelerator is slower at small d");
    println!("(launch overhead) and overtakes the CPU once chi grows large.");
}
