//! Quickstart: train a quantum-kernel SVM on a small synthetic fraud
//! dataset and print the regularization sweep.
//!
//! Run with: `cargo run --release -p qk-core --example quickstart`

use qk_core::pipeline::{run_quantum_experiment, ExperimentConfig};
use qk_data::{generate, SyntheticConfig};
use qk_tensor::backend::CpuBackend;

fn main() {
    // 1. Data: an elliptic-like synthetic dataset (200 rows, 20 features).
    let data = generate(&SyntheticConfig::small(42));
    println!(
        "dataset: {} samples, {} features ({} illicit / {} licit)",
        data.len(),
        data.num_features(),
        data.num_illicit(),
        data.num_licit()
    );

    // 2. Experiment: 100 balanced samples, 10 features, the paper's QML
    //    ansatz (r = 2 layers, interaction distance d = 1, gamma = 0.1).
    let config = ExperimentConfig::qml(100, 10, 42);
    println!(
        "ansatz: r = {}, d = {}, gamma = {}",
        config.ansatz.layers, config.ansatz.interaction_distance, config.ansatz.gamma
    );

    // 3. Run on the CPU backend: simulate one MPS per data point, build
    //    the Gram matrix from pairwise overlaps, sweep the SVM over C.
    let backend = CpuBackend::new();
    let result = run_quantum_experiment(&data, &config, &backend);

    println!("\n  C      train AUC   test AUC   accuracy  precision  recall");
    for p in &result.sweep.points {
        println!(
            "  {:<6} {:>9.3} {:>10.3} {:>10.3} {:>10.3} {:>7.3}",
            p.c, p.train.auc, p.test.auc, p.test.accuracy, p.test.precision, p.test.recall
        );
    }
    let best = result.sweep.best_by_test_auc();
    println!(
        "\nbest: C = {} with test AUC {:.3} (mean chi = {:.1}, mean MPS memory = {:.1} KiB)",
        best.c,
        best.test.auc,
        result.mean_max_bond,
        result.mean_memory_bytes / 1024.0
    );
    println!(
        "timings: simulation {:?}, train kernel {:?}, test kernel {:?}",
        result.timings.simulation, result.timings.train_kernel, result.timings.test_kernel
    );
}
