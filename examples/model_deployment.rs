//! Model deployment walkthrough: train a quantum-kernel SVM once, ship
//! it as a byte artifact, reload it in a "serving" context, classify new
//! transactions one at a time with the paper's inference-cost breakdown,
//! and forecast what the same deployment costs at production scale.
//!
//! This exercises the paper's section III-A story: after the Gram matrix
//! is built, classification of a single unlabeled point = one MPS
//! simulation + one inner product per stored training state + an SVM
//! decision — and those per-primitive costs are all you need to size a
//! cluster for a 64,000-point production training run.
//!
//! Run with: `cargo run --release -p qk-core --example model_deployment`

use qk_circuit::AnsatzConfig;
use qk_core::extrapolate::{forecast_inference, forecast_training, PrimitiveCosts};
use qk_core::inference::QuantumKernelModel;
use qk_core::Strategy;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;

fn main() {
    let backend = CpuBackend::new();

    // 1. Train: 240 balanced samples, 10 features, the paper's QML
    //    ansatz shape (r = 2, d = 1) at gamma = 0.5.
    let data = generate(&SyntheticConfig {
        noise: 1.0,
        num_features: 16,
        num_illicit: 200,
        num_licit: 400,
        ..SyntheticConfig::small(42)
    });
    let split = prepare_experiment(&data, 240, 10, 42);
    let ansatz = AnsatzConfig::new(2, 1, 0.5);
    let mut model = QuantumKernelModel::fit(
        &split.train.features,
        &split.train.label_signs(),
        &ansatz,
        &TruncationConfig::default(),
        &SmoParams::with_c(1.0),
        &backend,
    );
    println!(
        "trained on {} states ({} features each), retaining {:.1} KiB of MPS",
        model.num_train_states(),
        model.num_features(),
        model.retained_state_bytes() as f64 / 1024.0
    );

    // 2. Calibrate probabilities on the held-out split, then ship the
    //    model as bytes — the artifact a serving fleet would load.
    model.calibrate(&split.test.features, &split.test.label_signs(), &backend);
    let artifact = model.to_bytes();
    println!(
        "serialized model artifact: {:.1} KiB",
        artifact.len() as f64 / 1024.0
    );
    let served = QuantumKernelModel::from_bytes(&artifact);

    // 3. Serve: classify the first few test transactions one at a time,
    //    with the paper's simulation / inner-product cost split.
    println!(
        "\n{:>4} {:>9} {:>12} {:>12} {:>12}",
        "idx", "label", "p(illicit)", "sim", "inner prod"
    );
    let mut correct = 0usize;
    let labels = split.test.label_signs();
    for (i, x) in split.test.features.iter().enumerate() {
        let p = served.predict_one(x, &backend);
        if p.label == labels[i] {
            correct += 1;
        }
        if i < 8 {
            println!(
                "{:>4} {:>9} {:>12.3} {:>12.3?} {:>12.3?}",
                i,
                if p.label > 0.0 { "illicit" } else { "licit" },
                p.probability.unwrap_or(f64::NAN),
                p.timing.simulation,
                p.timing.inner_products
            );
        }
    }
    println!(
        "\nserving accuracy on {} held-out transactions: {:.1}%",
        labels.len(),
        100.0 * correct as f64 / labels.len() as f64
    );

    // 4. Forecast production scale from measured primitive costs. The
    //    paper's arithmetic: at 64,000 training points, inner products
    //    dominate (quadratic), and doubling GPUs halves the wall clock.
    let costs = PrimitiveCosts::measure(
        &split.train.features[..8],
        &ansatz,
        &TruncationConfig::default(),
        &backend,
    );
    println!(
        "\nmeasured primitives: simulation {:?}, inner product {:?}",
        costs.simulation, costs.inner_product
    );
    println!(
        "\n{:>10} {:>7} | {:>12} {:>14} {:>12}",
        "N", "procs", "simulation", "inner products", "total"
    );
    for (n, k) in [(6_400usize, 32usize), (64_000, 320), (64_000, 640)] {
        let f = forecast_training(&costs, n, k, Strategy::RoundRobin);
        println!(
            "{:>10} {:>7} | {:>12.1?} {:>14.1?} {:>12.1?}",
            n,
            k,
            f.simulation,
            f.inner_products,
            f.total()
        );
    }
    let inf = forecast_inference(&costs, 64_000, 320);
    println!(
        "\nsingle-point inference at N = 64,000 on 320 processes: \
         {:.2?} simulation + {:.2?} inner products",
        inf.simulation, inf.inner_products
    );
}
