//! Offline `serde_derive` shim: hand-rolled `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` with no syn/quote dependency (the registry
//! is unreachable, so the parser walks raw `proc_macro` token trees).
//!
//! Supported shapes — the ones this workspace uses:
//! - structs with named fields → JSON objects in declaration order;
//! - tuple structs → JSON arrays;
//! - enums with unit variants → the variant name as a JSON string.
//!
//! Generic types and data-carrying enum variants produce a
//! `compile_error!` naming the offending item rather than silently
//! emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::NamedStruct { name, fields }) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .unwrap()
        }
        Ok(Item::TupleStruct { name, arity }) => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .unwrap()
        }
        Ok(Item::UnitEnum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .unwrap()
        }
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::NamedStruct { name, .. })
        | Ok(Item::TupleStruct { name, .. })
        | Ok(Item::UnitEnum { name, .. }) => format!("impl ::serde::Deserialize for {name} {{}}")
            .parse()
            .unwrap(),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility until `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => return Err("serde shim derive: no struct or enum found".to_string()),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: missing item name".to_string()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported (vendor a manual impl)"
        ));
    }

    // Find the body group (brace for named struct/enum, paren for tuple).
    while i < tokens.len() {
        if let TokenTree::Group(g) = &tokens[i] {
            match (kind, g.delimiter()) {
                ("struct", Delimiter::Brace) => {
                    return Ok(Item::NamedStruct {
                        name,
                        fields: parse_named_fields(g.stream())?,
                    });
                }
                ("struct", Delimiter::Parenthesis) => {
                    return Ok(Item::TupleStruct {
                        name,
                        arity: count_top_level_items(g.stream()),
                    });
                }
                ("enum", Delimiter::Brace) => {
                    return Ok(Item::UnitEnum {
                        name: name.clone(),
                        variants: parse_unit_variants(g.stream(), &name)?,
                    });
                }
                _ => i += 1,
            }
        } else {
            i += 1;
        }
    }
    Err(format!(
        "serde shim derive: could not find the body of `{name}`"
    ))
}

/// Splits a token stream on commas at angle-bracket depth zero and
/// returns the number of non-empty segments.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut seen_any = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                seen_any = false;
                continue;
            }
            _ => {}
        }
        seen_any = true;
    }
    count + usize::from(seen_any)
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments included).
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // '#' + bracket group
        }
        // Skip visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            if tokens.get(i).is_none() {
                break;
            }
            return Err("serde shim derive: unexpected token in struct fields".to_string());
        };
        fields.push(field.to_string());
        i += 1;
        // Skip `: Type` up to the next comma at angle depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(variant)) = tokens.get(i) else {
            if tokens.get(i).is_none() {
                break;
            }
            return Err(format!(
                "serde shim derive: unexpected token in enum `{enum_name}`"
            ));
        };
        let variant = variant.to_string();
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(variant);
                i += 1;
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: enum `{enum_name}` variant `{variant}` carries data; \
                     only unit variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip discriminant expression to the next comma.
                variants.push(variant);
                while let Some(tok) = tokens.get(i) {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
                i += 1;
            }
            Some(_) => {
                return Err(format!(
                    "serde shim derive: unexpected token after variant `{variant}`"
                ));
            }
        }
    }
    Ok(variants)
}
