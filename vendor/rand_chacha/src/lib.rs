//! Offline `rand_chacha` shim: a real ChaCha8 keystream generator
//! implementing the vendored [`rand`] shim's `RngCore`/`SeedableRng`.
//!
//! The block function is the standard ChaCha permutation (RFC 7539
//! constants and quarter-round, 8 double-rounds, 64-bit block counter).
//! Output is a deterministic function of the 32-byte seed, so every
//! `ChaCha8Rng::seed_from_u64(s)` stream is stable across runs and
//! platforms — the property the workspace's tests and benchmarks rely
//! on. Byte-for-byte equality with the upstream `rand_chacha` stream is
//! not guaranteed (no consumer in this workspace depends on it).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds; the fast, statistically strong family
/// member used throughout this workspace for reproducible experiments.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (the 4x4 input block).
    state: [u32; 16],
    /// Current 64-byte output block, as sixteen u32 words.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 4; // ChaCha8 = 8 rounds = 4 double-rounds.

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    /// Words consumed from the stream so far (for diagnostics).
    pub fn word_pos(&self) -> u128 {
        let counter = self.state[12] as u128 | ((self.state[13] as u128) << 32);
        if self.cursor >= 16 {
            // No partially consumed block (fresh RNG or exhausted block):
            // the counter equals the number of fully consumed blocks.
            counter * 16
        } else {
            // refill() incremented the counter for the block currently
            // being consumed, so back it out and add the cursor.
            (counter - 1) * 16 + self.cursor as u128
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many unit uniforms should be near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn word_pos_counts_consumed_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(rng.word_pos(), 0);
        let _ = rng.next_u64(); // two u32 words
        assert_eq!(rng.word_pos(), 2);
        for _ in 0..7 {
            let _ = rng.next_u64();
        }
        // Exactly one full 16-word block consumed.
        assert_eq!(rng.word_pos(), 16);
        let _ = rng.next_u32();
        assert_eq!(rng.word_pos(), 17);
    }
}
