//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of the `rand` API the repo actually uses:
//! [`RngCore`], [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng`] (with
//! the same SplitMix64-based `seed_from_u64` expansion as upstream) and
//! [`seq::SliceRandom::shuffle`]. Semantics match rand 0.8's documented
//! behaviour; the exact output streams of upstream distributions are not
//! guaranteed, which is fine because every consumer in this workspace
//! seeds explicitly and only relies on self-consistency.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the full `Standard`
/// distribution (floats sample `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T` (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased bounded integer sampling on a u64 stream.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return Standard::sample_standard(rng);
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// User-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample_standard(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (typically `[u8; N]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, matching the
    /// upstream rand 0.8 algorithm, and constructs the RNG.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna); identical constants to rand 0.8.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related extensions (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::SampleRange::sample_single(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }

    // Silence unused-import lints for the blanket Rng bound above.
    #[allow(unused)]
    fn _assert_obj_safe(_: &dyn RngCore) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak mixing is fine for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
