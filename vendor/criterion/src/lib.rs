//! Offline `criterion` shim.
//!
//! Provides the `criterion_group!`/`criterion_main!` bench surface used
//! by this workspace with a simple median-of-samples wall-clock
//! measurement instead of criterion's statistical machinery. Bench
//! binaries stay `harness = false` executables, print one line per
//! benchmark, and honour `--test` (run every body once, no timing) so
//! `cargo test --benches` stays fast.
//!
//! `QK_BENCH_SAMPLES` overrides the per-benchmark sample count.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("serial", 64)` → `serial/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Unparameterized id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Measurement harness handed to bench closures.
pub struct Bencher {
    /// Iterations per sample.
    iters: u64,
    /// Collected per-iteration mean durations, one per sample.
    samples: Vec<Duration>,
    /// Test mode: run the body once, skip timing.
    test_mode: bool,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters as u32);
        }
    }

    fn report(mut self, label: &str) {
        if self.test_mode {
            println!("{label}: ok (test mode)");
            return;
        }
        if self.samples.is_empty() {
            println!("{label}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!("{label}: median {median:?} (min {lo:?}, max {hi:?})");
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("QK_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Top-level bench context (one per binary).
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: env_samples(10),
        }
    }
}

impl Criterion {
    /// Adjusts the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 1,
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples(n);
        self
    }

    /// Criterion's measurement-time knob; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 1,
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: 1,
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_count: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Ends the group (marker for API parity).
    pub fn finish(self) {}
}

/// Declares a bench group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u32;
        let mut c = Criterion {
            test_mode: true,
            sample_size: 3,
        };
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let n = 4usize;
        group.bench_with_input(BenchmarkId::new("f", n), &n, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn timing_mode_collects_samples() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 2,
        };
        c.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
    }
}
