//! Offline `rayon` shim: the `par_*` entry points used by this
//! workspace, executed sequentially.
//!
//! The build environment cannot reach crates.io, so this crate maps the
//! rayon API surface the workspace uses (`par_iter`, `into_par_iter`,
//! `par_chunks_mut`, `flat_map_iter`) onto ordinary sequential
//! iterators. Call sites keep rayon's parallel-by-construction shape —
//! no borrows across items, `Send + Sync` data — so swapping the real
//! rayon back in is a one-line `Cargo.toml` change once a registry is
//! reachable (see DESIGN.md, substitution 4). On the current 1-CPU CI
//! hardware the sequential schedule is also the fastest one.

/// Consuming conversion into a "parallel" (here: sequential) iterator.
///
/// Blanket-implemented for everything iterable, which covers `Vec<T>`,
/// ranges and adapters alike.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// The iterator type produced.
    type ParIter: Iterator<Item = <Self as IntoIterator>::Item>;
    /// Converts `self` into an iterator (sequential stand-in).
    fn into_par_iter(self) -> Self::ParIter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type ParIter = I::IntoIter;
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// Borrowing conversion: `xs.par_iter()` for slices and `Vec`s.
pub trait IntoParallelRefIterator<'data> {
    /// Item yielded by the borrowed iterator.
    type Item: 'data;
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrows `self` as an iterator (sequential stand-in).
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutable chunking: `c.par_chunks_mut(n)` for slices.
pub trait ParallelSliceMut<T> {
    /// Chunked mutable traversal (sequential stand-in).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Rayon-specific iterator combinators grafted onto std iterators.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// `flat_map` over a serial inner iterator (rayon's `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Rayon's `with_min_len` tuning knob: a no-op here.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential stand-in for `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIteratorExt, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn into_par_iter_on_vec_and_range() {
        let v: Vec<usize> = (0..5).into_par_iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        let w: Vec<usize> = v.clone().into_par_iter().map(|x| x + 1).collect();
        assert_eq!(w, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = [0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let rows = [vec![1, 2], vec![3]];
        let flat: Vec<i32> = rows
            .par_iter()
            .flat_map_iter(|r| r.iter().copied())
            .collect();
        assert_eq!(flat, vec![1, 2, 3]);
    }
}
