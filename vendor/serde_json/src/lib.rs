//! Offline `serde_json` shim: renders the vendored `serde::Value` model
//! as JSON text. Only the producing half of the API is provided —
//! nothing in this workspace parses JSON.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the shim's value model cannot actually fail;
/// the type exists so call sites keep serde_json's `Result` shape).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty JSON encoding with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Mirror serde_json: always include a decimal point or
                // exponent so the value round-trips as a float.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), '[', ']', indent, level, out, |item, o, l| {
                write_value(item, indent, l, o)
            })
        }
        Value::Object(fields) => write_seq(
            fields.iter(),
            '{',
            '}',
            indent,
            level,
            out,
            |(k, val), o, l| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, l, o);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("qk".into())),
            (
                "sizes".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("rate".into(), Value::Float(0.5)),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Wrap(v.clone())).unwrap();
        assert_eq!(compact, r#"{"name":"qk","sizes":[1,2],"rate":0.5}"#);
        let pretty = to_string_pretty(&Wrap(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"qk\""));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        struct F(f64);
        impl Serialize for F {
            fn to_value(&self) -> Value {
                Value::Float(self.0)
            }
        }
        assert_eq!(to_string(&F(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&F(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn escapes_control_characters() {
        struct S(&'static str);
        impl Serialize for S {
            fn to_value(&self) -> Value {
                Value::String(self.0.to_string())
            }
        }
        assert_eq!(to_string(&S("a\"b\n")).unwrap(), r#""a\"b\n""#);
    }
}
