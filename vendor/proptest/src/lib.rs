//! Offline `proptest` shim.
//!
//! Reimplements the slice of the proptest API this workspace's property
//! suites use — `proptest!`, `prop_assert*`, numeric-range and tuple
//! strategies, `prop::collection::{vec, btree_map}`, `Just`,
//! `prop_oneof!`, `.prop_map`, `any::<T>()` and `ProptestConfig` — on
//! top of the vendored deterministic ChaCha8 RNG.
//!
//! Differences from upstream, by design:
//! - **Deterministic by default.** Every generated case derives from a
//!   fixed per-test seed (FNV-1a of the test's module path and name), so
//!   CI runs are reproducible. Set `PROPTEST_RNG_SEED` to explore other
//!   streams.
//! - **No shrinking.** A failing case panics immediately with the
//!   assertion message; the deterministic stream makes the failure
//!   reproducible without shrinking machinery.
//! - **Soft time budget.** `ProptestConfig::timeout` (milliseconds, 0 =
//!   off) caps a single test's generation loop so tier-1 stays fast even
//!   if a strategy produces pathologically slow cases.
//!   `PROPTEST_CASES` overrides the case count globally.

use std::ops::{Range, RangeInclusive};
use std::time::{Duration, Instant};

use rand::{Rng as _, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Test-case RNG handed to strategies (deterministic ChaCha8 stream).
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Builds the RNG for a named test: seed = FNV-1a(test path) unless
    /// `PROPTEST_RNG_SEED` overrides it.
    pub fn for_test(test_path: &str) -> TestRng {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(test_path.as_bytes()));
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Soft per-test time budget in milliseconds (0 disables).
    pub timeout: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }

    /// Soft deadline for a test's generation loop, if any.
    pub fn deadline(&self) -> Option<Duration> {
        (self.timeout > 0).then(|| Duration::from_millis(u64::from(self.timeout)))
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // 32 cases and a 30 s soft budget keep tier-1 fast while still
        // exercising meaningful input diversity; suites override per
        // test with `ProptestConfig::with_cases`.
        ProptestConfig {
            cases: 32,
            timeout: 30_000,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts a value (up to 1000 tries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erases the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `.prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!` backend).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.index(self.0.len());
        self.0[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Full-domain strategies for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies (`prop::bool`).

    use super::{Strategy, TestRng};

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `prop::bool::ANY`: a uniformly random boolean.
    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection size specification.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.index(self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.index(hi - lo + 1)
        }
    }

    /// `vec(element, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `btree_map(key, value, size)`. Key collisions may yield fewer
    /// entries than requested (as in upstream, which treats the size as
    /// a target, retrying a bounded number of times).
    pub fn btree_map<K: Strategy, V: Strategy, Z: SizeRange>(
        key: K,
        value: V,
        size: Z,
    ) -> BTreeMapStrategy<K, V, Z>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    impl<K: Strategy, V: Strategy, Z: SizeRange> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target.saturating_mul(10).max(16) {
                map.insert(self.key.new_value(rng), self.value.new_value(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Soft-deadline bookkeeping used by the `proptest!` expansion.
pub struct CaseBudget {
    start: Instant,
    deadline: Option<Duration>,
}

impl CaseBudget {
    /// Starts the clock for one test.
    pub fn start(config: &ProptestConfig) -> CaseBudget {
        CaseBudget {
            start: Instant::now(),
            deadline: config.deadline(),
        }
    }

    /// `true` while the test may keep generating cases.
    pub fn has_time(&self) -> bool {
        match self.deadline {
            Some(d) => self.start.elapsed() < d,
            None => true,
        }
    }
}

pub mod strategy {
    //! Re-exports matching `proptest::strategy`.
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    //! Re-exports matching `proptest::test_runner`.
    pub use super::{ProptestConfig as Config, TestRng};
}

pub mod prelude {
    //! Drop-in for `use proptest::prelude::*;`.
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    pub mod prop {
        //! The `prop::` module alias from the upstream prelude.
        pub use super::super::bool;
        pub use super::super::collection;
    }
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let budget = $crate::CaseBudget::start(&config);
            for __case in 0..config.effective_cases() {
                if !budget.has_time() {
                    eprintln!(
                        "proptest shim: {} stopped after {} cases (soft timeout)",
                        stringify!($name), __case
                    );
                    break;
                }
                // Each case runs in a closure so `prop_assume!` can
                // reject the whole case (`return true`) from arbitrary
                // nesting depth, matching upstream semantics.
                #[allow(clippy::redundant_closure_call)]
                let __rejected: bool = (|| {
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)*
                    {
                        $body
                    }
                    // Diverging bodies (e.g. ending in panic!) make this
                    // unreachable; that is fine.
                    #[allow(unreachable_code)]
                    return false;
                })();
                let _ = __rejected;
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Rejects the current generated case when the precondition fails.
///
/// Expands to an early `return true` ("rejected") from the per-case
/// closure that [`proptest!`] wraps each body in, so the whole case is
/// abandoned even when the assumption sits inside a nested loop —
/// upstream semantics. A rejected case is skipped rather than
/// regenerated (with a deterministic stream that is equivalent up to
/// case count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return true;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vec((a, b) in (0u64..5, 0u64..5), v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_and_map(choice in prop_oneof![Just(1u8), Just(2u8)], s in (0u8..3).prop_map(|x| x * 2)) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(s % 2 == 0 && s <= 4);
        }

        #[test]
        fn btree_map_capped(m in prop::collection::btree_map(0usize..4, 0u8..9, 1..=3)) {
            prop_assert!(m.len() <= 3);
            prop_assert!(m.keys().all(|&k| k < 4));
        }

        #[test]
        fn assume_aborts_case_from_nested_loop(n in 1usize..6) {
            for _ in 0..3 {
                // Always fails (n >= 1): the whole case must be abandoned
                // here, not just this loop iteration.
                prop_assume!(n == 0);
            }
            panic!("case continued past a failed assumption");
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = super::TestRng::for_test("x::y");
        let mut b = super::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_test("x::z");
        let _ = c.next_u64(); // different name, stream may differ; just exercise it
    }
}
