//! Offline `crossbeam` shim: `crossbeam::channel` mapped onto
//! `std::sync::mpsc`.
//!
//! Covers the multi-producer/single-consumer patterns this workspace
//! uses (cloned senders feeding one collector; bounded ring channels).
//! Crossbeam's multi-consumer `Receiver::clone` is intentionally not
//! provided — `std::sync::mpsc` cannot express it — and no caller needs
//! it.

pub mod channel {
    //! MPSC channels with the crossbeam surface used by this workspace.

    use std::sync::mpsc;

    /// Sending half; clonable for fan-in.
    pub struct Sender<T> {
        flavor: SenderFlavor<T>,
    }

    enum SenderFlavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let flavor = match &self.flavor {
                SenderFlavor::Unbounded(tx) => SenderFlavor::Unbounded(tx.clone()),
                SenderFlavor::Bounded(tx) => SenderFlavor::Bounded(tx.clone()),
            };
            Sender { flavor }
        }
    }

    /// Error from [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without a `T: Debug` bound.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.flavor {
                SenderFlavor::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderFlavor::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    /// Error from [`Receiver::recv`] when all senders are gone.
    #[derive(Debug)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Borrowing iterator, blocking until senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> mpsc::IntoIter<T> {
            self.rx.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> mpsc::Iter<'a, T> {
            self.rx.iter()
        }
    }

    /// Unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                flavor: SenderFlavor::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Bounded channel of the given capacity (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                flavor: SenderFlavor::Bounded(tx),
            },
            Receiver { rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_unbounded() {
        let (tx, rx) = channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for p in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || tx.send(p).unwrap());
            }
            drop(tx);
            let mut got: Vec<usize> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn bounded_ring_step() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(9).unwrap();
        assert_eq!(rx.recv().unwrap(), 9);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
