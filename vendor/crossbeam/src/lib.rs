//! Offline `crossbeam` shim: MPMC `crossbeam::channel` on std
//! primitives.
//!
//! Real crossbeam channels are multi-producer *and* multi-consumer with
//! timed receives; this shim implements the same semantics over a
//! `Mutex<VecDeque>` plus two condition variables (`not_empty` /
//! `not_full`), so a pool of worker threads can share one submission
//! queue — the pattern `qk-serve` is built on. Covered surface:
//! `bounded`/`unbounded`, blocking/timed/non-blocking send and receive,
//! clonable `Sender` *and* `Receiver`, disconnect-on-last-drop on either
//! side, and the borrowing/consuming receive iterators. Capacity-0
//! rendezvous channels are approximated as capacity 1 (no caller in
//! this workspace uses a rendezvous channel).

pub mod channel {
    //! MPMC channels with the crossbeam surface used by this workspace.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded; `Some(cap)` blocks senders at `cap` items.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            // No poisoning, matching crossbeam: a panicking thread leaves
            // the queue in a consistent state (all mutations are single
            // push/pop calls).
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }

        fn has_room(&self, state: &State<T>) -> bool {
            self.capacity.is_none_or(|cap| state.queue.len() < cap)
        }
    }

    /// Sending half; clonable for fan-in.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; clonable for fan-out to a consumer pool.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                drop(state);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Error from [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without a `T: Debug` bound.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if self.chan.has_room(&state) {
                    state.queue.push_back(value);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .chan
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if self.chan.has_room(&state) {
                state.queue.push_back(value);
                drop(state);
                self.chan.not_empty.notify_one();
                Ok(())
            } else {
                Err(TrySendError::Full(value))
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Error from [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks for the next message, up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Borrowing iterator, blocking until senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Consuming blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Bounded channel of the given capacity (0 is treated as 1; see the
    /// module docs).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn fan_in_unbounded() {
        let (tx, rx) = channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for p in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || tx.send(p).unwrap());
            }
            drop(tx);
            let mut got: Vec<usize> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn bounded_ring_step() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(9).unwrap();
        assert_eq!(rx.recv().unwrap(), 9);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn fifo_order_single_consumer() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_multi_consumer() {
        // Every message reaches exactly one of the cloned receivers.
        let (tx, rx) = channel::unbounded::<usize>();
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..200 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        });
        assert_eq!(collected, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(tx.len(), 2);
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<u32>(2);
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for i in 0..50 {
                    tx.send(i).unwrap();
                }
            });
            // Slow consumer: the producer must block rather than overrun.
            let mut got = Vec::new();
            for _ in 0..50 {
                assert!(rx.len() <= 2, "bounded channel overran: {}", rx.len());
                got.push(rx.recv().unwrap());
            }
            producer.join().unwrap();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
    }

    #[test]
    fn receiver_clone_drop_keeps_channel_open() {
        let (tx, rx) = channel::unbounded::<u8>();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(1).unwrap();
        assert_eq!(rx2.recv(), Ok(1));
    }
}
