//! Offline `serde` shim.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal serialization facade with the same import
//! surface the code uses: `use serde::{Serialize, Deserialize}` brings
//! in both the traits and the derive macros. Serialization lowers a
//! value into the tiny JSON [`Value`] model in this crate; the vendored
//! `serde_json` pretty-printer renders it. Deserialization is a marker
//! trait only — nothing in the workspace parses JSON back (binary model
//! persistence uses explicit `to_bytes`/`from_bytes` codecs instead).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::time::Duration;

/// A minimal JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point; non-finite values render as `null`.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the JSON value model.
    fn to_value(&self) -> Value;
}

/// Marker for types the derive macro tagged as deserializable. The shim
/// provides no parser; the marker keeps `#[derive(Deserialize)]`
/// meaningful for when the real serde is swapped back in.
pub trait Deserialize {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Matches serde's {secs, nanos} encoding of Duration.
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_lower() {
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::String("a".into())])
        );
    }

    #[test]
    fn duration_matches_serde_shape() {
        let d = Duration::new(2, 5);
        assert_eq!(
            d.to_value(),
            Value::Object(vec![
                ("secs".into(), Value::UInt(2)),
                ("nanos".into(), Value::UInt(5)),
            ])
        );
    }
}
