//! Offline `parking_lot` shim over `std::sync`.
//!
//! Exposes parking_lot's poison-free `Mutex`/`RwLock`/`Condvar` API
//! (guards returned directly from `lock()`, `Condvar::wait(&mut guard)`)
//! implemented on the std primitives. Poisoned std locks are recovered
//! with `into_inner`, matching parking_lot's "no poisoning" semantics.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Poison-free mutex (parking_lot API shape).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Condition variable usable with [`MutexGuard`] by `&mut` reference,
/// parking_lot style.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Poison-free reader-writer lock (parking_lot API shape).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let shared2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*shared2;
            std::thread::sleep(Duration::from_millis(20));
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*shared;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }
}
