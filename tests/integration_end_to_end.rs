//! End-to-end ground truth: the full quantum-kernel pipeline over MPS must
//! reproduce the same Gram matrix as an exact statevector simulation, and
//! the backends must agree with each other.

use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_circuit::route_for_mps;
use qk_core::gram::gram_matrix;
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_statevector::StateVector;
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, DeviceModel};

#[test]
fn pipeline_gram_matches_statevector_gram() {
    let data = generate(&SyntheticConfig::small(41));
    let split = prepare_experiment(&data, 16, 6, 41);
    let rows = &split.train.features;
    let ansatz = AnsatzConfig::new(2, 2, 0.8);
    let be = CpuBackend::new();

    let mps_kernel = gram_matrix(
        &simulate_states(rows, &ansatz, &be, &TruncationConfig::default()).states,
        &be,
    )
    .kernel;

    let sv_states: Vec<StateVector> = rows
        .iter()
        .map(|x| StateVector::simulate(&route_for_mps(&feature_map_circuit(x, &ansatz))))
        .collect();
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            let exact = sv_states[i].overlap_sqr(&sv_states[j]);
            assert!(
                (mps_kernel.get(i, j) - exact).abs() < 1e-9,
                "K[{i}][{j}]: mps {} vs exact {exact}",
                mps_kernel.get(i, j)
            );
        }
    }
}

#[test]
fn accelerator_pipeline_matches_cpu_pipeline() {
    let data = generate(&SyntheticConfig::small(42));
    let split = prepare_experiment(&data, 14, 5, 42);
    let rows = &split.train.features;
    let ansatz = AnsatzConfig::new(2, 2, 1.0);
    let tc = TruncationConfig::default();

    let cpu = CpuBackend::new();
    let acc = AcceleratorBackend::new(DeviceModel::ideal());
    let k_cpu = gram_matrix(&simulate_states(rows, &ansatz, &cpu, &tc).states, &cpu).kernel;
    let k_acc = gram_matrix(&simulate_states(rows, &ansatz, &acc, &tc).states, &acc).kernel;
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            assert!(
                (k_cpu.get(i, j) - k_acc.get(i, j)).abs() < 1e-9,
                "backend divergence at [{i}][{j}]"
            );
        }
    }
}

#[test]
fn gamma_controls_kernel_bandwidth() {
    // Small gamma -> overlaps near 1 (underexpressive); large gamma ->
    // smaller overlaps. This is the bandwidth mechanism behind Table II.
    let data = generate(&SyntheticConfig::small(43));
    let split = prepare_experiment(&data, 12, 6, 43);
    let rows = &split.train.features;
    let be = CpuBackend::new();
    let tc = TruncationConfig::default();

    let k_small = gram_matrix(
        &simulate_states(rows, &AnsatzConfig::new(2, 1, 0.05), &be, &tc).states,
        &be,
    )
    .kernel;
    let k_large = gram_matrix(
        &simulate_states(rows, &AnsatzConfig::new(2, 1, 1.0), &be, &tc).states,
        &be,
    )
    .kernel;
    assert!(
        k_small.off_diagonal_mean() > k_large.off_diagonal_mean(),
        "bandwidth ordering violated: {} vs {}",
        k_small.off_diagonal_mean(),
        k_large.off_diagonal_mean()
    );
    assert!(
        k_small.off_diagonal_mean() > 0.9,
        "gamma=0.05 should be near-flat"
    );
}

#[test]
fn interaction_distance_increases_entanglement() {
    // Larger d -> more generators -> more entanglement (bond dimension),
    // the resource-cost mechanism of Fig. 5 / Table I.
    let data = generate(&SyntheticConfig::small(44));
    let split = prepare_experiment(&data, 10, 8, 44);
    let rows = &split.train.features;
    let be = CpuBackend::new();
    let tc = TruncationConfig::default();
    let chi_d1 = simulate_states(rows, &AnsatzConfig::new(2, 1, 1.0), &be, &tc)
        .states
        .iter()
        .map(|s| s.max_bond())
        .max()
        .unwrap();
    let chi_d4 = simulate_states(rows, &AnsatzConfig::new(2, 4, 1.0), &be, &tc)
        .states
        .iter()
        .map(|s| s.max_bond())
        .max()
        .unwrap();
    assert!(
        chi_d4 > chi_d1,
        "chi at d=4 ({chi_d4}) should exceed chi at d=1 ({chi_d1})"
    );
}
