//! Workspace smoke test: the examples, Criterion benches and the
//! figure/table reproduction binaries must stay inside the build graph.
//!
//! `cargo build` / `cargo test` do not touch `--examples`, `--benches`
//! or the bench crate's `--bins`, so without this test those targets
//! could silently rot (the state the seed tree was in: 89 source files,
//! zero manifests, nothing compiled). The test shells out to the same
//! `cargo` that is running the suite and type-checks every target kind.
//!
//! Skipped when `QK_SKIP_SMOKE` is set (e.g. on machines where the
//! target directory is locked by an outer cargo invocation with a
//! different profile).

use std::path::Path;
use std::process::Command;

#[test]
fn examples_benches_and_bins_stay_green() {
    if std::env::var_os("QK_SKIP_SMOKE").is_some() {
        eprintln!("QK_SKIP_SMOKE set; skipping workspace smoke check");
        return;
    }

    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    assert!(
        Path::new(manifest_dir).join("Cargo.toml").exists(),
        "workspace root manifest missing"
    );

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(&cargo)
        .current_dir(manifest_dir)
        .args([
            "check",
            "--offline",
            "--workspace",
            "--examples",
            "--benches",
            "--bins",
            "--quiet",
        ])
        .output()
        .expect("failed to spawn cargo check");

    assert!(
        output.status.success(),
        "cargo check --examples --benches --bins failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
