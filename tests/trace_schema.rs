//! Schema gate for exported trace artifacts: `trace_gram.json` must be
//! a valid Chrome trace-event file per [`qk::obs::trace::validate_chrome_trace`],
//! and the companion `trace_report.json` analysis must carry the
//! utilization / critical-path rollups the analyzer promises.
//!
//! CI points `QK_TRACE_DIR` at the directory its 3-rank smoke just
//! exported; without the override the gate checks the committed
//! reference artifacts under `results/`.

use qk::obs::trace::validate_chrome_trace;
use qk::obs::{json, Json};
use std::path::PathBuf;

fn trace_dir() -> PathBuf {
    match std::env::var("QK_TRACE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results"),
    }
}

fn read(name: &str) -> String {
    let path = trace_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} missing: {e} — run `gram_scale --smoke --ranks 3 --trace-dir <dir>` first",
            path.display()
        )
    })
}

/// The exported Chrome trace passes the structural schema check:
/// complete events only, rank/lane process metadata, and strictly
/// increasing logical sequence numbers per `(pid, tid)`.
#[test]
fn chrome_trace_is_schema_valid() {
    let text = read("trace_gram.json");
    validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("trace_gram.json fails the schema gate: {e}"));
}

/// The analyzer report is not a stub: it parses, covers a multi-rank
/// timeline with real events, and carries the utilization,
/// scaling-efficiency, phase-breakdown, and critical-path fields
/// downstream tooling reads.
#[test]
fn trace_report_carries_analysis_rollups() {
    let report = json::parse(&read("trace_report.json")).expect("trace_report.json parses");
    let u64_field = |key: &str| {
        report
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("trace_report.json missing numeric field {key}"))
    };
    assert!(u64_field("events") > 0, "report analyzed zero events");
    assert!(u64_field("ranks") >= 2, "expected a multi-rank timeline");
    assert!(u64_field("wall_us") > 0, "report spans zero wall time");
    for key in ["utilization", "scaling_efficiency"] {
        let v = report
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("trace_report.json missing {key}"));
        assert!((0.0..=1.0).contains(&v), "{key} = {v} outside [0, 1]");
    }
    let phases = report
        .get("per_phase")
        .and_then(Json::as_array)
        .expect("per_phase array");
    let phase_names: Vec<&str> = phases
        .iter()
        .filter_map(|p| p.get("phase").and_then(Json::as_str))
        .collect();
    assert!(
        phase_names.contains(&"compute"),
        "gram trace report lacks a compute phase: {phase_names:?}"
    );
    let cp = report.get("critical_path").expect("critical_path present");
    assert!(
        cp.get("length_us").and_then(Json::as_u64).is_some(),
        "critical_path missing length_us"
    );
}
