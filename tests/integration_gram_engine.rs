//! End-to-end acceptance of the tiled Gram engine: a job interrupted
//! mid-run resumes from its checkpoint directory to a bitwise-identical
//! matrix, `qk-svm` trains from the `TiledKernel` view without a dense
//! copy, and the spill path changes nothing but peak memory.

use qk::circuit::AnsatzConfig;
use qk::core::{gram_matrix, kernel_block, simulate_states};
use qk::gram::{encoding_fingerprint, CheckpointError, GramConfig, GramEngine, GramError};
use qk::mps::{Mps, TruncationConfig};
use qk::svm::{train_svc, KernelSource, SmoParams};
use qk::tensor::backend::CpuBackend;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qk-gram-integration-{}-{tag}-{id}",
        std::process::id()
    ))
}

fn pipeline_states(n: usize, features: usize) -> (Vec<Mps>, u64) {
    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..features)
                .map(|j| ((i * features + j) % 11) as f64 * 0.18)
                .collect()
        })
        .collect();
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;
    (states, encoding_fingerprint(&ansatz, &trunc))
}

/// The acceptance criterion end to end: interrupt a checkpointed job,
/// resume it in a fresh engine, and compare bitwise against both an
/// uninterrupted engine run and the `core::gram` path.
#[test]
fn interrupted_job_resumes_bitwise_identical() {
    let (states, encoding) = pipeline_states(20, 5);
    let be = CpuBackend::new();
    let dir = scratch("resume");

    let clean = GramEngine::new(GramConfig::in_memory(4))
        .compute_gram(&states, &be)
        .expect("clean run");

    // Interrupt after 7 of the 15 tiles (a deterministic preemption).
    let mut cfg = GramConfig::checkpointed(&dir, 4, encoding);
    cfg.max_tiles = Some(7);
    match GramEngine::new(cfg).compute_gram(&states, &be) {
        Err(GramError::Interrupted { done, total }) => {
            assert_eq!(done, 7);
            assert_eq!(total, 15);
        }
        other => panic!("expected interruption, got {other:?}"),
    }

    // A fresh engine (fresh process, in CI's SIGKILL variant) resumes.
    let resumed = GramEngine::new(GramConfig::checkpointed(&dir, 4, encoding))
        .compute_gram(&states, &be)
        .expect("resumed run");
    assert_eq!(resumed.report.tiles_restored, 7);
    assert_eq!(resumed.report.tiles_computed, 8);
    assert_eq!(resumed.kernel.data(), clean.kernel.data());

    // And both agree bitwise with the core::gram entry point.
    let core_path = gram_matrix(&states, &be);
    assert_eq!(core_path.kernel.data(), clean.kernel.data());
    assert_eq!(core_path.inner_products, clean.report.inner_products);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint directory written under a different encoding is
/// rejected, not silently reused.
#[test]
fn foreign_checkpoint_is_rejected() {
    let (states, encoding) = pipeline_states(8, 4);
    let be = CpuBackend::new();
    let dir = scratch("foreign");
    GramEngine::new(GramConfig::checkpointed(&dir, 4, encoding))
        .compute_gram(&states, &be)
        .expect("first job");
    // A lossier truncation is a different encoding fingerprint.
    let other = encoding_fingerprint(
        &AnsatzConfig::qml_default(),
        &TruncationConfig::with_cutoff(1e-8),
    );
    assert_ne!(other, encoding);
    let err = GramEngine::new(GramConfig::checkpointed(&dir, 4, other))
        .compute_gram(&states, &be)
        .expect_err("foreign checkpoint accepted");
    assert!(matches!(
        err,
        GramError::Checkpoint(CheckpointError::Mismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// SVM training consumes the `TiledKernel` view directly (no dense
/// copy) and produces the same model as the dense `core::gram` path.
#[test]
fn svm_trains_from_tiled_view() {
    let (states, _) = pipeline_states(12, 4);
    let be = CpuBackend::new();
    let labels: Vec<f64> = (0..12)
        .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
        .collect();

    let tiled = GramEngine::new(GramConfig::in_memory(5))
        .compute_gram(&states, &be)
        .unwrap()
        .kernel;
    let dense = gram_matrix(&states, &be).kernel;
    assert_eq!(tiled.data(), dense.data());

    let params = SmoParams::with_c(2.0);
    let from_view = train_svc(&tiled, &labels, &params);
    let from_dense = train_svc(&dense, &labels, &params);
    assert_eq!(from_view.alphas, from_dense.alphas);
    assert_eq!(from_view.bias, from_dense.bias);
    // The view serves rows without copying: decision values match too.
    for i in 0..12 {
        assert_eq!(
            from_view.decision_value(KernelSource::row(&tiled, i)),
            from_dense.decision_value(dense.row(i)),
        );
    }
}

/// Spilling the encoded states to disk changes nothing in the output.
#[test]
fn spilled_job_is_bitwise_identical() {
    let (states, _) = pipeline_states(14, 4);
    let be = CpuBackend::new();
    let resident = GramEngine::new(GramConfig::in_memory(4))
        .compute_gram(&states, &be)
        .unwrap();
    let mut cfg = GramConfig::in_memory(4);
    cfg.memory_budget = Some(1); // force the spill path
    cfg.workers = 2;
    let spilled = GramEngine::new(cfg)
        .compute_gram_owned(states, &be)
        .unwrap();
    assert!(spilled.report.spilled);
    assert_eq!(spilled.kernel.data(), resident.kernel.data());
}

/// The engine's rectangular block path agrees bitwise with
/// `core::kernel_block` for the inference direction.
#[test]
fn block_path_matches_core() {
    let (train, _) = pipeline_states(9, 4);
    let (test, _) = pipeline_states(5, 4);
    let be = CpuBackend::new();
    let engine_block = GramEngine::new(GramConfig::in_memory(3))
        .compute_block(&test, &train, &be)
        .unwrap();
    let core_block = kernel_block(&test, &train, &be);
    assert_eq!(
        engine_block.report.inner_products,
        core_block.inner_products
    );
    for i in 0..5 {
        assert_eq!(engine_block.block.row(i), core_block.block.row(i));
    }
}
