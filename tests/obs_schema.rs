//! Schema gate for exported observability reports: every `obs_*.json`
//! under the obs directory must satisfy [`qk::obs::validate_report_json`]
//! — the plain-Rust stand-in for a JSON-schema validator — and the
//! pipeline reports must carry a real span rollup.
//!
//! CI points `QK_OBS_DIR` at the artifacts its smoke runs just
//! exported; without the override the gate checks the committed
//! reference reports under `results/`.

use qk::obs::{json, validate_report_json, Json};
use std::path::PathBuf;

fn obs_dir() -> PathBuf {
    match std::env::var("QK_OBS_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results"),
    }
}

fn reports() -> Vec<(String, String)> {
    let dir = obs_dir();
    let mut found = Vec::new();
    for entry in std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("obs dir {} unreadable: {e}", dir.display()))
    {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("obs_") && name.ends_with(".json") {
            let text = std::fs::read_to_string(entry.path()).expect("report readable");
            found.push((name, text));
        }
    }
    found.sort();
    found
}

fn span_paths(text: &str) -> Vec<String> {
    json::parse(text)
        .expect("report parses")
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .iter()
        .map(|s| {
            s.get("path")
                .and_then(Json::as_str)
                .expect("span path")
                .to_string()
        })
        .collect()
}

/// Every exported report passes the structural schema check.
#[test]
fn every_exported_report_is_schema_valid() {
    let all = reports();
    assert!(
        !all.is_empty(),
        "no obs_*.json reports under {} — run the gram/serve smokes with --obs-dir first",
        obs_dir().display()
    );
    for (name, text) in &all {
        validate_report_json(text).unwrap_or_else(|e| panic!("{name} fails the schema gate: {e}"));
    }
}

/// The gram and serve pipeline reports are not stubs: each carries a
/// span rollup at least five paths deep, with the engine/worker roots
/// the instrumentation promises.
#[test]
fn pipeline_reports_carry_real_span_rollups() {
    for (file, root_span) in [
        ("obs_gram.json", "gram_job"),
        ("obs_serve.json", "serve_worker"),
    ] {
        let path = obs_dir().join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
        validate_report_json(&text).unwrap_or_else(|e| panic!("{file} fails schema: {e}"));
        let paths = span_paths(&text);
        assert!(
            paths.len() >= 5,
            "{file}: expected >= 5 distinct span paths, got {paths:?}"
        );
        assert!(
            paths
                .iter()
                .any(|p| p == root_span || p.starts_with(&format!("{root_span}/"))),
            "{file}: missing root span {root_span}: {paths:?}"
        );
    }
}

/// Chaos/recovery counters surface in every pipeline snapshot: each
/// report carries a `robustness` block with the fault-injection and
/// recovery totals for its subsystem, even on a clean (all-zero) run.
#[test]
fn pipeline_reports_surface_robustness_counters() {
    for (file, keys) in [
        (
            "obs_gram.json",
            &[
                "gram.faults_injected",
                "gram.retries",
                "gram.tiles_quarantined",
                "gram.workers_restarted",
            ][..],
        ),
        (
            "obs_serve.json",
            &[
                "serve.faults_injected",
                "serve.requests_shed",
                "serve.workers_restarted",
            ][..],
        ),
        (
            "obs_svm.json",
            &[
                "svm.faults_injected",
                "svm.ckpt.retries",
                "svm.rows_recomputed",
                "svm.resumes",
            ][..],
        ),
    ] {
        let path = obs_dir().join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
        let robustness = json::parse(&text)
            .expect("report parses")
            .get("robustness")
            .cloned()
            .unwrap_or_else(|| panic!("{file}: missing robustness block"));
        for key in keys {
            assert!(
                robustness.get(key).and_then(Json::as_u64).is_some(),
                "{file}: robustness block missing counter {key}"
            );
        }
    }
}
