//! Cross-crate validation of the circuit tooling: the optimizer and the
//! QASM interchange must preserve semantics as observed by both the
//! statevector ground truth and the MPS engine.

use proptest::prelude::*;
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_circuit::{from_qasm, gate_histogram, optimize, route_for_mps, to_qasm, Circuit, Gate};
use qk_mps::MpsSimulator;
use qk_statevector::StateVector;
use qk_tensor::backend::CpuBackend;
use qk_tensor::complex::Complex64;

fn fidelity(a: &StateVector, b: &StateVector) -> f64 {
    let mut dot = Complex64::ZERO;
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        dot = dot.conj_mul_add(*x, *y);
    }
    dot.norm_sqr()
}

/// A random circuit with redundancy for the optimizer to find.
fn redundant_circuit(angles: &[f64], m: usize) -> Circuit {
    let mut c = Circuit::new(m);
    for q in 0..m {
        c.push1(Gate::H, q);
        c.push1(Gate::H, q); // cancels
        c.push1(Gate::Rz(angles[q % angles.len()]), q);
        c.push1(Gate::Rz(-angles[q % angles.len()] / 2.0), q); // merges
    }
    for q in 0..m - 1 {
        c.push2(Gate::Rxx(angles[q % angles.len()]), q, q + 1);
        c.push2(Gate::Rxx(0.0), q, q + 1); // drops
        c.push2(Gate::Swap, q, q + 1);
        c.push2(Gate::Swap, q + 1, q); // cancels
    }
    c
}

#[test]
fn optimizer_shrinks_ansatz_routing_overhead() {
    // A routed d>1 ansatz contains SWAP conjugation; the optimizer must
    // not change semantics and the histogram must reflect the gate mix.
    let features = [0.4, 1.3, 0.8, 1.6, 0.2];
    let circuit = route_for_mps(&feature_map_circuit(
        &features,
        &AnsatzConfig::new(2, 3, 0.9),
    ));
    let (opt, report) = optimize(&circuit);
    assert_eq!(report.ops_before, circuit.len());
    assert!(opt.len() <= circuit.len());
    let sv_orig = StateVector::simulate(&circuit);
    let sv_opt = StateVector::simulate(&opt);
    assert!((fidelity(&sv_orig, &sv_opt) - 1.0).abs() < 1e-9);
    let hist = gate_histogram(&circuit);
    assert!(hist.contains_key("SWAP"));
    assert!(hist.contains_key("Rxx"));
}

#[test]
fn optimized_circuit_runs_identically_on_mps() {
    let angles = [0.7, -1.2, 0.4];
    let circuit = redundant_circuit(&angles, 5);
    let (opt, report) = optimize(&circuit);
    assert!(report.ops_removed() > 0);

    let be = CpuBackend::new();
    let sim = MpsSimulator::new(&be);
    let (mps_orig, rec_orig) = sim.simulate(&circuit);
    let (mps_opt, rec_opt) = sim.simulate(&opt);
    assert!((mps_orig.overlap_sqr(&mps_opt) - 1.0).abs() < 1e-9);
    // The optimizer must reduce the two-qubit gate count the MPS engine
    // pays for.
    assert!(rec_opt.two_qubit_gates <= rec_orig.two_qubit_gates);
}

#[test]
fn qasm_roundtrip_preserves_mps_kernel_entries() {
    let cfg = AnsatzConfig::new(2, 2, 0.8);
    let xa = [0.3, 1.5, 0.9, 0.4];
    let xb = [1.1, 0.2, 1.8, 0.6];
    let ca = route_for_mps(&feature_map_circuit(&xa, &cfg));
    let cb = route_for_mps(&feature_map_circuit(&xb, &cfg));
    let ca2 = from_qasm(&to_qasm(&ca).unwrap()).unwrap();
    let cb2 = from_qasm(&to_qasm(&cb).unwrap()).unwrap();

    let be = CpuBackend::new();
    let sim = MpsSimulator::new(&be);
    let k_direct = sim.simulate(&ca).0.overlap_sqr(&sim.simulate(&cb).0);
    let k_roundtrip = sim.simulate(&ca2).0.overlap_sqr(&sim.simulate(&cb2).0);
    assert!((k_direct - k_roundtrip).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Optimization preserves the state exactly for random redundant
    /// circuits.
    #[test]
    fn optimize_preserves_statevector(
        angles in prop::collection::vec(-2.0f64..2.0, 2..5),
        m in 3usize..6,
    ) {
        let circuit = redundant_circuit(&angles, m);
        let (opt, _) = optimize(&circuit);
        let a = StateVector::simulate(&circuit);
        let b = StateVector::simulate(&opt);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((*x - *y).norm() < 1e-10);
        }
    }

    /// QASM round-trips are exact for the routed ansatz family.
    #[test]
    fn qasm_roundtrip_is_exact(
        features in prop::collection::vec(0.0f64..2.0, 2..6),
        layers in 1usize..3,
        gamma in 0.1f64..1.2,
    ) {
        let d = (features.len() - 1).clamp(1, 2);
        let c = route_for_mps(&feature_map_circuit(&features, &AnsatzConfig::new(layers, d, gamma)));
        let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
        prop_assert_eq!(back.ops(), c.ops());
    }

    /// Optimizing an already optimized circuit is a no-op (idempotence).
    #[test]
    fn optimize_is_idempotent(
        angles in prop::collection::vec(-2.0f64..2.0, 2..5),
        m in 3usize..6,
    ) {
        let circuit = redundant_circuit(&angles, m);
        let (once, _) = optimize(&circuit);
        let (twice, report) = optimize(&once);
        prop_assert_eq!(once.ops(), twice.ops());
        prop_assert_eq!(report.ops_removed(), 0);
    }
}
