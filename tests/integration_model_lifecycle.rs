//! Cross-crate lifecycle test: train a deployable model, forecast its
//! production cost, stress it under truncation noise, and check every
//! piece against an independent reference (the exact statevector
//! simulator or the batch pipeline).

use qk_circuit::AnsatzConfig;
use qk_core::extrapolate::{forecast_training, PrimitiveCosts};
use qk_core::inference::QuantumKernelModel;
use qk_core::pipeline::{run_quantum_on_split, ExperimentConfig};
use qk_core::truncation_study::{run_truncation_study, TruncationStudyConfig};
use qk_core::Strategy;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;

fn easy_split(seed: u64) -> qk_data::Split {
    let data = generate(&SyntheticConfig {
        noise: 1.0,
        num_features: 12,
        num_illicit: 120,
        num_licit: 280,
        ..SyntheticConfig::small(seed)
    });
    prepare_experiment(&data, 120, 8, seed)
}

#[test]
fn deployed_model_agrees_with_batch_pipeline_metrics() {
    // The deployable single-point path and the batch experiment path
    // must classify identically: same ansatz, same C, same data.
    let split = easy_split(61);
    let ansatz = AnsatzConfig::new(2, 1, 0.5);
    let be = CpuBackend::new();

    let config = ExperimentConfig {
        ansatz,
        c_grid: vec![1.0],
        ..ExperimentConfig::qml(120, 8, 61)
    };
    let batch = run_quantum_on_split(&split, &config, &be);

    let model = QuantumKernelModel::fit(
        &split.train.features,
        &split.train.label_signs(),
        &ansatz,
        &TruncationConfig::default(),
        &SmoParams::with_c(1.0),
        &be,
    );
    let predictions = model.predict_batch(&split.test.features, &be);
    let labels = split.test.label_signs();
    let accuracy = predictions
        .iter()
        .zip(&labels)
        .filter(|(p, &y)| p.label == y)
        .count() as f64
        / labels.len() as f64;

    let batch_accuracy = batch.sweep.points[0].test.accuracy;
    assert!(
        (accuracy - batch_accuracy).abs() < 1e-9,
        "inference path accuracy {accuracy} != pipeline accuracy {batch_accuracy}"
    );
}

#[test]
fn serialized_model_survives_production_roundtrip() {
    let split = easy_split(67);
    let be = CpuBackend::new();
    let model = QuantumKernelModel::fit(
        &split.train.features,
        &split.train.label_signs(),
        &AnsatzConfig::new(2, 2, 0.5),
        &TruncationConfig::default(),
        &SmoParams::with_c(1.0),
        &be,
    );
    let restored = QuantumKernelModel::from_bytes(&model.to_bytes());
    for x in split.test.features.iter().take(8) {
        let a = model.predict_one(x, &be);
        let b = restored.predict_one(x, &be);
        assert!(
            (a.decision_value - b.decision_value).abs() < 1e-9,
            "decision drifted through serialization"
        );
    }
}

#[test]
fn forecast_scales_from_measured_small_run() {
    // Calibrate the cost model on a small measured sample, then check
    // the forecast's structural laws at a scale we can still verify
    // directly: quadrupling N quadruples (about) the inner-product
    // forecast, and doubling processes halves it.
    let split = easy_split(71);
    let be = CpuBackend::new();
    let costs = PrimitiveCosts::measure(
        &split.train.features[..8],
        &AnsatzConfig::new(2, 1, 0.5),
        &TruncationConfig::default(),
        &be,
    );
    let f1 = forecast_training(&costs, 100, 2, Strategy::RoundRobin);
    let f4 = forecast_training(&costs, 400, 2, Strategy::RoundRobin);
    let ratio = f4.inner_products.as_secs_f64() / f1.inner_products.as_secs_f64();
    assert!((14.0..=18.5).contains(&ratio), "N² law violated: {ratio}");

    let f4k = forecast_training(&costs, 400, 4, Strategy::RoundRobin);
    let half = f4.inner_products.as_secs_f64() / f4k.inner_products.as_secs_f64();
    assert!(
        (1.9..=2.1).contains(&half),
        "process scaling violated: {half}"
    );
}

#[test]
fn truncation_noise_stays_below_decision_margins_at_mild_cutoffs() {
    // End-to-end: a 1e-12 cutoff must not change a single test
    // prediction relative to the paper-default 1e-16 model.
    let split = easy_split(73);
    let ansatz = AnsatzConfig::new(2, 3, 0.5);
    let be = CpuBackend::new();
    let study = run_truncation_study(
        &split,
        &TruncationStudyConfig {
            ansatz,
            cutoffs: vec![1e-12],
            c_grid: vec![1.0],
            tol: 1e-3,
        },
        &be,
    );
    assert!(
        (study.points[0].test_auc - study.reference.test_auc).abs() < 1e-9,
        "mild truncation changed AUC: {} vs {}",
        study.points[0].test_auc,
        study.reference.test_auc
    );
    assert!(study.points[0].max_kernel_error < 1e-4);
}
