//! Cross-crate integration: data pipeline -> quantum kernel -> SVM.

use qk_circuit::AnsatzConfig;
use qk_core::pipeline::{run_gaussian_experiment, run_quantum_experiment, ExperimentConfig};
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_svm::default_c_grid;
use qk_tensor::backend::CpuBackend;

fn small_data(seed: u64) -> qk_data::Dataset {
    generate(&SyntheticConfig::small(seed))
}

#[test]
fn quantum_pipeline_produces_valid_metrics() {
    let data = small_data(21);
    let config = ExperimentConfig {
        c_grid: vec![0.1, 1.0, 4.0],
        ..ExperimentConfig::qml(80, 8, 21)
    };
    let be = CpuBackend::new();
    let result = run_quantum_experiment(&data, &config, &be);
    for p in &result.sweep.points {
        for m in [&p.train, &p.test] {
            assert!((0.0..=1.0).contains(&m.auc), "auc {}", m.auc);
            assert!((0.0..=1.0).contains(&m.accuracy));
            assert!((0.0..=1.0).contains(&m.precision));
            assert!((0.0..=1.0).contains(&m.recall));
        }
    }
}

#[test]
fn quantum_and_gaussian_both_learn_the_synthetic_task() {
    let data = generate(&SyntheticConfig {
        noise: 1.2,
        num_features: 12,
        num_illicit: 120,
        num_licit: 240,
        ..SyntheticConfig::small(22)
    });
    let be = CpuBackend::new();
    let config = ExperimentConfig {
        ansatz: AnsatzConfig::new(2, 1, 0.2),
        ..ExperimentConfig::qml(160, 12, 22)
    };
    let quantum = run_quantum_experiment(&data, &config, &be);
    let gaussian = run_gaussian_experiment(&data, 160, 12, 22, &default_c_grid(), 1e-3);
    assert!(
        quantum.best_test_auc() > 0.62,
        "quantum {}",
        quantum.best_test_auc()
    );
    assert!(
        gaussian.best_test_auc() > 0.62,
        "gaussian {}",
        gaussian.best_test_auc()
    );
}

#[test]
fn more_features_help_on_average() {
    // The Fig. 9/10 mechanism at mini scale: averaged over seeds, AUC
    // with 12 features beats AUC with 2 features given enough data.
    // Single-seed comparisons are too noisy at this scale, so average.
    let be = CpuBackend::new();
    let mean_auc = |k: usize| {
        let seeds = [23u64, 24, 25];
        seeds
            .iter()
            .map(|&seed| {
                let data = generate(&SyntheticConfig {
                    num_features: 12,
                    num_illicit: 150,
                    num_licit: 350,
                    noise: 1.5,
                    ..SyntheticConfig::small(seed)
                });
                run_quantum_experiment(
                    &data,
                    &ExperimentConfig {
                        ansatz: AnsatzConfig::new(2, 1, 0.3),
                        ..ExperimentConfig::qml(200, k, seed)
                    },
                    &be,
                )
                .best_test_auc()
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let few = mean_auc(2);
    let many = mean_auc(12);
    assert!(
        many > few,
        "12 features (mean AUC {many}) should beat 2 features ({few})"
    );
}

#[test]
fn prepared_split_feeds_feature_map_domain() {
    // Every prepared feature must be in (0, 2), the feature-map domain.
    let data = small_data(24);
    let split = prepare_experiment(&data, 60, 10, 24);
    for row in split.train.features.iter().chain(&split.test.features) {
        assert_eq!(row.len(), 10);
        for &x in row {
            assert!((0.0..=2.0).contains(&x));
        }
    }
    // Balanced training classes.
    assert_eq!(split.train.num_illicit(), split.train.num_licit());
}

#[test]
fn deep_circuits_concentrate_the_kernel() {
    // Table III's mechanism: depth drives overlaps toward zero.
    use qk_core::gram::gram_matrix;
    use qk_core::states::simulate_states;
    use qk_mps::TruncationConfig;

    let data = small_data(25);
    let split = prepare_experiment(&data, 30, 8, 25);
    let be = CpuBackend::new();
    let shallow_cfg = AnsatzConfig::new(1, 1, 1.0);
    let deep_cfg = AnsatzConfig::new(12, 1, 1.0);
    let shallow = gram_matrix(
        &simulate_states(
            &split.train.features,
            &shallow_cfg,
            &be,
            &TruncationConfig::default(),
        )
        .states,
        &be,
    )
    .kernel;
    let deep = gram_matrix(
        &simulate_states(
            &split.train.features,
            &deep_cfg,
            &be,
            &TruncationConfig::default(),
        )
        .states,
        &be,
    )
    .kernel;
    assert!(
        deep.off_diagonal_mean() < shallow.off_diagonal_mean(),
        "deep kernel mean {} not below shallow {}",
        deep.off_diagonal_mean(),
        shallow.off_diagonal_mean()
    );
}
