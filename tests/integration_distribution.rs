//! Cross-crate integration: distributed Gram strategies against the
//! single-process reference, end to end through the SVM.

use qk_circuit::AnsatzConfig;
use qk_core::distributed::{distributed_gram, Strategy};
use qk_core::gram::gram_matrix;
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_svm::{roc_auc, train_svc, SmoParams};
use qk_tensor::backend::CpuBackend;

fn prepared_rows(n: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let data = generate(&SyntheticConfig::small(seed));
    let split = prepare_experiment(&data, n, k, seed);
    (split.train.features.clone(), split.train.label_signs())
}

#[test]
fn strategies_agree_with_reference_and_each_other() {
    let (rows, _) = prepared_rows(30, 6, 31);
    let be = CpuBackend::new();
    let ansatz = AnsatzConfig::qml_default();
    let tc = TruncationConfig::default();

    let reference = gram_matrix(&simulate_states(&rows, &ansatz, &be, &tc).states, &be).kernel;
    for k in [2usize, 3, 5] {
        for strategy in [Strategy::NoMessaging, Strategy::RoundRobin] {
            let result = distributed_gram(&rows, &ansatz, &be, &tc, k, strategy);
            for i in 0..reference.len() {
                for j in 0..reference.len() {
                    assert!(
                        (result.kernel.get(i, j) - reference.get(i, j)).abs() < 1e-9,
                        "{strategy:?} k={k} [{i}][{j}]"
                    );
                }
            }
        }
    }
}

#[test]
fn distributed_kernel_trains_identical_svm() {
    let (rows, labels) = prepared_rows(24, 5, 32);
    let be = CpuBackend::new();
    let ansatz = AnsatzConfig::qml_default();
    let tc = TruncationConfig::default();

    let reference = gram_matrix(&simulate_states(&rows, &ansatz, &be, &tc).states, &be).kernel;
    let distributed = distributed_gram(&rows, &ansatz, &be, &tc, 4, Strategy::RoundRobin).kernel;

    let params = SmoParams::with_c(1.0);
    let model_a = train_svc(&reference, &labels, &params);
    let model_b = train_svc(&distributed, &labels, &params);
    let scores_a: Vec<f64> = (0..reference.len())
        .map(|i| model_a.decision_value(reference.row(i)))
        .collect();
    let scores_b: Vec<f64> = (0..distributed.len())
        .map(|i| model_b.decision_value(distributed.row(i)))
        .collect();
    let auc_a = roc_auc(&scores_a, &labels);
    let auc_b = roc_auc(&scores_b, &labels);
    assert!(
        (auc_a - auc_b).abs() < 1e-9,
        "training AUC diverged: {auc_a} vs {auc_b}"
    );
}

#[test]
fn round_robin_communicates_less_simulation_than_no_messaging() {
    // The paper's motivation for round-robin: no redundant simulation.
    let (rows, _) = prepared_rows(24, 5, 33);
    let be = CpuBackend::new();
    let ansatz = AnsatzConfig::qml_default();
    let tc = TruncationConfig::default();
    let k = 6;
    let rr = distributed_gram(&rows, &ansatz, &be, &tc, k, Strategy::RoundRobin);
    let nm = distributed_gram(&rows, &ansatz, &be, &tc, k, Strategy::NoMessaging);
    assert_eq!(rr.simulations_run, rows.len());
    assert!(nm.simulations_run > rows.len());
    assert!(rr.bytes_communicated > 0);
    assert_eq!(nm.bytes_communicated, 0);
}

#[test]
fn scaling_processes_preserves_results() {
    // The same kernel regardless of the number of simulated processes.
    let (rows, _) = prepared_rows(20, 4, 34);
    let be = CpuBackend::new();
    let ansatz = AnsatzConfig::qml_default();
    let tc = TruncationConfig::default();
    let k2 = distributed_gram(&rows, &ansatz, &be, &tc, 2, Strategy::RoundRobin).kernel;
    let k8 = distributed_gram(&rows, &ansatz, &be, &tc, 8, Strategy::RoundRobin).kernel;
    for i in 0..k2.len() {
        for j in 0..k2.len() {
            assert!((k2.get(i, j) - k8.get(i, j)).abs() < 1e-9);
        }
    }
}
