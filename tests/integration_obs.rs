//! Observability determinism acceptance: instrumented gram runs leave
//! journals that are byte-identical modulo timestamps, a killed-and-
//! resumed job's two-life trail is just as reproducible, and the
//! exported `obs_gram.json` passes the schema gate with a real span
//! rollup.
//!
//! Journal comparisons pin `workers = 1`: event *content* is
//! deterministic for any worker count, but interleaving (and stealing)
//! makes multi-worker event *order* history-dependent by design.

use qk::circuit::AnsatzConfig;
use qk::core::simulate_states;
use qk::gram::{encoding_fingerprint, GramConfig, GramEngine, GramError, GramOutcome};
use qk::mps::{Mps, TruncationConfig};
use qk::obs::{json, stripped_lines, validate_report_json, Json};
use qk::tensor::backend::CpuBackend;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qk-obs-integration-{}-{tag}-{id}",
        std::process::id()
    ))
}

fn pipeline_states(n: usize, features: usize) -> (Vec<Mps>, u64) {
    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..features)
                .map(|j| ((i * features + j) % 13) as f64 * 0.21)
                .collect()
        })
        .collect();
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;
    (states, encoding_fingerprint(&ansatz, &trunc))
}

/// One single-worker checkpointed run exporting into `obs_dir`.
fn observed_run(
    states: &[Mps],
    encoding: u64,
    ckpt: &Path,
    obs_dir: &Path,
    max_tiles: Option<usize>,
    throttle: Option<Duration>,
) -> Result<GramOutcome, GramError> {
    let mut cfg = GramConfig::checkpointed(ckpt, 4, encoding);
    cfg.workers = 1;
    cfg.max_tiles = max_tiles;
    cfg.throttle = throttle;
    cfg.obs_dir = Some(obs_dir.to_path_buf());
    GramEngine::new(cfg).compute_gram(states, &CpuBackend::new())
}

fn journal(obs_dir: &Path) -> PathBuf {
    obs_dir.join("gram_journal.jsonl")
}

/// Distinct span paths recorded in an exported `obs_gram.json`.
fn span_paths(obs_dir: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(obs_dir.join("obs_gram.json")).expect("report exported");
    validate_report_json(&text).expect("exported report passes the schema gate");
    let root = json::parse(&text).expect("exported report parses");
    root.get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .iter()
        .map(|s| {
            s.get("path")
                .and_then(Json::as_str)
                .expect("span path")
                .to_string()
        })
        .collect()
}

/// The satellite's core claim: two identical throttled runs produce
/// identical journals once `t_us` stamps are stripped — wall-clock
/// jitter (here injected via per-tile throttling) never reaches the
/// event stream.
#[test]
fn identical_throttled_runs_leave_identical_journals() {
    let (states, encoding) = pipeline_states(12, 4);
    let throttle = Some(Duration::from_millis(2));

    let mut trails = Vec::new();
    for round in 0..2 {
        let ckpt = scratch(&format!("twin-ckpt-{round}"));
        let obs = scratch(&format!("twin-obs-{round}"));
        observed_run(&states, encoding, &ckpt, &obs, None, throttle).expect("clean run");
        let trail = stripped_lines(&journal(&obs)).expect("journal readable");
        assert!(!trail.is_empty(), "journal must record lifecycle events");
        assert!(
            trail.iter().all(|l| l.contains("\"t_us\":0")),
            "comparator strips stamps"
        );
        trails.push(trail);
        let _ = std::fs::remove_dir_all(&ckpt);
        let _ = std::fs::remove_dir_all(&obs);
    }
    assert_eq!(
        trails[0], trails[1],
        "stripped journals must be byte-identical"
    );

    let starts = trails[0]
        .iter()
        .filter(|l| l.contains("\"event\":\"job_start\""))
        .count();
    let ends = trails[0]
        .iter()
        .filter(|l| l.contains("\"event\":\"job_end\""))
        .count();
    assert_eq!((starts, ends), (1, 1), "one life, one start/end pair");
    assert!(trails[0]
        .iter()
        .any(|l| l.contains("\"event\":\"tile_computed\"")));
}

/// Kill-and-resume auditability: a job interrupted mid-run and resumed
/// by a fresh engine appends to the same journal, and the whole
/// two-life trail is reproducible event-for-event.
#[test]
fn killed_and_resumed_runs_leave_identical_two_life_journals() {
    let (states, encoding) = pipeline_states(12, 4);

    let mut trails = Vec::new();
    for round in 0..2 {
        let ckpt = scratch(&format!("resume-ckpt-{round}"));
        let obs = scratch(&format!("resume-obs-{round}"));
        // Life 1: deterministic preemption after 4 fresh tiles.
        match observed_run(&states, encoding, &ckpt, &obs, Some(4), None) {
            Err(GramError::Interrupted { done, total }) => {
                assert_eq!(done, 4);
                assert_eq!(total, 6);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        // Life 2: a fresh engine resumes from the checkpoint.
        let out = observed_run(&states, encoding, &ckpt, &obs, None, None).expect("resume");
        assert_eq!(out.report.tiles_restored, 4);
        assert_eq!(out.report.tiles_computed, 2);

        let trail = stripped_lines(&journal(&obs)).expect("journal readable");
        trails.push(trail);
        let _ = std::fs::remove_dir_all(&ckpt);
        let _ = std::fs::remove_dir_all(&obs);
    }
    assert_eq!(
        trails[0], trails[1],
        "two-life trails must match modulo timestamps"
    );

    // The trail tells the whole story: interrupted end, resume marker
    // with the restored count, then a complete end.
    let trail = &trails[0];
    let interrupted = trail
        .iter()
        .position(|l| {
            l.contains("\"event\":\"job_end\"") && l.contains("\"status\":\"interrupted\"")
        })
        .expect("life 1 records an interrupted end");
    let resume = trail
        .iter()
        .position(|l| l.contains("\"event\":\"job_resume\"") && l.contains("\"restored\":4"))
        .expect("life 2 records the resume with its restored count");
    let complete = trail
        .iter()
        .position(|l| l.contains("\"event\":\"job_end\"") && l.contains("\"status\":\"complete\""))
        .expect("life 2 records a complete end");
    assert!(
        interrupted < resume && resume < complete,
        "lifecycle order preserved"
    );
    assert_eq!(
        trail
            .iter()
            .filter(|l| l.contains("\"event\":\"tile_restored\""))
            .count(),
        4,
        "each restored tile is journaled"
    );
}

/// The exported report is schema-valid and carries a real flamegraph:
/// at least five distinct span paths from one instrumented gram run.
#[test]
fn exported_gram_report_has_a_deep_span_rollup() {
    let (states, encoding) = pipeline_states(12, 4);
    let ckpt = scratch("rollup-ckpt");
    let obs = scratch("rollup-obs");
    observed_run(&states, encoding, &ckpt, &obs, None, None).expect("clean run");

    let paths = span_paths(&obs);
    assert!(
        paths.len() >= 5,
        "expected >= 5 distinct span paths, got {paths:?}"
    );
    for expected in [
        "gram_job",
        "gram_job/restore_scan",
        "gram_job/assemble",
        "gram_worker/tile_compute",
        "gram_worker/checkpoint_write",
    ] {
        assert!(
            paths.iter().any(|p| p == expected),
            "missing span {expected}: {paths:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&obs);
}

/// Instrumented and bare runs of the same job agree bitwise — the
/// observability layer is outside the determinism contract.
#[test]
fn instrumentation_does_not_perturb_the_kernel() {
    let (states, encoding) = pipeline_states(12, 4);
    let ckpt = scratch("bitwise-ckpt");
    let obs = scratch("bitwise-obs");

    let bare = GramEngine::new(GramConfig::in_memory(4))
        .compute_gram(&states, &CpuBackend::new())
        .expect("bare run");
    let observed =
        observed_run(&states, encoding, &ckpt, &obs, None, None).expect("instrumented run");
    assert_eq!(observed.kernel.data(), bare.kernel.data());
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&obs);
}
