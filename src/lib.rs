//! Workspace facade for the quantum-kernel MPS reproduction.
//!
//! Re-exports every `qk-*` crate under one roof so downstream users (and
//! this package's own integration suites and examples) can depend on a
//! single `qk` crate. The pipeline mirrors the paper:
//!
//! 1. [`data`] — datasets, synthetic generators, preprocessing into the
//!    feature-map domain;
//! 2. [`circuit`] — the IQP-style feature-map ansatz and circuit tooling;
//! 3. [`mps`] / [`statevector`] — matrix-product-state simulation and the
//!    dense ground-truth simulator;
//! 4. [`core`] — Gram-matrix assembly, distribution strategies,
//!    inference;
//! 5. [`gram`] — the out-of-core tiled Gram engine with
//!    checkpoint/resume and state spill;
//! 6. [`svm`] — kernel SVM training (SMO), calibration, metrics;
//! 7. [`serve`] — concurrent batched-inference serving with an MPS
//!    encoding cache and hot-swappable model versions;
//! 8. [`bench`] — figure/table reproduction harness;
//! 9. [`tensor`] — the shared dense linear-algebra substrate;
//! 10. [`mpi`] — the in-process MPI-shaped messaging shim;
//! 11. [`obs`] — unified tracing spans, metrics registry, and the
//!     durable lifecycle event journal;
//! 12. [`chaos`] — deterministic fault injection (seeded fault plans
//!     over named sites) and the bounded-backoff retry policy the
//!     hardened crates recover with.
#![forbid(unsafe_code)]

pub use qk_bench as bench;
pub use qk_chaos as chaos;
pub use qk_circuit as circuit;
pub use qk_core as core;
pub use qk_data as data;
pub use qk_gram as gram;
pub use qk_mpi as mpi;
pub use qk_mps as mps;
pub use qk_obs as obs;
pub use qk_serve as serve;
pub use qk_statevector as statevector;
pub use qk_svm as svm;
pub use qk_tensor as tensor;
