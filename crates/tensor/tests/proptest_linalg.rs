//! Property-based tests of the linear-algebra core on random complex
//! matrices: factorization residuals, orthogonality, contraction algebra.

use proptest::prelude::*;
use qk_tensor::complex::{c64, Complex64};
use qk_tensor::contract::contract;
use qk_tensor::matrix::{conj_transpose, gemm_serial};
use qk_tensor::qr::{lq, qr};
use qk_tensor::svd::{svd, svd_parallel};
use qk_tensor::tensor::Tensor;

fn complex_entry() -> impl Strategy<Value = Complex64> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| c64(re, im))
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(complex_entry(), rows * cols)
}

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..9, 1usize..9)
}

fn frob(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SVD reconstructs the input to numerical accuracy on any shape.
    #[test]
    fn svd_reconstructs((m, n) in dims(), seed in 0u64..1000) {
        let a = deterministic_matrix(m, n, seed);
        let f = svd(m, n, &a);
        let recon = f.reconstruct();
        let scale = frob(&a).max(1.0);
        let err: f64 = recon.iter().zip(&a).map(|(x, y)| (*x - *y).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(err < 1e-9 * scale, "residual {err}");
        // Singular values are sorted and non-negative.
        prop_assert!(f.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        prop_assert!(f.s.iter().all(|&s| s >= 0.0));
        // Frobenius norm is preserved by the spectrum.
        prop_assert!((f.weight().sqrt() - frob(&a)).abs() < 1e-9 * scale);
    }

    /// Serial and parallel Jacobi agree on the spectrum.
    #[test]
    fn svd_parallel_agrees((m, n) in dims(), seed in 0u64..1000) {
        let a = deterministic_matrix(m, n, seed);
        let fs = svd(m, n, &a);
        let fp = svd_parallel(m, n, &a);
        for (x, y) in fs.s.iter().zip(&fp.s) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    /// QR reconstructs with orthonormal Q on any shape.
    #[test]
    fn qr_reconstructs((m, n) in dims(), seed in 0u64..1000) {
        let a = deterministic_matrix(m, n, seed);
        let f = qr(m, n, &a);
        let mut recon = vec![Complex64::ZERO; m * n];
        gemm_serial(m, f.k, n, &f.q, &f.r, &mut recon);
        let scale = frob(&a).max(1.0);
        let err: f64 = recon.iter().zip(&a).map(|(x, y)| (*x - *y).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(err < 1e-9 * scale);
        // Q^H Q = I.
        for c1 in 0..f.k {
            for c2 in 0..f.k {
                let mut dot = Complex64::ZERO;
                for i in 0..m {
                    dot = dot.conj_mul_add(f.q[i * f.k + c1], f.q[i * f.k + c2]);
                }
                let expect = if c1 == c2 { Complex64::ONE } else { Complex64::ZERO };
                prop_assert!((dot - expect).norm() < 1e-9);
            }
        }
    }

    /// LQ reconstructs on any shape.
    #[test]
    fn lq_reconstructs((m, n) in dims(), seed in 0u64..1000) {
        let a = deterministic_matrix(m, n, seed);
        let f = lq(m, n, &a);
        let mut recon = vec![Complex64::ZERO; m * n];
        gemm_serial(m, f.k, n, &f.l, &f.q, &mut recon);
        let scale = frob(&a).max(1.0);
        let err: f64 = recon.iter().zip(&a).map(|(x, y)| (*x - *y).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(err < 1e-9 * scale);
    }

    /// GEMM distributes over addition: (A + B) C = AC + BC.
    #[test]
    fn gemm_is_linear(seed in 0u64..500) {
        let (m, k, n) = (4usize, 5usize, 3usize);
        let a = deterministic_matrix(m, k, seed);
        let b = deterministic_matrix(m, k, seed + 7);
        let c = deterministic_matrix(k, n, seed + 13);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut lhs = vec![Complex64::ZERO; m * n];
        gemm_serial(m, k, n, &sum, &c, &mut lhs);
        let mut ac = vec![Complex64::ZERO; m * n];
        let mut bc = vec![Complex64::ZERO; m * n];
        gemm_serial(m, k, n, &a, &c, &mut ac);
        gemm_serial(m, k, n, &b, &c, &mut bc);
        for i in 0..m * n {
            prop_assert!((lhs[i] - (ac[i] + bc[i])).norm() < 1e-10);
        }
    }

    /// Conjugate transpose is an involution and reverses products:
    /// (AB)^H = B^H A^H.
    #[test]
    fn dagger_reverses_products(seed in 0u64..500) {
        let (m, k, n) = (3usize, 4usize, 5usize);
        let a = deterministic_matrix(m, k, seed);
        let b = deterministic_matrix(k, n, seed + 3);
        let mut ab = vec![Complex64::ZERO; m * n];
        gemm_serial(m, k, n, &a, &b, &mut ab);
        let abh = conj_transpose(m, n, &ab); // n x m
        let ah = conj_transpose(m, k, &a); // k x m
        let bh = conj_transpose(k, n, &b); // n x k
        let mut bh_ah = vec![Complex64::ZERO; n * m];
        gemm_serial(n, k, m, &bh, &ah, &mut bh_ah);
        for i in 0..n * m {
            prop_assert!((abh[i] - bh_ah[i]).norm() < 1e-10);
        }
    }

    /// Tensor contraction over a matching middle axis is associative with
    /// matrix multiplication: contract(contract(A,B),C) = contract(A,contract(B,C)).
    #[test]
    fn contraction_is_associative(seed in 0u64..500) {
        let a = Tensor::from_data(&[3, 4], deterministic_matrix(3, 4, seed));
        let b = Tensor::from_data(&[4, 2], deterministic_matrix(4, 2, seed + 1));
        let c = Tensor::from_data(&[2, 5], deterministic_matrix(2, 5, seed + 2));
        let left = contract(&contract(&a, &[1], &b, &[0]), &[1], &c, &[0]);
        let right = contract(&a, &[1], &contract(&b, &[1], &c, &[0]), &[0]);
        prop_assert_eq!(left.shape(), right.shape());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((*x - *y).norm() < 1e-10);
        }
    }

    /// Permuting axes preserves the multiset of entries and the norm.
    #[test]
    fn permute_preserves_norm(seed in 0u64..500) {
        let t = Tensor::from_data(&[2, 3, 4], deterministic_matrix(6, 4, seed));
        for perm in [[1usize, 0, 2], [2, 1, 0], [0, 2, 1], [2, 0, 1]] {
            let p = t.permute(&perm);
            prop_assert!((p.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        }
    }

    /// SVD also holds on proptest-generated (shrinkable) inputs, and the
    /// rank never exceeds min(m, n).
    #[test]
    fn svd_on_arbitrary_matrices(a in matrix(5, 3)) {
        let f = svd(5, 3, &a);
        prop_assert!(f.s.len() <= 3);
        let recon = f.reconstruct();
        let scale = frob(&a).max(1.0);
        let err: f64 =
            recon.iter().zip(&a).map(|(x, y)| (*x - *y).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(err < 1e-9 * scale, "residual {err}");
    }

    /// Scaling a matrix by a complex scalar scales the Frobenius norm by
    /// its modulus.
    #[test]
    fn scalar_scales_frobenius_norm(z in complex_entry(), a in matrix(4, 4)) {
        let scaled: Vec<Complex64> = a.iter().map(|&x| z * x).collect();
        prop_assert!((frob(&scaled) - z.norm() * frob(&a)).abs() < 1e-10);
    }

    /// GEMM on flat buffers agrees with the generic tensor contraction.
    #[test]
    fn gemm_matches_tensor_contract(a in matrix(3, 4), b in matrix(4, 2)) {
        let mut ab = vec![Complex64::ZERO; 3 * 2];
        gemm_serial(3, 4, 2, &a, &b, &mut ab);
        let ta = Tensor::from_data(&[3, 4], a);
        let tb = Tensor::from_data(&[4, 2], b);
        let tc = contract(&ta, &[1], &tb, &[0]);
        for (x, y) in ab.iter().zip(tc.data()) {
            prop_assert!((*x - *y).norm() < 1e-10);
        }
    }
}

/// Deterministic pseudo-random matrix (xorshift), so failures replay.
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..rows * cols)
        .map(|_| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            c64(next(), next())
        })
        .collect()
}
