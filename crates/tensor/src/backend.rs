//! Execution backends: the CPU / accelerator split of the paper.
//!
//! The paper benchmarks two engines running the *same* MPS algorithm:
//! ITensors on an AMD EPYC CPU and pytket-cutensornet on an NVIDIA A100.
//! We have no GPU, so the accelerator is reproduced as a *device model*
//! (see DESIGN.md, substitution 1): every primitive call pays a fixed
//! launch latency plus a transfer cost proportional to the bytes touched,
//! and in exchange the kernels run data-parallel over all cores. This
//! preserves the mechanism behind the paper's Fig. 5 crossover — overhead
//! dominates at small bond dimension, throughput wins at large.
//!
//! Both backends are deterministic and bit-identical in *results*; they
//! differ only in scheduling and simulated cost, mirroring the paper's
//! Table I observation that CPU and GPU bond dimensions agree.

use crate::complex::Complex64;
use crate::matrix::{gemm_parallel, gemm_serial};
use crate::svd::{svd, svd_parallel, Svd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A primitive-execution engine for tensor kernels.
///
/// Implementations must be `Send + Sync`: the Gram-matrix distribution
/// layer shares one backend across worker threads.
pub trait ExecutionBackend: Send + Sync {
    /// Human-readable backend name (appears in harness output).
    fn name(&self) -> &'static str;

    /// `c = a * b` with `a: m x k`, `b: k x n`, row-major.
    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    );

    /// `c = a^H * b` with `a: k x m` stored row-major (so `a^H: m x k`),
    /// `b: k x n`: the zipper's fused-conjugate transfer step.
    /// Conjugation happens inside the kernel (in the packing step of the
    /// blocked path), so callers never materialize `conj(a)`.
    ///
    /// The default forwards to the serial kernel; backends override to
    /// count calls and charge their cost model.
    fn gemm_conj_a(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    ) {
        crate::matrix::gemm_conj_a(m, k, n, a, b, c);
    }

    /// Thin SVD of a row-major `m x n` matrix.
    fn svd(&self, m: usize, n: usize, a: &[Complex64]) -> Svd;

    /// Number of primitive calls issued so far (diagnostics).
    fn calls(&self) -> u64 {
        0
    }

    /// Cumulative *virtual* time of all calls, when the backend is timed
    /// on a simulated device clock. `None` means wall-clock is the right
    /// measure (the CPU backend). Harnesses take deltas of this counter
    /// around the section they time.
    fn virtual_clock(&self) -> Option<Duration> {
        None
    }
}

/// Serial CPU backend; stands in for the ITensors/EPYC configuration.
#[derive(Debug, Default)]
pub struct CpuBackend {
    calls: AtomicU64,
}

impl CpuBackend {
    /// Creates a CPU backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecutionBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu-serial"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    ) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        gemm_serial(m, k, n, a, b, c);
    }

    fn gemm_conj_a(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    ) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        crate::matrix::gemm_conj_a(m, k, n, a, b, c);
    }

    fn svd(&self, m: usize, n: usize, a: &[Complex64]) -> Svd {
        self.calls.fetch_add(1, Ordering::Relaxed);
        svd(m, n, a)
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// Cost model of the simulated accelerator device.
///
/// The accelerator is timed on a *virtual clock* (the standard
/// architectural-simulation technique): each primitive call of measured
/// host cost `t` is charged `t / compute_speedup + launch_latency +
/// bytes / transfer_bandwidth`. On a many-core host, the rayon-parallel
/// kernels realize part of the speedup physically and `compute_speedup`
/// can be set to 1; on a constrained host the virtual clock carries the
/// throughput model. Timing harnesses read the virtual clock via
/// [`ExecutionBackend::virtual_clock`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    /// Fixed cost charged per primitive call (kernel launch + host-side
    /// dispatch; the paper's GPU backend is dispatched from Python). The
    /// paper attributes the CPU-favoured regime at small `d` to exactly
    /// this kind of overhead.
    pub launch_latency: Duration,
    /// Simulated host<->device bandwidth; each call is charged
    /// `bytes / bandwidth` for the operand bytes it touches. `f64::INFINITY`
    /// disables the charge.
    pub transfer_bytes_per_sec: f64,
    /// Device throughput relative to one host core; divides the measured
    /// kernel time on the virtual clock. Must be >= 1.
    pub compute_speedup: f64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        // Calibrated so the crossover sits in the upper half of a d-sweep,
        // as in the paper's Fig. 5: ~400us dispatch per primitive
        // (Python-level launch overhead), 16 GB/s PCIe gen4 transfer, and
        // a 6x device-vs-core throughput advantage.
        DeviceModel {
            launch_latency: Duration::from_micros(400),
            transfer_bytes_per_sec: 16.0e9,
            compute_speedup: 6.0,
        }
    }
}

impl DeviceModel {
    /// A model with no overhead and no speedup: virtual time equals real
    /// kernel time (ablation baseline).
    pub fn ideal() -> Self {
        DeviceModel {
            launch_latency: Duration::ZERO,
            transfer_bytes_per_sec: f64::INFINITY,
            compute_speedup: 1.0,
        }
    }

    /// Total simulated overhead for one call touching `bytes` operand bytes.
    pub fn overhead(&self, bytes: usize) -> Duration {
        let transfer = if self.transfer_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.transfer_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.launch_latency + transfer
    }

    /// Virtual cost of one call: measured kernel time scaled by the
    /// throughput model, plus overhead.
    pub fn virtual_cost(&self, kernel_time: Duration, bytes: usize) -> Duration {
        let compute =
            Duration::from_secs_f64(kernel_time.as_secs_f64() / self.compute_speedup.max(1.0));
        compute + self.overhead(bytes)
    }
}

/// Parallel "accelerator" backend; stands in for pytket-cutensornet on an
/// A100, with overhead injected per the [`DeviceModel`].
#[derive(Debug)]
pub struct AcceleratorBackend {
    model: DeviceModel,
    calls: AtomicU64,
    virtual_nanos: AtomicU64,
}

impl AcceleratorBackend {
    /// Creates an accelerator backend with the given device model.
    pub fn new(model: DeviceModel) -> Self {
        AcceleratorBackend {
            model,
            calls: AtomicU64::new(0),
            virtual_nanos: AtomicU64::new(0),
        }
    }

    /// Creates an accelerator with the default device model.
    pub fn with_default_model() -> Self {
        Self::new(DeviceModel::default())
    }

    /// The device model in use.
    pub fn model(&self) -> DeviceModel {
        self.model
    }

    /// Total virtual time accumulated so far.
    pub fn total_virtual(&self) -> Duration {
        Duration::from_nanos(self.virtual_nanos.load(Ordering::Relaxed))
    }

    /// Records one call of measured kernel time `t` touching `bytes`.
    fn charge(&self, t: Duration, bytes: usize) {
        let v = self.model.virtual_cost(t, bytes);
        self.virtual_nanos
            .fetch_add(v.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl ExecutionBackend for AcceleratorBackend {
    fn name(&self) -> &'static str {
        "accelerator"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    ) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let bytes = (a.len() + b.len() + c.len()) * std::mem::size_of::<Complex64>();
        let t0 = Instant::now();
        gemm_parallel(m, k, n, a, b, c);
        self.charge(t0.elapsed(), bytes);
    }

    fn gemm_conj_a(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    ) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let bytes = (a.len() + b.len() + c.len()) * std::mem::size_of::<Complex64>();
        let t0 = Instant::now();
        // Same kernel as the CPU backend: results stay bit-identical
        // across backends; only the virtual cost model differs.
        crate::matrix::gemm_conj_a(m, k, n, a, b, c);
        self.charge(t0.elapsed(), bytes);
    }

    fn svd(&self, m: usize, n: usize, a: &[Complex64]) -> Svd {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let bytes = std::mem::size_of_val(a);
        let t0 = Instant::now();
        let f = svd_parallel(m, n, a);
        self.charge(t0.elapsed(), bytes);
        f
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn virtual_clock(&self) -> Option<Duration> {
        Some(self.total_virtual())
    }
}

/// Which backend to construct; the harness-level switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Serial CPU execution.
    Cpu,
    /// Simulated accelerator with the default device model.
    Accelerator,
}

impl BackendKind {
    /// Instantiates the backend.
    pub fn build(self) -> Box<dyn ExecutionBackend> {
        match self {
            BackendKind::Cpu => Box::new(CpuBackend::new()),
            BackendKind::Accelerator => Box::new(AcceleratorBackend::with_default_model()),
        }
    }

    /// Parses `"cpu"` / `"gpu"` / `"accelerator"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" => Some(BackendKind::Cpu),
            "gpu" | "accel" | "accelerator" => Some(BackendKind::Accelerator),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{approx_eq, c64};

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..rows * cols)
            .map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                };
                c64(next(), next())
            })
            .collect()
    }

    #[test]
    fn backends_agree_on_gemm() {
        let cpu = CpuBackend::new();
        let acc = AcceleratorBackend::new(DeviceModel::ideal());
        let (m, k, n) = (9, 7, 11);
        let a = test_matrix(m, k, 1);
        let b = test_matrix(k, n, 2);
        let mut c1 = vec![Complex64::ZERO; m * n];
        let mut c2 = vec![Complex64::ZERO; m * n];
        cpu.gemm(m, k, n, &a, &b, &mut c1);
        acc.gemm(m, k, n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
        assert_eq!(cpu.calls(), 1);
        assert_eq!(acc.calls(), 1);
    }

    #[test]
    fn backends_agree_on_conj_gemm() {
        let cpu = CpuBackend::new();
        let acc = AcceleratorBackend::new(DeviceModel::ideal());
        let (m, k, n) = (6, 10, 5);
        let a = test_matrix(k, m, 6); // stored k x m, enters as a^H
        let b = test_matrix(k, n, 7);
        let mut c1 = vec![Complex64::ZERO; m * n];
        let mut c2 = vec![Complex64::ZERO; m * n];
        cpu.gemm_conj_a(m, k, n, &a, &b, &mut c1);
        acc.gemm_conj_a(m, k, n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        assert_eq!(cpu.calls(), 1);
        assert_eq!(acc.calls(), 1);
    }

    #[test]
    fn backends_agree_on_singular_values() {
        let cpu = CpuBackend::new();
        let acc = AcceleratorBackend::new(DeviceModel::ideal());
        let a = test_matrix(10, 8, 3);
        let s1 = cpu.svd(10, 8, &a).s;
        let s2 = acc.svd(10, 8, &a).s;
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn virtual_clock_accumulates_overhead() {
        let model = DeviceModel {
            launch_latency: Duration::from_micros(500),
            transfer_bytes_per_sec: f64::INFINITY,
            compute_speedup: 1.0,
        };
        let acc = AcceleratorBackend::new(model);
        let a = test_matrix(4, 4, 4);
        let b = test_matrix(4, 4, 5);
        let mut c = vec![Complex64::ZERO; 16];
        for _ in 0..3 {
            acc.gemm(4, 4, 4, &a, &b, &mut c);
        }
        // 3 calls x 500us launch, plus (tiny) kernel time.
        let v = acc
            .virtual_clock()
            .expect("accelerator has a virtual clock");
        assert!(v >= Duration::from_micros(1500), "virtual clock {v:?}");
        assert!(v < Duration::from_millis(50));
    }

    #[test]
    fn overhead_includes_transfer_term() {
        let model = DeviceModel {
            launch_latency: Duration::ZERO,
            transfer_bytes_per_sec: 1.0e9,
            compute_speedup: 1.0,
        };
        // 1e6 bytes at 1 GB/s = 1 ms.
        assert_eq!(model.overhead(1_000_000), Duration::from_millis(1));
        assert_eq!(DeviceModel::ideal().overhead(1 << 30), Duration::ZERO);
    }

    #[test]
    fn virtual_cost_scales_kernel_time() {
        let model = DeviceModel {
            launch_latency: Duration::from_micros(100),
            transfer_bytes_per_sec: f64::INFINITY,
            compute_speedup: 4.0,
        };
        let v = model.virtual_cost(Duration::from_micros(400), 0);
        // 400/4 + 100
        assert_eq!(v, Duration::from_micros(200));
        // CPU backend exposes no virtual clock.
        assert!(CpuBackend::new().virtual_clock().is_none());
    }

    #[test]
    fn backend_kind_parsing() {
        assert_eq!(BackendKind::parse("cpu"), Some(BackendKind::Cpu));
        assert_eq!(BackendKind::parse("GPU"), Some(BackendKind::Accelerator));
        assert_eq!(
            BackendKind::parse("accelerator"),
            Some(BackendKind::Accelerator)
        );
        assert_eq!(BackendKind::parse("tpu"), None);
        assert_eq!(BackendKind::Cpu.build().name(), "cpu-serial");
    }
}
