//! # qk-tensor
//!
//! Dense complex tensor algebra underpinning the MPS quantum-kernel stack:
//!
//! * [`complex`] — `Complex64` scalar type.
//! * [`tensor`] — row-major dense tensors with reshape/permute (the paper's
//!   eq. 7 bijection is a free reshape).
//! * [`matrix`] — GEMM kernels (serial and rayon-parallel) and helpers.
//! * [`mod@contract`] — pairwise tensor contraction (eq. 6).
//! * [`qr`] — Householder QR/LQ for MPS canonicalization.
//! * [`mod@svd`] — one-sided Jacobi SVD (serial and parallel) plus the
//!   two-qubit-gate operator-Schmidt split.
//! * [`backend`] — the CPU vs simulated-accelerator execution split behind
//!   the paper's Fig. 5 crossover study.
//!
//! Everything is hand-rolled: no BLAS, LAPACK, or external tensor crates.

#![warn(missing_docs)]

pub mod backend;
pub mod complex;
pub mod contract;
pub mod matrix;
pub mod qr;
pub mod svd;
pub mod tensor;

pub use backend::{AcceleratorBackend, BackendKind, CpuBackend, DeviceModel, ExecutionBackend};
pub use complex::{c64, Complex64};
pub use contract::{contract, contract_with, inner_full};
pub use svd::{split_two_qubit_gate, svd, svd_parallel, Svd};
pub use tensor::Tensor;
