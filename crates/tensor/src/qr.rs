//! Householder QR and LQ factorizations for complex matrices.
//!
//! These are the workhorses of MPS canonicalization: moving the
//! orthogonality center left-to-right uses thin QR, right-to-left uses thin
//! LQ. Both return the "thin" factors with inner dimension `k = min(m, n)`,
//! which is all an MPS sweep ever needs.

use crate::complex::Complex64;
use crate::matrix::conj_transpose;

/// Result of a thin QR factorization `a = q * r`.
///
/// `q` is `m x k` with orthonormal columns, `r` is `k x n` upper triangular,
/// `k = min(m, n)`.
pub struct Qr {
    /// Orthonormal factor, row-major `m x k`.
    pub q: Vec<Complex64>,
    /// Upper-triangular factor, row-major `k x n`.
    pub r: Vec<Complex64>,
    /// Rows of `a`.
    pub m: usize,
    /// Columns of `a`.
    pub n: usize,
    /// Inner dimension `min(m, n)`.
    pub k: usize,
}

/// Result of a thin LQ factorization `a = l * q`.
///
/// `l` is `m x k` lower triangular, `q` is `k x n` with orthonormal rows.
pub struct Lq {
    /// Lower-triangular factor, row-major `m x k`.
    pub l: Vec<Complex64>,
    /// Row-orthonormal factor, row-major `k x n`.
    pub q: Vec<Complex64>,
    /// Rows of `a`.
    pub m: usize,
    /// Columns of `a`.
    pub n: usize,
    /// Inner dimension `min(m, n)`.
    pub k: usize,
}

/// Thin QR of a row-major `m x n` matrix via Householder reflections.
pub fn qr(m: usize, n: usize, a: &[Complex64]) -> Qr {
    assert_eq!(a.len(), m * n, "qr: matrix size mismatch");
    let k = m.min(n);
    // Working copy, becomes R in its top k rows.
    let mut r = a.to_vec();
    // Householder vectors, one per reflection, stored packed. v_j has
    // length m - j; tau is the real scale 2 / ||v||^2.
    let mut vs: Vec<(Vec<Complex64>, f64)> = Vec::with_capacity(k);

    for j in 0..k {
        // Column j below the diagonal.
        let mut v: Vec<Complex64> = (j..m).map(|i| r[i * n + j]).collect();
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm == 0.0 {
            vs.push((Vec::new(), 0.0));
            continue;
        }
        let alpha = v[0];
        let phase = if alpha.norm() > 0.0 {
            alpha / alpha.norm()
        } else {
            Complex64::ONE
        };
        let beta = -phase * norm;
        v[0] -= beta;
        let vnorm_sqr = v.iter().map(|z| z.norm_sqr()).sum::<f64>();
        if vnorm_sqr < f64::MIN_POSITIVE {
            vs.push((Vec::new(), 0.0));
            continue;
        }
        let tau = 2.0 / vnorm_sqr;
        // Apply H = I - tau v v^H to the trailing submatrix r[j.., j..].
        for col in j..n {
            let mut w = Complex64::ZERO;
            for (off, vi) in v.iter().enumerate() {
                w = w.conj_mul_add(*vi, r[(j + off) * n + col]);
            }
            w *= tau;
            for (off, vi) in v.iter().enumerate() {
                let e = &mut r[(j + off) * n + col];
                *e -= w * *vi;
            }
        }
        vs.push((v, tau));
    }

    // Extract the upper-triangular k x n block.
    let mut r_out = vec![Complex64::ZERO; k * n];
    for i in 0..k {
        for jcol in i..n {
            r_out[i * n + jcol] = r[i * n + jcol];
        }
    }

    // Accumulate thin Q: apply reflections in reverse to the first k columns
    // of the identity.
    let mut q = vec![Complex64::ZERO; m * k];
    for i in 0..k {
        q[i * k + i] = Complex64::ONE;
    }
    for j in (0..k).rev() {
        let (v, tau) = &vs[j];
        if v.is_empty() {
            continue;
        }
        for col in 0..k {
            let mut w = Complex64::ZERO;
            for (off, vi) in v.iter().enumerate() {
                w = w.conj_mul_add(*vi, q[(j + off) * k + col]);
            }
            w *= *tau;
            for (off, vi) in v.iter().enumerate() {
                let e = &mut q[(j + off) * k + col];
                *e -= w * *vi;
            }
        }
    }

    Qr {
        q,
        r: r_out,
        m,
        n,
        k,
    }
}

/// Thin LQ of a row-major `m x n` matrix, computed as the conjugate
/// transpose of the QR of `a^H`.
pub fn lq(m: usize, n: usize, a: &[Complex64]) -> Lq {
    assert_eq!(a.len(), m * n, "lq: matrix size mismatch");
    let ah = conj_transpose(m, n, a); // n x m
    let f = qr(n, m, &ah);
    // a^H = Q1 R1  =>  a = R1^H Q1^H, so L = R1^H (m x k), Q = Q1^H (k x n).
    let l = conj_transpose(f.k, f.n, &f.r); // r was k x m -> m x k
    let q = conj_transpose(f.m, f.k, &f.q); // q was n x k -> k x n
    Lq { l, q, m, n, k: f.k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{approx_eq, c64};
    use crate::matrix::gemm_serial;

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                };
                c64(next(), next())
            })
            .collect()
    }

    fn assert_orthonormal_cols(m: usize, k: usize, q: &[Complex64], tol: f64) {
        for c1 in 0..k {
            for c2 in 0..k {
                let mut dot = Complex64::ZERO;
                for i in 0..m {
                    dot = dot.conj_mul_add(q[i * k + c1], q[i * k + c2]);
                }
                let expect = if c1 == c2 {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(dot, expect, tol), "q^H q [{c1}][{c2}] = {dot:?}");
            }
        }
    }

    fn assert_reconstructs(m: usize, n: usize, a: &[Complex64], f: &Qr, tol: f64) {
        let mut recon = vec![Complex64::ZERO; m * n];
        gemm_serial(m, f.k, n, &f.q, &f.r, &mut recon);
        for (x, y) in recon.iter().zip(a) {
            assert!(approx_eq(*x, *y, tol), "reconstruction mismatch");
        }
    }

    #[test]
    fn qr_square() {
        let (m, n) = (6, 6);
        let a = test_matrix(m, n, 1);
        let f = qr(m, n, &a);
        assert_eq!(f.k, 6);
        assert_orthonormal_cols(m, f.k, &f.q, 1e-10);
        assert_reconstructs(m, n, &a, &f, 1e-10);
    }

    #[test]
    fn qr_tall() {
        let (m, n) = (9, 4);
        let a = test_matrix(m, n, 2);
        let f = qr(m, n, &a);
        assert_eq!(f.k, 4);
        assert_orthonormal_cols(m, f.k, &f.q, 1e-10);
        assert_reconstructs(m, n, &a, &f, 1e-10);
    }

    #[test]
    fn qr_wide() {
        let (m, n) = (3, 8);
        let a = test_matrix(m, n, 3);
        let f = qr(m, n, &a);
        assert_eq!(f.k, 3);
        assert_orthonormal_cols(m, f.k, &f.q, 1e-10);
        assert_reconstructs(m, n, &a, &f, 1e-10);
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let (m, n) = (5, 5);
        let a = test_matrix(m, n, 4);
        let f = qr(m, n, &a);
        for i in 0..f.k {
            for j in 0..i.min(n) {
                assert!(
                    f.r[i * n + j].norm() < 1e-12,
                    "r[{i}][{j}] = {:?} not zero",
                    f.r[i * n + j]
                );
            }
        }
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns: QR must still reconstruct.
        let m = 4;
        let col = test_matrix(m, 1, 5);
        let mut a = vec![Complex64::ZERO; m * 2];
        for i in 0..m {
            a[i * 2] = col[i];
            a[i * 2 + 1] = col[i];
        }
        let f = qr(m, 2, &a);
        assert_reconstructs(m, 2, &a, &f, 1e-10);
    }

    #[test]
    fn qr_zero_matrix() {
        let f = qr(3, 3, &[Complex64::ZERO; 9]);
        let mut recon = vec![Complex64::ZERO; 9];
        gemm_serial(3, 3, 3, &f.q, &f.r, &mut recon);
        assert!(recon.iter().all(|z| z.norm() < 1e-14));
    }

    #[test]
    fn lq_reconstructs_and_rows_orthonormal() {
        let (m, n) = (3, 7);
        let a = test_matrix(m, n, 6);
        let f = lq(m, n, &a);
        assert_eq!(f.k, 3);
        // Rows of q orthonormal: q q^H = I.
        for r1 in 0..f.k {
            for r2 in 0..f.k {
                let mut dot = Complex64::ZERO;
                for j in 0..n {
                    dot = dot.conj_mul_add(f.q[r2 * n + j], f.q[r1 * n + j]);
                }
                let expect = if r1 == r2 {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(dot, expect, 1e-10));
            }
        }
        let mut recon = vec![Complex64::ZERO; m * n];
        gemm_serial(m, f.k, n, &f.l, &f.q, &mut recon);
        for (x, y) in recon.iter().zip(&a) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    fn lq_l_is_lower_triangular() {
        let (m, n) = (5, 5);
        let a = test_matrix(m, n, 7);
        let f = lq(m, n, &a);
        for i in 0..m {
            for j in (i + 1)..f.k {
                assert!(f.l[i * f.k + j].norm() < 1e-12);
            }
        }
    }
}
