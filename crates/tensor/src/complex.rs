//! Double-precision complex arithmetic.
//!
//! The whole stack stores quantum amplitudes as [`Complex64`]. The type is a
//! plain `Copy` struct of two `f64`s (16 bytes, no padding) so vectors of
//! amplitudes are contiguous and `memcpy`-friendly, matching what ITensors
//! and cuTensorNet operate on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor, mirroring `num_complex::Complex64::new`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a new complex number.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|^2 = re^2 + im^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`. Uses `hypot` for robustness against overflow.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{i theta}` on the unit circle.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(c, s)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        c64(r * c, r * s)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let m = self.norm();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((m - self.re) * 0.5).max(0.0).sqrt();
        c64(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-accumulate: `self + a * b`.
    ///
    /// This is the inner-loop primitive of GEMM; writing it once keeps the
    /// hot loops branch-free and lets LLVM vectorise.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// `self + conj(a) * b`, the primitive of conjugated (dagger) GEMM.
    #[inline(always)]
    pub fn conj_mul_add(self, a: Complex64, b: Complex64) -> Self {
        c64(
            self.re + a.re * b.re + a.im * b.im,
            self.im + a.re * b.im - a.im * b.re,
        )
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // Division by multiplication with the precomputed reciprocal is the
    // standard complex-division formulation, not a typo'd operator.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}{:+.6}i", self.re, self.im)
    }
}

/// Approximate equality for floating-point comparisons in tests.
pub fn approx_eq(a: Complex64, b: Complex64, tol: f64) -> bool {
    (a - b).norm() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(approx_eq(z * z.inv(), Complex64::ONE, TOL));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, Complex64::ZERO);
    }

    #[test]
    fn norm_and_conj() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), c64(3.0, 4.0));
        assert!(approx_eq(z * z.conj(), c64(25.0, 0.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(approx_eq(Complex64::I * Complex64::I, c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..32 {
            let theta = k as f64 * std::f64::consts::PI / 7.5;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < TOL);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < 1e-10);
        }
    }

    #[test]
    fn exp_euler_identity() {
        let z = Complex64::exp(c64(0.0, std::f64::consts::PI));
        assert!(approx_eq(z, c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn sqrt_roundtrip() {
        for &(re, im) in &[
            (2.0, 3.0),
            (-1.0, 0.5),
            (0.0, -2.0),
            (4.0, 0.0),
            (-4.0, 0.0),
        ] {
            let z = c64(re, im);
            let s = z.sqrt();
            assert!(approx_eq(s * s, z, 1e-10), "sqrt({z:?})^2 = {:?}", s * s);
        }
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = c64(1.0, 2.0);
        let a = c64(-0.5, 0.25);
        let b = c64(2.0, -3.0);
        assert!(approx_eq(acc.mul_add(a, b), acc + a * b, TOL));
        assert!(approx_eq(acc.conj_mul_add(a, b), acc + a.conj() * b, TOL));
    }

    #[test]
    fn division() {
        let a = c64(1.0, 1.0);
        let b = c64(0.0, 1.0);
        assert!(approx_eq(a / b, c64(1.0, -1.0), TOL));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex64 = (0..10).map(|k| c64(k as f64, -(k as f64))).sum();
        assert_eq!(total, c64(45.0, -45.0));
    }

    #[test]
    fn scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
        let mut w = z;
        w *= 3.0;
        assert_eq!(w, c64(3.0, -6.0));
    }

    #[test]
    fn layout_is_two_f64() {
        assert_eq!(std::mem::size_of::<Complex64>(), 16);
        assert_eq!(std::mem::align_of::<Complex64>(), 8);
    }
}
