//! Pairwise tensor contraction (eq. 6 of the paper).
//!
//! Contraction is implemented the way every production tensor-network
//! engine does it: permute the contracted axes of each operand to the
//! matrix boundary, reshape to 2-D, run GEMM, and reshape back. The free
//! axes of `a` precede the free axes of `b` in the result.

use crate::backend::ExecutionBackend;
use crate::complex::Complex64;
use crate::matrix::gemm_serial;
use crate::tensor::Tensor;

/// Contracts `a` and `b` along the given axis pairs using serial GEMM.
///
/// `axes_a[i]` of `a` is summed against `axes_b[i]` of `b`; those axes must
/// have equal dimension. The result's shape is the free axes of `a` (in
/// their original order) followed by the free axes of `b`.
///
/// # Panics
/// Panics on rank/dimension mismatches or repeated axes.
pub fn contract(a: &Tensor, axes_a: &[usize], b: &Tensor, axes_b: &[usize]) -> Tensor {
    contract_impl(a, axes_a, b, axes_b, None)
}

/// Contraction with GEMM dispatched through an [`ExecutionBackend`].
pub fn contract_with(
    backend: &dyn ExecutionBackend,
    a: &Tensor,
    axes_a: &[usize],
    b: &Tensor,
    axes_b: &[usize],
) -> Tensor {
    contract_impl(a, axes_a, b, axes_b, Some(backend))
}

fn contract_impl(
    a: &Tensor,
    axes_a: &[usize],
    b: &Tensor,
    axes_b: &[usize],
    backend: Option<&dyn ExecutionBackend>,
) -> Tensor {
    assert_eq!(
        axes_a.len(),
        axes_b.len(),
        "must contract an equal number of axes from each operand"
    );
    validate_axes(a, axes_a);
    validate_axes(b, axes_b);
    for (&ax, &bx) in axes_a.iter().zip(axes_b) {
        assert_eq!(
            a.shape()[ax],
            b.shape()[bx],
            "contracted bond dimension mismatch: a axis {ax} ({}) vs b axis {bx} ({})",
            a.shape()[ax],
            b.shape()[bx]
        );
    }

    let free_a: Vec<usize> = (0..a.rank()).filter(|k| !axes_a.contains(k)).collect();
    let free_b: Vec<usize> = (0..b.rank()).filter(|k| !axes_b.contains(k)).collect();

    // a -> (free_a..., contracted...) then matrix (M, K)
    let mut perm_a = free_a.clone();
    perm_a.extend_from_slice(axes_a);
    let a_perm = a.permute(&perm_a);
    // b -> (contracted..., free_b...) then matrix (K, N)
    let mut perm_b = axes_b.to_vec();
    perm_b.extend_from_slice(&free_b);
    let b_perm = b.permute(&perm_b);

    let m: usize = free_a.iter().map(|&k| a.shape()[k]).product();
    let k: usize = axes_a.iter().map(|&x| a.shape()[x]).product();
    let n: usize = free_b.iter().map(|&x| b.shape()[x]).product();

    let mut out = vec![Complex64::ZERO; m * n];
    match backend {
        Some(be) => be.gemm(m, k, n, a_perm.data(), b_perm.data(), &mut out),
        None => gemm_serial(m, k, n, a_perm.data(), b_perm.data(), &mut out),
    }

    let mut out_shape: Vec<usize> = free_a.iter().map(|&x| a.shape()[x]).collect();
    out_shape.extend(free_b.iter().map(|&x| b.shape()[x]));
    Tensor::from_data(&out_shape, out)
}

fn validate_axes(t: &Tensor, axes: &[usize]) {
    let mut seen = vec![false; t.rank()];
    for &ax in axes {
        assert!(
            ax < t.rank(),
            "axis {ax} out of range for rank {}",
            t.rank()
        );
        assert!(!seen[ax], "axis {ax} repeated in contraction spec");
        seen[ax] = true;
    }
}

/// Contracts all axes of two equal-shape tensors with the first operand
/// conjugated: the Hilbert-space inner product `<a, b>`.
pub fn inner_full(a: &Tensor, b: &Tensor) -> Complex64 {
    assert_eq!(a.shape(), b.shape(), "inner_full requires equal shapes");
    crate::matrix::dot_conj(a.data(), b.data())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{approx_eq, c64};

    fn fill(shape: &[usize], seed: u64) -> Tensor {
        let len: usize = shape.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let data = (0..len)
            .map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                };
                c64(next(), next())
            })
            .collect();
        Tensor::from_data(shape, data)
    }

    #[test]
    fn matrix_product_via_contract() {
        let a = fill(&[3, 4], 1);
        let b = fill(&[4, 5], 2);
        let c = contract(&a, &[1], &b, &[0]);
        assert_eq!(c.shape(), &[3, 5]);
        for i in 0..3 {
            for j in 0..5 {
                let mut acc = Complex64::ZERO;
                for p in 0..4 {
                    acc += a.get(&[i, p]) * b.get(&[p, j]);
                }
                assert!(approx_eq(c.get(&[i, j]), acc, 1e-10));
            }
        }
    }

    #[test]
    fn eq6_three_leg_contraction() {
        // C_abxyz = sum_s A_abs B_sxyz -- the paper's eq. (6).
        let a = fill(&[2, 3, 4], 3);
        let b = fill(&[4, 2, 3, 2], 4);
        let c = contract(&a, &[2], &b, &[0]);
        assert_eq!(c.shape(), &[2, 3, 2, 3, 2]);
        let mut acc = Complex64::ZERO;
        for s in 0..4 {
            acc += a.get(&[1, 2, s]) * b.get(&[s, 0, 1, 1]);
        }
        assert!(approx_eq(c.get(&[1, 2, 0, 1, 1]), acc, 1e-10));
    }

    #[test]
    fn contract_multiple_axes() {
        let a = fill(&[2, 3, 4], 5);
        let b = fill(&[3, 4, 5], 6);
        let c = contract(&a, &[1, 2], &b, &[0, 1]);
        assert_eq!(c.shape(), &[2, 5]);
        for i in 0..2 {
            for j in 0..5 {
                let mut acc = Complex64::ZERO;
                for p in 0..3 {
                    for q in 0..4 {
                        acc += a.get(&[i, p, q]) * b.get(&[p, q, j]);
                    }
                }
                assert!(approx_eq(c.get(&[i, j]), acc, 1e-10));
            }
        }
    }

    #[test]
    fn contract_to_scalar() {
        let a = fill(&[3, 4], 7);
        let b = fill(&[3, 4], 8);
        let c = contract(&a, &[0, 1], &b, &[0, 1]);
        assert_eq!(c.rank(), 0);
        let mut acc = Complex64::ZERO;
        for i in 0..3 {
            for j in 0..4 {
                acc += a.get(&[i, j]) * b.get(&[i, j]);
            }
        }
        assert!(approx_eq(c.get(&[]), acc, 1e-10));
    }

    #[test]
    fn contract_axis_order_in_result() {
        let a = fill(&[2, 5, 3], 9);
        let b = fill(&[3, 7], 10);
        let c = contract(&a, &[2], &b, &[0]);
        assert_eq!(c.shape(), &[2, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "bond dimension mismatch")]
    fn mismatched_bond_panics() {
        let a = fill(&[2, 3], 11);
        let b = fill(&[4, 2], 12);
        let _ = contract(&a, &[1], &b, &[0]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_axis_panics() {
        let a = fill(&[2, 2], 13);
        let b = fill(&[2, 2], 14);
        let _ = contract(&a, &[0, 0], &b, &[0, 1]);
    }

    #[test]
    fn inner_full_is_conjugate_linear() {
        let a = Tensor::from_data(&[2], vec![c64(0.0, 1.0), c64(1.0, 0.0)]);
        let b = Tensor::from_data(&[2], vec![c64(0.0, 1.0), c64(1.0, 0.0)]);
        assert!(approx_eq(inner_full(&a, &b), c64(2.0, 0.0), 1e-12));
    }

    #[test]
    fn contract_with_backend_matches_serial() {
        use crate::backend::{CpuBackend, ExecutionBackend};
        let backend = CpuBackend::new();
        let a = fill(&[4, 6], 15);
        let b = fill(&[6, 3], 16);
        let c1 = contract(&a, &[1], &b, &[0]);
        let c2 = contract_with(&backend as &dyn ExecutionBackend, &a, &[1], &b, &[0]);
        assert_eq!(c1, c2);
    }
}
