//! Dense multi-dimensional complex tensors in row-major layout.
//!
//! A [`Tensor`] is a shape plus a contiguous `Vec<Complex64>`; "bonds" in the
//! paper's terminology are the axes, and the bond dimension of axis `k` is
//! `shape[k]`. Reshaping is free (entry order is preserved, eq. 7 of the
//! paper); permuting axes physically rearranges entries so downstream GEMM
//! runs on contiguous data.

use crate::complex::Complex64;
use std::fmt;

/// A dense tensor with row-major (C-order) element layout.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<Complex64>,
}

impl Tensor {
    /// Creates a zero-filled tensor with the given shape.
    ///
    /// A zero-rank tensor (`shape == []`) is a scalar holding one entry.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product::<usize>();
        Tensor {
            shape: shape.to_vec(),
            data: vec![Complex64::ZERO; len],
        }
    }

    /// Creates a tensor from raw row-major data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_data(shape: &[usize], data: Vec<Complex64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: Complex64) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// The identity matrix as a rank-2 tensor.
    pub fn identity(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = Complex64::ONE;
        }
        t
    }

    /// Tensor shape (bond dimensions of each axis).
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes (rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no entries (some axis has dimension 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major entries.
    #[inline]
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the row-major entries.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the tensor and returns its entries.
    pub fn into_data(self) -> Vec<Complex64> {
        self.data
    }

    /// Memory footprint of the entries in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Complex64>()
    }

    /// Row-major strides for the current shape.
    pub fn strides(&self) -> Vec<usize> {
        row_major_strides(&self.shape)
    }

    /// Linear offset of a multi-index.
    ///
    /// # Panics
    /// Panics in debug builds if the index rank or bounds are wrong.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0;
        for (k, &i) in idx.iter().enumerate() {
            debug_assert!(
                i < self.shape[k],
                "index {idx:?} out of shape {:?}",
                self.shape
            );
            off = off * self.shape[k] + i;
        }
        off
    }

    /// Entry at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> Complex64 {
        self.data[self.offset(idx)]
    }

    /// Sets the entry at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: Complex64) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Reinterprets the tensor with a new shape of equal total size.
    ///
    /// Entry order is unchanged: this is the bijection of eq. (7) in the
    /// paper and costs O(1) beyond the shape vector.
    ///
    /// # Panics
    /// Panics if the total number of entries differs.
    pub fn reshape(mut self, new_shape: &[usize]) -> Tensor {
        assert_eq!(
            new_shape.iter().product::<usize>(),
            self.data.len(),
            "cannot reshape {:?} ({} entries) into {new_shape:?}",
            self.shape,
            self.data.len()
        );
        self.shape = new_shape.to_vec();
        self
    }

    /// Returns a tensor with axes permuted: axis `k` of the result is axis
    /// `perm[k]` of `self`. Physically rearranges entries (O(n)).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        if perm.iter().enumerate().all(|(k, &p)| k == p) {
            return self.clone();
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let old_strides = self.strides();
        // Stride of output axis k in the input layout.
        let gather_strides: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let mut out = vec![Complex64::ZERO; self.data.len()];
        let rank = new_shape.len();
        let mut idx = vec![0usize; rank];
        let mut src = 0usize;
        for slot in out.iter_mut() {
            *slot = self.data[src];
            // Odometer increment over the output index, tracking src offset.
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                src += gather_strides[ax];
                if idx[ax] < new_shape[ax] {
                    break;
                }
                src -= gather_strides[ax] * new_shape[ax];
                idx[ax] = 0;
            }
        }
        Tensor {
            shape: new_shape,
            data: out,
        }
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by a complex factor in place.
    pub fn scale_inplace(&mut self, k: Complex64) {
        for z in &mut self.data {
            *z *= k;
        }
    }

    /// Scales every entry by a real factor in place.
    pub fn scale_real_inplace(&mut self, k: f64) {
        for z in &mut self.data {
            *z *= k;
        }
    }

    /// Frobenius norm: sqrt of the sum of squared moduli.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.norm()).fold(0.0, f64::max)
    }

    /// `true` if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Sum of `|a - b|` over all entries (shape must match).
    pub fn l1_distance(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in l1_distance");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .sum()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} entries]", self.data.len())
        }
    }
}

/// Row-major strides for a shape.
pub fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for k in (0..shape.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * shape[k + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.rank(), 3);
        assert!(t.data().iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn scalar_tensor() {
        let t = Tensor::scalar(c64(2.0, 1.0));
        assert_eq!(t.rank(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.data()[0], c64(2.0, 1.0));
    }

    #[test]
    fn identity_matrix() {
        let t = Tensor::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert_eq!(t.get(&[i, j]), expect);
            }
        }
    }

    #[test]
    fn indexing_row_major() {
        let data: Vec<Complex64> = (0..6).map(|k| c64(k as f64, 0.0)).collect();
        let t = Tensor::from_data(&[2, 3], data);
        assert_eq!(t.get(&[0, 0]).re, 0.0);
        assert_eq!(t.get(&[0, 2]).re, 2.0);
        assert_eq!(t.get(&[1, 0]).re, 3.0);
        assert_eq!(t.get(&[1, 2]).re, 5.0);
    }

    #[test]
    fn reshape_preserves_order() {
        let data: Vec<Complex64> = (0..12).map(|k| c64(k as f64, 0.0)).collect();
        let t = Tensor::from_data(&[3, 4], data).reshape(&[2, 6]);
        assert_eq!(t.get(&[0, 5]).re, 5.0);
        assert_eq!(t.get(&[1, 0]).re, 6.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_size_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn permute_transpose() {
        let data: Vec<Complex64> = (0..6).map(|k| c64(k as f64, -(k as f64))).collect();
        let t = Tensor::from_data(&[2, 3], data);
        let tt = t.permute(&[1, 0]);
        assert_eq!(tt.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[i, j]), tt.get(&[j, i]));
            }
        }
    }

    #[test]
    fn permute_rank3_roundtrip() {
        let data: Vec<Complex64> = (0..24).map(|k| c64(k as f64, 1.0)).collect();
        let t = Tensor::from_data(&[2, 3, 4], data);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    assert_eq!(t.get(&[a, b, c]), p.get(&[c, a, b]));
                }
            }
        }
        // Applying the inverse permutation restores the original.
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn permute_identity_is_noop() {
        let data: Vec<Complex64> = (0..8).map(|k| c64(k as f64, 0.0)).collect();
        let t = Tensor::from_data(&[2, 2, 2], data);
        assert_eq!(t.permute(&[0, 1, 2]), t);
    }

    #[test]
    fn conj_negates_imaginary() {
        let t = Tensor::from_data(&[2], vec![c64(1.0, 2.0), c64(-3.0, -4.0)]);
        let c = t.conj();
        assert_eq!(c.data()[0], c64(1.0, -2.0));
        assert_eq!(c.data()[1], c64(-3.0, 4.0));
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let t = Tensor::from_data(&[2], vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn memory_bytes_counts_entries() {
        let t = Tensor::zeros(&[4, 4]);
        assert_eq!(t.memory_bytes(), 16 * 16);
    }

    #[test]
    fn scale_inplace_works() {
        let mut t = Tensor::from_data(&[2], vec![c64(1.0, 0.0), c64(0.0, 1.0)]);
        t.scale_inplace(c64(0.0, 1.0));
        assert_eq!(t.data()[0], c64(0.0, 1.0));
        assert_eq!(t.data()[1], c64(-1.0, 0.0));
    }
}
