//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi is chosen over bidiagonal QR because it is simple,
//! numerically robust (singular values accurate to machine precision, which
//! the paper's 1e-16 truncation criterion relies on), and its rotation
//! rounds parallelize cleanly. For the bond dimensions an MPS simulator
//! produces (tens to a few hundred), its O(n^3)-per-sweep cost is a good
//! trade against implementation risk.
//!
//! The matrix is stored column-major internally so that a Jacobi rotation
//! touches two contiguous columns.

use crate::complex::Complex64;

/// Result of a thin SVD `a = u * diag(s) * vh` with `a: m x n`.
///
/// `u` is row-major `m x k`, `s` holds `k = min(m, n)` non-negative singular
/// values sorted in descending order, and `vh` is row-major `k x n`.
/// Columns of `u` whose singular value is exactly zero are zero vectors
/// (they carry no weight in the reconstruction).
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, row-major `m x k`.
    pub u: Vec<Complex64>,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (conjugate-transposed), row-major `k x n`.
    pub vh: Vec<Complex64>,
    /// Rows of the input.
    pub m: usize,
    /// Columns of the input.
    pub n: usize,
    /// `min(m, n)`.
    pub k: usize,
}

impl Svd {
    /// Reconstructs the original matrix (row-major `m x n`); test helper and
    /// the basis of the truncation-error accounting.
    pub fn reconstruct(&self) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.m * self.n];
        for (r, sr) in self.s.iter().enumerate() {
            if *sr == 0.0 {
                continue;
            }
            for i in 0..self.m {
                let uir = self.u[i * self.k + r] * *sr;
                if uir == Complex64::ZERO {
                    continue;
                }
                let row = &mut out[i * self.n..(i + 1) * self.n];
                let vrow = &self.vh[r * self.n..(r + 1) * self.n];
                for (o, v) in row.iter_mut().zip(vrow) {
                    *o = o.mul_add(uir, *v);
                }
            }
        }
        out
    }

    /// Sum of squared singular values (equals the squared Frobenius norm of
    /// the input).
    pub fn weight(&self) -> f64 {
        self.s.iter().map(|s| s * s).sum()
    }
}

/// Relative off-diagonal threshold at which a column pair counts as
/// orthogonal and the rotation is skipped.
const JACOBI_TOL: f64 = 1e-14;
/// Hard cap on Jacobi sweeps; convergence is typically < 10 sweeps.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of a row-major `m x n` complex matrix.
///
/// # Panics
/// Panics if `a.len() != m * n`.
pub fn svd(m: usize, n: usize, a: &[Complex64]) -> Svd {
    assert_eq!(a.len(), m * n, "svd: matrix size mismatch");
    debug_assert!(
        a.iter().all(|z| z.is_finite()),
        "svd input contains non-finite entries"
    );
    if m >= n {
        svd_tall(m, n, a)
    } else {
        // a = u s vh  <=>  a^H = v s u^H; factor the tall conjugate
        // transpose and swap the roles of u and v.
        let mut ah = vec![Complex64::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                ah[j * m + i] = a[i * n + j].conj();
            }
        }
        let f = svd_tall(n, m, &ah);
        // a^H = U1 S V1h with U1: n x m, V1h: m x m.
        // a = V1 S U1h, so u = V1 (m x m), vh = U1h (m x n).
        let k = f.k; // = m
        let mut u = vec![Complex64::ZERO; m * k];
        for i in 0..k {
            for j in 0..m {
                // V1 = (V1h)^H: V1[j][i] = conj(V1h[i][j]).
                u[j * k + i] = f.vh[i * m + j].conj();
            }
        }
        let mut vh = vec![Complex64::ZERO; k * n];
        for i in 0..k {
            for j in 0..n {
                // U1h[i][j] = conj(U1[j][i]).
                vh[i * n + j] = f.u[j * k + i].conj();
            }
        }
        Svd {
            u,
            s: f.s,
            vh,
            m,
            n,
            k,
        }
    }
}

/// One-sided Jacobi on a tall (or square) matrix, `m >= n`.
fn svd_tall(m: usize, n: usize, a: &[Complex64]) -> Svd {
    let k = n;
    // Column-major working copy: cols[j][i] = a[i][j].
    let mut cols: Vec<Vec<Complex64>> = (0..n)
        .map(|j| (0..m).map(|i| a[i * n + j]).collect())
        .collect();
    // V accumulated column-major as well.
    let mut vcols: Vec<Vec<Complex64>> = (0..n)
        .map(|j| {
            let mut col = vec![Complex64::ZERO; n];
            col[j] = Complex64::ONE;
            col
        })
        .collect();

    // Squared column norms, maintained incrementally per rotation.
    let mut norms_sqr: Vec<f64> = cols
        .iter()
        .map(|c| c.iter().map(|z| z.norm_sqr()).sum())
        .collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let alpha = norms_sqr[i];
                let beta = norms_sqr[j];
                if alpha == 0.0 && beta == 0.0 {
                    continue;
                }
                // gamma_c = cols[i]^H cols[j]
                let mut gamma_c = Complex64::ZERO;
                for (x, y) in cols[i].iter().zip(&cols[j]) {
                    gamma_c = gamma_c.conj_mul_add(*x, *y);
                }
                let gamma = gamma_c.norm();
                // NaN-safe guard: incremental norm updates can drift a hair
                // negative for near-zero columns (clamp before sqrt), and a
                // subnormal gamma would overflow 1/gamma to infinity when
                // normalizing the phase, so demand a normal-range gamma.
                // The negated `>` is deliberate: it also trips when gamma
                // is NaN, which `<=` would silently let through.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(gamma > JACOBI_TOL * (alpha * beta).max(0.0).sqrt())
                    || gamma < f64::MIN_POSITIVE
                {
                    continue;
                }
                rotated = true;
                // Phase so the effective off-diagonal is real: gamma_c =
                // gamma * e^{i phi}.
                let phase = gamma_c / gamma;
                // Classic Jacobi angles for the 2x2 Hermitian Gram block.
                let tau = (beta - alpha) / (2.0 * gamma);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let s_pos = phase * s; // applied to column j update
                let s_neg = phase.conj() * s; // applied to column i update

                // [a_i', a_j'] = [a_i, a_j] * [[c, s e^{i phi}],
                //                              [-s e^{-i phi}, c]]
                rotate_pair(&mut cols, i, j, c, s_neg, s_pos);
                rotate_pair(&mut vcols, i, j, c, s_neg, s_pos);

                // Update norms exactly: new Gram diagonal after rotation.
                let re_part = 2.0 * s * c * gamma;
                norms_sqr[i] = (c * c * alpha + s * s * beta - re_part).max(0.0);
                norms_sqr[j] = (s * s * alpha + c * c * beta + re_part).max(0.0);
            }
        }
        if !rotated {
            break;
        }
    }

    finalize_svd(m, n, k, cols, vcols)
}

/// Computes the thin SVD with Jacobi rotation rounds executed in parallel.
///
/// Uses a round-robin tournament schedule: each round pairs every column
/// with exactly one partner, so the `n/2` rotations of a round touch
/// disjoint column pairs and can run concurrently. Columns are guarded by
/// per-column mutexes; pairs are disjoint within a round, so locks are
/// uncontended and exist only to satisfy the borrow checker cheaply.
pub fn svd_parallel(m: usize, n: usize, a: &[Complex64]) -> Svd {
    assert_eq!(a.len(), m * n, "svd_parallel: matrix size mismatch");
    if m < n {
        // Mirror the transpose trick of `svd`.
        let mut ah = vec![Complex64::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                ah[j * m + i] = a[i * n + j].conj();
            }
        }
        let f = svd_parallel(n, m, &ah);
        let k = f.k;
        let mut u = vec![Complex64::ZERO; m * k];
        for i in 0..k {
            for j in 0..m {
                u[j * k + i] = f.vh[i * m + j].conj();
            }
        }
        let mut vh = vec![Complex64::ZERO; k * n];
        for i in 0..k {
            for j in 0..n {
                vh[i * n + j] = f.u[j * k + i].conj();
            }
        }
        return Svd {
            u,
            s: f.s,
            vh,
            m,
            n,
            k,
        };
    }

    use parking_lot::Mutex;
    use rayon::prelude::*;

    let k = n;
    let cols: Vec<Mutex<Vec<Complex64>>> = (0..n)
        .map(|j| Mutex::new((0..m).map(|i| a[i * n + j]).collect()))
        .collect();
    let vcols: Vec<Mutex<Vec<Complex64>>> = (0..n)
        .map(|j| {
            let mut col = vec![Complex64::ZERO; n];
            col[j] = Complex64::ONE;
            Mutex::new(col)
        })
        .collect();

    // Round-robin (circle method) schedule over n slots (pad odd n).
    let slots = if n.is_multiple_of(2) { n } else { n + 1 };
    let rounds = slots - 1;

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for round in 0..rounds {
            let pairs: Vec<(usize, usize)> = (0..slots / 2)
                .filter_map(|p| {
                    let (x, y) = circle_pair(slots, round, p);
                    let (lo, hi) = (x.min(y), x.max(y));
                    (hi < n).then_some((lo, hi))
                })
                .collect();
            let any: Vec<bool> = pairs
                .par_iter()
                .map(|&(i, j)| {
                    let mut ci = cols[i].lock();
                    let mut cj = cols[j].lock();
                    let alpha: f64 = ci.iter().map(|z| z.norm_sqr()).sum();
                    let beta: f64 = cj.iter().map(|z| z.norm_sqr()).sum();
                    if alpha == 0.0 && beta == 0.0 {
                        return false;
                    }
                    let mut gamma_c = Complex64::ZERO;
                    for (x, y) in ci.iter().zip(cj.iter()) {
                        gamma_c = gamma_c.conj_mul_add(*x, *y);
                    }
                    let gamma = gamma_c.norm();
                    if gamma <= JACOBI_TOL * (alpha * beta).sqrt() || gamma < f64::MIN_POSITIVE {
                        return false;
                    }
                    let phase = gamma_c / gamma;
                    let tau = (beta - alpha) / (2.0 * gamma);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    let s_pos = phase * s;
                    let s_neg = phase.conj() * s;
                    rotate_slices(&mut ci, &mut cj, c, s_neg, s_pos);
                    let mut vi = vcols[i].lock();
                    let mut vj = vcols[j].lock();
                    rotate_slices(&mut vi, &mut vj, c, s_neg, s_pos);
                    true
                })
                .collect();
            rotated |= any.iter().any(|&b| b);
        }
        if !rotated {
            break;
        }
    }

    let cols: Vec<Vec<Complex64>> = cols.into_iter().map(|m| m.into_inner()).collect();
    let vcols: Vec<Vec<Complex64>> = vcols.into_iter().map(|m| m.into_inner()).collect();
    finalize_svd(m, n, k, cols, vcols)
}

/// Pairing for round `r`, pair slot `p`, of the circle-method tournament on
/// `slots` participants (`slots` even). Participant `slots-1` stays fixed.
fn circle_pair(slots: usize, round: usize, p: usize) -> (usize, usize) {
    let n1 = slots - 1;
    if p == 0 {
        (n1, round % n1)
    } else {
        let a = (round + p) % n1;
        let b = (round + n1 - p) % n1;
        (a, b)
    }
}

/// Shared tail of both Jacobi drivers: sort columns by norm and emit
/// `u`, `s`, `vh`.
fn finalize_svd(
    m: usize,
    n: usize,
    k: usize,
    cols: Vec<Vec<Complex64>>,
    vcols: Vec<Vec<Complex64>>,
) -> Svd {
    let mut order: Vec<usize> = (0..n).collect();
    let sigmas: Vec<f64> = cols
        .iter()
        .map(|col| col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| sigmas[y].partial_cmp(&sigmas[x]).unwrap());

    let mut u = vec![Complex64::ZERO; m * k];
    let mut s = vec![0.0f64; k];
    let mut vh = vec![Complex64::ZERO; k * n];
    for (rank, &src) in order.iter().enumerate() {
        let sigma = sigmas[src];
        s[rank] = sigma;
        if sigma > 0.0 {
            let inv = 1.0 / sigma;
            for i in 0..m {
                u[i * k + rank] = cols[src][i] * inv;
            }
        }
        for j in 0..n {
            vh[rank * n + j] = vcols[src][j].conj();
        }
    }
    Svd { u, s, vh, m, n, k }
}

/// Applies the 2x2 column rotation to two column slices.
#[inline]
fn rotate_slices(
    ci: &mut [Complex64],
    cj: &mut [Complex64],
    c: f64,
    s_neg: Complex64,
    s_pos: Complex64,
) {
    for (x, y) in ci.iter_mut().zip(cj.iter_mut()) {
        let xi = *x;
        let yj = *y;
        *x = xi * c - s_neg * yj;
        *y = s_pos * xi + yj * c;
    }
}

/// Applies the 2x2 column rotation to columns `i` and `j` of `cols`:
/// `col_i' = c col_i - s_neg col_j`, `col_j' = s_pos col_i + c col_j`.
#[inline]
fn rotate_pair(
    cols: &mut [Vec<Complex64>],
    i: usize,
    j: usize,
    c: f64,
    s_neg: Complex64,
    s_pos: Complex64,
) {
    debug_assert!(i < j);
    let (lo, hi) = cols.split_at_mut(j);
    let ci = &mut lo[i];
    let cj = &mut hi[0];
    for (x, y) in ci.iter_mut().zip(cj.iter_mut()) {
        let xi = *x;
        let yj = *y;
        *x = xi * c - s_neg * yj;
        *y = s_pos * xi + yj * c;
    }
}

/// Splits a two-qubit gate (4x4 unitary reshaped to act on two physical
/// legs) into left and right factors via SVD, dropping zero singular values.
///
/// Returns `(left, right, rank)` where `left` is `(2*2) x rank` interpreted
/// as `[p_out_1][p_in_1][r]` and `right` is `rank x (2*2)` as
/// `[r][p_out_2][p_in_2]`. This implements the paper's footnote-5
/// optimisation: an RXX gate has two exactly-zero singular values in this
/// bipartition, so its bond contribution is 2, not 4.
pub fn split_two_qubit_gate(
    gate: &[Complex64],
    cutoff: f64,
) -> (Vec<Complex64>, Vec<Complex64>, usize) {
    assert_eq!(gate.len(), 16, "two-qubit gate must be 4x4");
    // gate[(p1_out*2 + p2_out) * 4 + (p1_in*2 + p2_in)]
    // Rearrange into M[(p1_out, p1_in)][(p2_out, p2_in)].
    let mut m = vec![Complex64::ZERO; 16];
    for p1o in 0..2 {
        for p2o in 0..2 {
            for p1i in 0..2 {
                for p2i in 0..2 {
                    let src = (p1o * 2 + p2o) * 4 + (p1i * 2 + p2i);
                    let dst = (p1o * 2 + p1i) * 4 + (p2o * 2 + p2i);
                    m[dst] = gate[src];
                }
            }
        }
    }
    let f = svd(4, 4, &m);
    let mut rank = 0;
    for &sv in &f.s {
        if sv > cutoff {
            rank += 1;
        }
    }
    let rank = rank.max(1);
    // left[(p1_out, p1_in)][r] = u[.][r] * sqrt(s_r); right[r][(p2_out,
    // p2_in)] = sqrt(s_r) * vh[r][.]. Splitting sqrt(s) symmetrically keeps
    // both factors well-conditioned.
    let mut left = vec![Complex64::ZERO; 4 * rank];
    let mut right = vec![Complex64::ZERO; rank * 4];
    for r in 0..rank {
        let w = f.s[r].sqrt();
        for row in 0..4 {
            left[row * rank + r] = f.u[row * 4 + r] * w;
        }
        for col in 0..4 {
            right[r * 4 + col] = f.vh[r * 4 + col] * w;
        }
    }
    (left, right, rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{approx_eq, c64};

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..rows * cols)
            .map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                };
                c64(next(), next())
            })
            .collect()
    }

    fn frob(a: &[Complex64]) -> f64 {
        a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    fn assert_svd_valid(m: usize, n: usize, a: &[Complex64], tol: f64) {
        let f = svd(m, n, a);
        assert_eq!(f.k, m.min(n));
        // Reconstruction.
        let recon = f.reconstruct();
        let mut err = 0.0f64;
        for (x, y) in recon.iter().zip(a) {
            err += (*x - *y).norm_sqr();
        }
        let scale = frob(a).max(1.0);
        assert!(
            err.sqrt() <= tol * scale,
            "reconstruction error {} for {m}x{n}",
            err.sqrt()
        );
        // Descending non-negative singular values.
        for w in f.s.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "singular values not sorted: {:?}",
                f.s
            );
        }
        assert!(f.s.iter().all(|&s| s >= 0.0));
        // Orthonormality of u columns with non-negligible sigma. Columns
        // whose singular value is at noise level carry junk directions by
        // construction (they are removed by truncation downstream).
        let floor = f.s.first().copied().unwrap_or(0.0) * 1e-12;
        for c1 in 0..f.k {
            if f.s[c1] <= floor {
                continue;
            }
            for c2 in 0..f.k {
                if f.s[c2] <= floor {
                    continue;
                }
                let mut dot = Complex64::ZERO;
                for i in 0..m {
                    dot = dot.conj_mul_add(f.u[i * f.k + c1], f.u[i * f.k + c2]);
                }
                let expect = if c1 == c2 {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(dot, expect, 1e-9), "u not orthonormal");
            }
        }
        // Orthonormality of vh rows.
        for r1 in 0..f.k {
            for r2 in 0..f.k {
                let mut dot = Complex64::ZERO;
                for j in 0..n {
                    dot = dot.conj_mul_add(f.vh[r2 * n + j], f.vh[r1 * n + j]);
                }
                let expect = if r1 == r2 {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(dot, expect, 1e-9), "vh not row-orthonormal");
            }
        }
    }

    #[test]
    fn svd_square() {
        let a = test_matrix(6, 6, 1);
        assert_svd_valid(6, 6, &a, 1e-10);
    }

    #[test]
    fn svd_tall_matrix() {
        let a = test_matrix(10, 4, 2);
        assert_svd_valid(10, 4, &a, 1e-10);
    }

    #[test]
    fn svd_wide_matrix() {
        let a = test_matrix(3, 9, 3);
        assert_svd_valid(3, 9, &a, 1e-10);
    }

    #[test]
    fn svd_vector_shapes() {
        let a = test_matrix(7, 1, 4);
        assert_svd_valid(7, 1, &a, 1e-12);
        let b = test_matrix(1, 7, 5);
        assert_svd_valid(1, 7, &b, 1e-12);
    }

    #[test]
    fn svd_identity_has_unit_singular_values() {
        let n = 5;
        let mut a = vec![Complex64::ZERO; n * n];
        for i in 0..n {
            a[i * n + i] = Complex64::ONE;
        }
        let f = svd(n, n, &a);
        for &s in &f.s {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn svd_diagonal_recovers_entries() {
        let n = 4;
        let diag = [3.0, 1.0, 4.0, 1.5];
        let mut a = vec![Complex64::ZERO; n * n];
        for i in 0..n {
            a[i * n + i] = c64(diag[i], 0.0);
        }
        let f = svd(n, n, &a);
        let mut expect = diag.to_vec();
        expect.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (s, e) in f.s.iter().zip(&expect) {
            assert!((s - e).abs() < 1e-12, "{:?} vs {expect:?}", f.s);
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Outer product => rank 1.
        let m = 6;
        let n = 5;
        let u = test_matrix(m, 1, 7);
        let v = test_matrix(1, n, 8);
        let mut a = vec![Complex64::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                a[i * n + j] = u[i] * v[j];
            }
        }
        let f = svd(m, n, &a);
        assert!(f.s[0] > 1e-6);
        for &s in &f.s[1..] {
            assert!(
                s < 1e-10,
                "rank-1 matrix has extra singular values {:?}",
                f.s
            );
        }
        assert_svd_valid(m, n, &a, 1e-10);
    }

    #[test]
    fn svd_zero_matrix() {
        let f = svd(4, 3, &[Complex64::ZERO; 12]);
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert!(f.reconstruct().iter().all(|z| z.norm() == 0.0));
    }

    #[test]
    fn svd_weight_matches_frobenius() {
        let a = test_matrix(8, 5, 9);
        let f = svd(8, 5, &a);
        let fr = frob(&a);
        assert!((f.weight().sqrt() - fr).abs() < 1e-10 * fr.max(1.0));
    }

    #[test]
    fn parallel_matches_serial_singular_values() {
        for &(m, n, seed) in &[(12usize, 12usize, 21u64), (20, 7, 22), (5, 16, 23)] {
            let a = test_matrix(m, n, seed);
            let fs = svd(m, n, &a);
            let fp = svd_parallel(m, n, &a);
            for (x, y) in fs.s.iter().zip(&fp.s) {
                assert!((x - y).abs() < 1e-9, "sv mismatch {x} vs {y}");
            }
            // Reconstruction from the parallel factorization.
            let recon = fp.reconstruct();
            for (x, y) in recon.iter().zip(&a) {
                assert!(approx_eq(*x, *y, 1e-9));
            }
        }
    }

    #[test]
    fn circle_schedule_covers_all_pairs_disjointly() {
        let slots = 8;
        let mut seen = std::collections::HashSet::new();
        for round in 0..slots - 1 {
            let mut used = std::collections::HashSet::new();
            for p in 0..slots / 2 {
                let (a, b) = circle_pair(slots, round, p);
                assert_ne!(a, b);
                assert!(used.insert(a), "slot reused within round");
                assert!(used.insert(b), "slot reused within round");
                seen.insert((a.min(b), a.max(b)));
            }
        }
        assert_eq!(seen.len(), slots * (slots - 1) / 2, "not all pairs covered");
    }

    #[test]
    fn split_rxx_gate_has_rank_two() {
        // RXX(theta) = cos(t/2) I - i sin(t/2) XX; its operator-Schmidt rank
        // across the qubit bipartition is 2 (the paper's footnote 5).
        let theta: f64 = 0.7;
        let ct = c64((theta / 2.0).cos(), 0.0);
        let st = c64(0.0, -(theta / 2.0).sin());
        // Basis order |00>,|01>,|10>,|11>.
        let mut gate = vec![Complex64::ZERO; 16];
        gate[0] = ct;
        gate[5] = ct;
        gate[10] = ct;
        gate[15] = ct;
        gate[3] = st;
        gate[6] = st;
        gate[9] = st;
        gate[12] = st;
        let (_, _, rank) = split_two_qubit_gate(&gate, 1e-12);
        assert_eq!(rank, 2);
    }

    #[test]
    fn split_gate_reconstructs() {
        let gate = test_matrix(4, 4, 10);
        let (left, right, rank) = split_two_qubit_gate(&gate, 0.0);
        // Recombine: gate'[(p1o p2o)][(p1i p2i)] =
        //   sum_r left[(p1o p1i)][r] right[r][(p2o p2i)].
        let mut recon = vec![Complex64::ZERO; 16];
        for p1o in 0..2 {
            for p2o in 0..2 {
                for p1i in 0..2 {
                    for p2i in 0..2 {
                        let mut acc = Complex64::ZERO;
                        for r in 0..rank {
                            acc += left[(p1o * 2 + p1i) * rank + r] * right[r * 4 + p2o * 2 + p2i];
                        }
                        recon[(p1o * 2 + p2o) * 4 + (p1i * 2 + p2i)] = acc;
                    }
                }
            }
        }
        for (x, y) in recon.iter().zip(&gate) {
            assert!(approx_eq(*x, *y, 1e-9), "gate split reconstruction failed");
        }
    }
}
