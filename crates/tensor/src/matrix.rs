//! Dense complex matrix kernels: GEMM and friends.
//!
//! All kernels operate on row-major slices (`a` is `m x k`, `b` is `k x n`,
//! `c` is `m x n`). The workhorse is a cache-blocked, register-tiled
//! kernel ([`gemm_serial`] / [`gemm_parallel`] / [`gemm_conj_a`] all
//! dispatch to it above a small-size floor):
//!
//! * Operands are packed into planar re/im panels (`KC x MR` strips of A,
//!   `KC x NR` strips of B) so the inner loop reads contiguous `f64`
//!   lanes instead of strided interleaved complex values. Conjugation is
//!   applied **during packing** (the A panel's imaginary plane is negated),
//!   which is how the conjugated product `a^H b` runs without ever
//!   materializing `conj(a)`.
//! * An `MR x NR` register tile accumulates `C` entries across one `KC`
//!   slice of the contraction per pass, so each `C` element is loaded and
//!   stored once per `KC` block instead of once per scalar `p`.
//! * The dense inner loop is branch-free: no per-element zero check (see
//!   [`gemm_row`] for why the old check was removed).
//!
//! **Determinism contract.** Every kernel in this module accumulates each
//! output element in strictly increasing `p` order with the exact
//! [`Complex64::mul_add`] / [`Complex64::conj_mul_add`] operation order.
//! Blocking only changes *when* partial sums are parked in memory, never
//! the order terms are added, so the blocked, scalar, serial and
//! row-parallel paths are bitwise identical on the same operands (up to
//! the sign of zeros where a skipped `0 * x` term differs from an added
//! one). The Gram engine's bitwise-reproducibility pins rest on this.

use crate::complex::Complex64;
use rayon::prelude::*;
use std::cell::RefCell;

/// Minimum `m * k * n` below which [`gemm_auto`] stays serial: rayon's
/// fork-join overhead dominates under roughly a microsecond of work.
pub const PARALLEL_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// Register-tile rows (`C` rows held in accumulators at once).
const MR: usize = 4;
/// Register-tile columns.
const NR: usize = 4;
/// Contraction-dimension block: one `KC x MR` A-strip (8 KiB planar) and
/// `KC x NR` B-strip stay L1-resident while the register tile runs.
const KC: usize = 256;
/// Row block of packed A (`MC x KC` panel, 256 KiB planar, L2-resident).
const MC: usize = 64;
/// Column block of packed B.
const NC: usize = 256;

/// Below this `m * k * n` (or when a tile edge cannot fill the register
/// kernel) packing costs more than it saves and the scalar row kernel
/// runs instead. Dispatch depends only on the problem shape, so every
/// call with the same operands takes the same path.
const BLOCKED_FLOOR: usize = 4096;

#[inline]
fn use_blocked(m: usize, k: usize, n: usize) -> bool {
    m >= MR && n >= NR && k >= 4 && m * k * n >= BLOCKED_FLOOR
}

thread_local! {
    /// Packing panels (planar re/im for A and B), grown once per thread
    /// and reused by every blocked GEMM on that thread: the inner-product
    /// hot path calls GEMM millions of times and must not allocate.
    static PACK: RefCell<PackBufs> = const {
        RefCell::new(PackBufs {
            a_re: Vec::new(),
            a_im: Vec::new(),
            b_re: Vec::new(),
            b_im: Vec::new(),
        })
    };
}

struct PackBufs {
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
}

impl PackBufs {
    fn ensure(&mut self) {
        let a_len = MC * KC;
        let b_len = NC * KC;
        if self.a_re.len() < a_len {
            self.a_re.resize(a_len, 0.0);
            self.a_im.resize(a_len, 0.0);
        }
        if self.b_re.len() < b_len {
            self.b_re.resize(b_len, 0.0);
            self.b_im.resize(b_len, 0.0);
        }
    }
}

/// `c = a * b` with `a: m x k`, `b: k x n`, serial kernel.
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_serial(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    c.fill(Complex64::ZERO);
    gemm_into(m, k, n, a, b, c);
}

/// Dispatches one pre-zeroed output block to the blocked or scalar path.
fn gemm_into(m: usize, k: usize, n: usize, a: &[Complex64], b: &[Complex64], c: &mut [Complex64]) {
    if use_blocked(m, k, n) {
        gemm_blocked(m, k, n, Operand::Plain { a, lda: k }, b, c);
    } else {
        for i in 0..m {
            gemm_row(&a[i * k..(i + 1) * k], b, n, &mut c[i * n..(i + 1) * n]);
        }
    }
}

/// `c = a * b`, rows of `c` computed in parallel with rayon.
///
/// Row chunks run the same per-element accumulation as [`gemm_serial`],
/// so the result is bitwise identical at any worker count.
pub fn gemm_parallel(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    if m == 0 {
        return;
    }
    let rows_per_chunk = m.div_ceil(rayon::current_num_threads().max(1)).max(1);
    c.par_chunks_mut(rows_per_chunk * n)
        .enumerate()
        .for_each(|(chunk, c_rows)| {
            let i0 = chunk * rows_per_chunk;
            let rows = c_rows.len() / n;
            c_rows.fill(Complex64::ZERO);
            gemm_into(rows, k, n, &a[i0 * k..(i0 + rows) * k], b, c_rows);
        });
}

/// `c = a * b`, choosing serial or parallel by problem size.
pub fn gemm_auto(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    if m * k * n >= PARALLEL_FLOP_THRESHOLD {
        gemm_parallel(m, k, n, a, b, c);
    } else {
        gemm_serial(m, k, n, a, b, c);
    }
}

/// Scalar row kernel: `c_row += a_row * b` for one output row.
///
/// The historical `apk == ZERO` early-out was removed from this loop: MPS
/// site tensors and zipper environments are dense, so the branch never
/// fired on hot data but still cost a compare per `p` and blocked the
/// compiler from pipelining the row updates (measured ~1.5x on χ = 64
/// zipper GEMMs in the `kernel_hotpath` bench). Zero-skip survives only
/// in the scalar path of [`gemm_conj_a`], where boundary sites of
/// basis-state MPS really are sparse.
#[inline]
fn gemm_row(a_row: &[Complex64], b: &[Complex64], n: usize, c_row: &mut [Complex64]) {
    for (p, &apk) in a_row.iter().enumerate() {
        let b_row = &b[p * n..(p + 1) * n];
        for (cj, &bj) in c_row.iter_mut().zip(b_row) {
            *cj = cj.mul_add(apk, bj);
        }
    }
}

/// The pre-blocking i-k-j kernel with its per-element zero check, kept
/// verbatim as the measurement baseline for the `kernel_hotpath` bench
/// and as the bitwise reference the blocked kernel is pinned against.
/// Not used by any production path.
pub fn gemm_unblocked_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    c.fill(Complex64::ZERO);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &apk) in a_row.iter().enumerate() {
            if apk == Complex64::ZERO {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj = cj.mul_add(apk, bj);
            }
        }
    }
}

/// How the A operand reaches the packing step.
enum Operand<'a> {
    /// `a` is the plain `m x k` row-major left operand.
    Plain { a: &'a [Complex64], lda: usize },
    /// `a` is stored `k x m` row-major and enters the product as `a^H`:
    /// the packing step transposes and conjugates, so the conjugate is
    /// never materialized (the zipper's fused-conjugate transfer).
    ConjTransposed { a: &'a [Complex64], ldm: usize },
}

/// Cache-blocked, register-tiled GEMM over planar packed panels.
/// `c` must be pre-zeroed (or hold the value to accumulate onto).
fn gemm_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: Operand<'_>,
    b: &[Complex64],
    c: &mut [Complex64],
) {
    PACK.with(|bufs| {
        let bufs = &mut *bufs.borrow_mut();
        bufs.ensure();
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(b, n, pc, jc, kc, nc, &mut bufs.b_re, &mut bufs.b_im);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    match a {
                        Operand::Plain { a, lda } => {
                            pack_a(a, lda, ic, pc, mc, kc, &mut bufs.a_re, &mut bufs.a_im)
                        }
                        Operand::ConjTransposed { a, ldm } => {
                            pack_a_conj_t(a, ldm, ic, pc, mc, kc, &mut bufs.a_re, &mut bufs.a_im)
                        }
                    }
                    block_tiles(
                        mc, nc, kc, &bufs.a_re, &bufs.a_im, &bufs.b_re, &bufs.b_im, c, n, ic, jc,
                    );
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

/// Runs the register tile over one packed `(mc x kc) x (kc x nc)` block,
/// accumulating onto `c`.
#[allow(clippy::too_many_arguments)]
fn block_tiles(
    mc: usize,
    nc: usize,
    kc: usize,
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    c: &mut [Complex64],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let b_strip = (jr / NR) * kc * NR;
        let (bsr, bsi) = (
            &b_re[b_strip..b_strip + kc * NR],
            &b_im[b_strip..b_strip + kc * NR],
        );
        let mut ir = 0;
        while ir < mc {
            let mr = MR.min(mc - ir);
            let a_strip = (ir / MR) * kc * MR;
            let (asr, asi) = (
                &a_re[a_strip..a_strip + kc * MR],
                &a_im[a_strip..a_strip + kc * MR],
            );

            // Load the C tile (zero-padded at the edges: padded lanes
            // multiply packed zeros and are never stored back).
            let mut acc_re = [[0.0f64; NR]; MR];
            let mut acc_im = [[0.0f64; NR]; MR];
            for r in 0..mr {
                let row = (ic + ir + r) * ldc + jc + jr;
                for (q, slot) in c[row..row + nr].iter().enumerate() {
                    acc_re[r][q] = slot.re;
                    acc_im[r][q] = slot.im;
                }
            }
            micro_tile(asr, asi, bsr, bsi, &mut acc_re, &mut acc_im);
            for r in 0..mr {
                let row = (ic + ir + r) * ldc + jc + jr;
                for (q, slot) in c[row..row + nr].iter_mut().enumerate() {
                    *slot = Complex64::new(acc_re[r][q], acc_im[r][q]);
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// The register tile: `MR x NR` complex accumulators advanced over one
/// packed `KC` slice. The update order and association are exactly
/// [`Complex64::mul_add`]'s, so results are bitwise identical to the
/// scalar kernel. On x86-64 with AVX the same tile runs on 4-wide
/// `vmulpd`/`vaddpd`/`vsubpd` — lane-exact IEEE operations in the same
/// association, so the SIMD and scalar paths (and therefore different
/// machines) still agree bitwise; FMA contraction is deliberately never
/// used, since it *would* change results.
#[inline(always)]
fn micro_tile(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [[f64; NR]; MR],
    acc_im: &mut [[f64; NR]; MR],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { micro_tile_avx(a_re, a_im, b_re, b_im, acc_re, acc_im) };
        return;
    }
    micro_tile_scalar(a_re, a_im, b_re, b_im, acc_re, acc_im)
}

/// Portable scalar register tile (also the bitwise reference for the
/// AVX path).
#[inline(always)]
fn micro_tile_scalar(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [[f64; NR]; MR],
    acc_im: &mut [[f64; NR]; MR],
) {
    for (((ar, ai), br), bi) in a_re
        .chunks_exact(MR)
        .zip(a_im.chunks_exact(MR))
        .zip(b_re.chunks_exact(NR))
        .zip(b_im.chunks_exact(NR))
    {
        for r in 0..MR {
            let (are, aim) = (ar[r], ai[r]);
            for q in 0..NR {
                // Same association as Complex64::mul_add:
                //   re = (re + a.re b.re) - a.im b.im
                //   im = (im + a.re b.im) + a.im b.re
                acc_re[r][q] = (acc_re[r][q] + are * br[q]) - aim * bi[q];
                acc_im[r][q] = (acc_im[r][q] + are * bi[q]) + aim * br[q];
            }
        }
    }
}

/// AVX register tile: one 4-lane vector per accumulator row/plane
/// (`NR == 4`), A entries broadcast. Only `vmulpd`/`vaddpd`/`vsubpd`
/// are issued, in [`micro_tile_scalar`]'s exact association — no FMA —
/// so every lane computes the identical IEEE sequence and the result is
/// bitwise equal to the scalar tile.
///
/// # Safety
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn micro_tile_avx(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
    acc_re: &mut [[f64; NR]; MR],
    acc_im: &mut [[f64; NR]; MR],
) {
    // SAFETY: the caller verified AVX support at runtime (the only call
    // site is behind `is_x86_feature_detected!("avx")`), so the
    // `target_feature(enable = "avx")` intrinsics below are available.
    // All pointer arithmetic stays in bounds: `p < kc`, `r < MR`, and
    // the debug asserts pin `a_*`/`b_*` to exactly `kc * MR` / `kc * NR`
    // elements, while loads/stores of `acc_*` rows read `NR == 4` lanes
    // from `[f64; NR]` arrays.
    use std::arch::x86_64::*;
    const { assert!(NR == 4, "AVX tile assumes 4 f64 lanes") };
    let kc = a_re.len() / MR;
    debug_assert_eq!(a_re.len(), kc * MR);
    debug_assert_eq!(b_re.len(), kc * NR);
    let mut cr = [_mm256_setzero_pd(); MR];
    let mut ci = [_mm256_setzero_pd(); MR];
    for r in 0..MR {
        cr[r] = _mm256_loadu_pd(acc_re[r].as_ptr());
        ci[r] = _mm256_loadu_pd(acc_im[r].as_ptr());
    }
    for p in 0..kc {
        let br = _mm256_loadu_pd(b_re.as_ptr().add(p * NR));
        let bi = _mm256_loadu_pd(b_im.as_ptr().add(p * NR));
        for r in 0..MR {
            let are = _mm256_broadcast_sd(&*a_re.as_ptr().add(p * MR + r));
            let aim = _mm256_broadcast_sd(&*a_im.as_ptr().add(p * MR + r));
            // re = (re + a.re b.re) - a.im b.im
            cr[r] = _mm256_sub_pd(
                _mm256_add_pd(cr[r], _mm256_mul_pd(are, br)),
                _mm256_mul_pd(aim, bi),
            );
            // im = (im + a.re b.im) + a.im b.re
            ci[r] = _mm256_add_pd(
                _mm256_add_pd(ci[r], _mm256_mul_pd(are, bi)),
                _mm256_mul_pd(aim, br),
            );
        }
    }
    for r in 0..MR {
        _mm256_storeu_pd(acc_re[r].as_mut_ptr(), cr[r]);
        _mm256_storeu_pd(acc_im[r].as_mut_ptr(), ci[r]);
    }
}

/// Packs `mc x kc` of row-major `a` (leading dimension `lda`) into
/// `MR`-row planar strips: strip `s`, lane `p * MR + r` holds
/// `a[(ic + s*MR + r) * lda + pc + p]`, zero-padded past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[Complex64],
    lda: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let mut strip = 0;
    let mut s0 = 0;
    while strip < mc {
        for p in 0..kc {
            for r in 0..MR {
                let (re, im) = if strip + r < mc {
                    let z = a[(ic + strip + r) * lda + pc + p];
                    (z.re, z.im)
                } else {
                    (0.0, 0.0)
                };
                out_re[s0 + p * MR + r] = re;
                out_im[s0 + p * MR + r] = im;
            }
        }
        strip += MR;
        s0 += kc * MR;
    }
}

/// Packs `mc x kc` of `a^H` where `a` is stored `kc x mc` row-major with
/// leading dimension `ldm`: the fused-conjugate transfer. Lane
/// `p * MR + r` of strip `s` holds `conj(a[(pc + p) * ldm + ic + s*MR + r])`.
#[allow(clippy::too_many_arguments)]
fn pack_a_conj_t(
    a: &[Complex64],
    ldm: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let mut strip = 0;
    let mut s0 = 0;
    while strip < mc {
        for p in 0..kc {
            let a_row = &a[(pc + p) * ldm..];
            for r in 0..MR {
                let (re, im) = if strip + r < mc {
                    let z = a_row[ic + strip + r];
                    (z.re, -z.im)
                } else {
                    (0.0, 0.0)
                };
                out_re[s0 + p * MR + r] = re;
                out_im[s0 + p * MR + r] = im;
            }
        }
        strip += MR;
        s0 += kc * MR;
    }
}

/// Packs `kc x nc` of row-major `b` into `NR`-column planar strips,
/// zero-padded past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[Complex64],
    ldb: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let mut strip = 0;
    let mut s0 = 0;
    while strip < nc {
        for p in 0..kc {
            let b_row = &b[(pc + p) * ldb..];
            for q in 0..NR {
                let (re, im) = if strip + q < nc {
                    let z = b_row[jc + strip + q];
                    (z.re, z.im)
                } else {
                    (0.0, 0.0)
                };
                out_re[s0 + p * NR + q] = re;
                out_im[s0 + p * NR + q] = im;
            }
        }
        strip += NR;
        s0 += kc * NR;
    }
}

/// `c = a^H * b` with `a: k x m` (so `a^H: m x k`), `b: k x n`.
///
/// Conjugation is fused into the kernel — the packing step for the
/// blocked path, [`Complex64::conj_mul_add`] for the scalar path — so
/// `a^H` is never materialized. Above the blocking floor this runs the
/// same register-tiled kernel as [`gemm_serial`].
pub fn gemm_conj_a(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    assert_eq!(a.len(), k * m, "a must be k x m for gemm_conj_a");
    assert_eq!(b.len(), k * n, "b must be k x n");
    assert_eq!(c.len(), m * n, "c must be m x n");
    c.fill(Complex64::ZERO);
    if use_blocked(m, k, n) {
        gemm_blocked(m, k, n, Operand::ConjTransposed { a, ldm: m }, b, c);
        return;
    }
    // Scalar path. The zero-skip stays *here only*: the sub-floor shapes
    // are boundary zipper steps (bond 1-2 sites of basis-like states)
    // where site tensors genuinely carry structural zeros — measured on
    // basis-state Gram rows, the skip removes ~40% of the boundary-step
    // work, while on dense interior data the same branch was pure cost
    // (see `gemm_row`).
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let api = a_row[i];
            if api == Complex64::ZERO {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj = cj.conj_mul_add(api, bj);
            }
        }
    }
}

/// Matrix-vector product `y = a * x` with `a: m x n`.
pub fn matvec(m: usize, n: usize, a: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(a.len(), m * n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), m);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = Complex64::ZERO;
        for (aij, xj) in row.iter().zip(x) {
            acc = acc.mul_add(*aij, *xj);
        }
        y[i] = acc;
    }
}

/// Conjugated dot product `sum_i conj(a_i) * b_i` (the Hilbert-space inner
/// product convention: antilinear in the first argument).
pub fn dot_conj(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Complex64::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc = acc.conj_mul_add(*x, *y);
    }
    acc
}

/// In-place conjugate transpose of a row-major `m x n` matrix, returning the
/// `n x m` result as a new vector.
pub fn conj_transpose(m: usize, n: usize, a: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.len(), m * n);
    let mut out = vec![Complex64::ZERO; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j].conj();
        }
    }
    out
}

#[inline]
fn check_dims(m: usize, k: usize, n: usize, la: usize, lb: usize, lc: usize) {
    assert_eq!(la, m * k, "a must be m x k");
    assert_eq!(lb, k * n, "b must be k x n");
    assert_eq!(lc, m * n, "c must be m x n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{approx_eq, c64};

    fn naive_gemm(
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
    ) -> Vec<Complex64> {
        let mut c = vec![Complex64::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = Complex64::ZERO;
                for p in 0..k {
                    acc = acc.mul_add(a[i * k + p], b[p * n + j]);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        // Simple deterministic pseudo-random fill; avoids a rand dependency
        // in unit tests while exercising non-trivial values.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((state >> 33) as f64) / (u32::MAX as f64) - 0.5;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let im = ((state >> 33) as f64) / (u32::MAX as f64) - 0.5;
                c64(re, im)
            })
            .collect()
    }

    fn bits(c: &[Complex64]) -> Vec<(u64, u64)> {
        c.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
    }

    #[test]
    fn serial_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 2, 9), (16, 16, 16)] {
            let a = test_matrix(m, k, 1);
            let b = test_matrix(k, n, 2);
            let mut c = vec![Complex64::ZERO; m * n];
            gemm_serial(m, k, n, &a, &b, &mut c);
            let expect = naive_gemm(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!(approx_eq(*x, *y, 1e-10));
            }
        }
    }

    #[test]
    fn blocked_is_bitwise_identical_to_reference() {
        // The register-tiled kernel must be bitwise identical to the
        // pre-blocking i-k-j loop on dense data: both accumulate every
        // output element in strict p order with the same mul_add. Sizes
        // cross the blocking floor, the MR/NR edges and the KC boundary.
        for &(m, k, n) in &[
            (4, 64, 4),
            (5, 64, 7),
            (16, 16, 16),
            (64, 64, 128),
            (33, 300, 47),
            (130, 257, 66),
            (1, 64, 256),
            (64, 3, 64),
        ] {
            let a = test_matrix(m, k, m as u64 + 1);
            let b = test_matrix(k, n, n as u64 + 2);
            let mut c1 = vec![Complex64::ZERO; m * n];
            let mut c2 = vec![Complex64::ZERO; m * n];
            gemm_serial(m, k, n, &a, &b, &mut c1);
            gemm_unblocked_reference(m, k, n, &a, &b, &mut c2);
            assert_eq!(bits(&c1), bits(&c2), "({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_serial() {
        for &(m, k, n) in &[(33, 47, 29), (64, 64, 128), (3, 5, 301)] {
            let a = test_matrix(m, k, 3);
            let b = test_matrix(k, n, 4);
            let mut c1 = vec![Complex64::ZERO; m * n];
            let mut c2 = vec![Complex64::ZERO; m * n];
            gemm_serial(m, k, n, &a, &b, &mut c1);
            gemm_parallel(m, k, n, &a, &b, &mut c2);
            assert_eq!(bits(&c1), bits(&c2), "({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = test_matrix(4, 4, 5);
        let id: Vec<Complex64> = Tensor4Identity::build();
        let mut c = vec![Complex64::ZERO; 16];
        gemm_serial(4, 4, 4, &a, &id, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    struct Tensor4Identity;
    impl Tensor4Identity {
        fn build() -> Vec<Complex64> {
            let mut id = vec![Complex64::ZERO; 16];
            for i in 0..4 {
                id[i * 4 + i] = Complex64::ONE;
            }
            id
        }
    }

    #[test]
    fn conj_a_matches_materialized() {
        // Both the scalar path (small shapes) and the blocked path with
        // fused-conjugate packing (large shapes) must match an explicit
        // conj-transpose followed by plain GEMM.
        for &(m, k, n) in &[(3, 5, 4), (64, 128, 64), (37, 130, 29)] {
            // a is stored k x m.
            let a = test_matrix(k, m, 6);
            let b = test_matrix(k, n, 7);
            let mut c = vec![Complex64::ZERO; m * n];
            gemm_conj_a(m, k, n, &a, &b, &mut c);
            let ah = conj_transpose(k, m, &a); // m x k
            let expect = naive_gemm(m, k, n, &ah, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!(approx_eq(*x, *y, 1e-10), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn conj_a_blocked_is_bitwise_identical_to_scalar() {
        // Dense data (no structural zeros): the blocked conj kernel and
        // the scalar conj_mul_add loop accumulate identically.
        let (m, k, n) = (64, 128, 64);
        let a = test_matrix(k, m, 8);
        let b = test_matrix(k, n, 9);
        let mut c1 = vec![Complex64::ZERO; m * n];
        gemm_conj_a(m, k, n, &a, &b, &mut c1);
        let mut c2 = vec![Complex64::ZERO; m * n];
        for p in 0..k {
            for i in 0..m {
                for (cj, &bj) in c2[i * n..(i + 1) * n]
                    .iter_mut()
                    .zip(&b[p * n..(p + 1) * n])
                {
                    *cj = cj.conj_mul_add(a[p * m + i], bj);
                }
            }
        }
        assert_eq!(bits(&c1), bits(&c2));
    }

    #[test]
    fn matvec_matches_gemm() {
        let (m, n) = (6, 4);
        let a = test_matrix(m, n, 8);
        let x = test_matrix(n, 1, 9);
        let mut y = vec![Complex64::ZERO; m];
        matvec(m, n, &a, &x, &mut y);
        let expect = naive_gemm(m, n, 1, &a, &x);
        for (u, v) in y.iter().zip(&expect) {
            assert!(approx_eq(*u, *v, 1e-10));
        }
    }

    #[test]
    fn dot_conj_is_antilinear_first() {
        let a = vec![c64(0.0, 1.0)];
        let b = vec![c64(0.0, 1.0)];
        // <i, i> = conj(i) * i = 1.
        assert!(approx_eq(dot_conj(&a, &b), c64(1.0, 0.0), 1e-12));
    }

    #[test]
    fn conj_transpose_roundtrip() {
        let a = test_matrix(3, 5, 10);
        let at = conj_transpose(3, 5, &a);
        let back = conj_transpose(5, 3, &at);
        for (x, y) in a.iter().zip(&back) {
            assert!(approx_eq(*x, *y, 1e-15));
        }
    }

    #[test]
    fn gemm_auto_dispatches_correctly() {
        // Just validates both paths produce the same result around the
        // threshold; dispatch itself is a size check.
        let (m, k, n) = (64, 64, 64);
        let a = test_matrix(m, k, 11);
        let b = test_matrix(k, n, 12);
        let mut c1 = vec![Complex64::ZERO; m * n];
        let mut c2 = vec![Complex64::ZERO; m * n];
        gemm_auto(m, k, n, &a, &b, &mut c1);
        gemm_serial(m, k, n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }
}
