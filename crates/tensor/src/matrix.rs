//! Dense complex matrix kernels: GEMM and friends.
//!
//! All kernels operate on row-major slices (`a` is `m x k`, `b` is `k x n`,
//! `c` is `m x n`). Two implementations are provided:
//!
//! * [`gemm_serial`] — a cache-friendly i-k-j loop used by the CPU backend.
//! * [`gemm_parallel`] — the same kernel with rows fanned out over rayon,
//!   used by the accelerator backend on large tensors.
//!
//! The i-k-j ordering streams through `b` and `c` rows contiguously, which
//! is the standard trick for row-major GEMM without explicit blocking; for
//! the bond dimensions seen in MPS simulation (up to a few hundred) it stays
//! within L2 and performs close to a blocked kernel.

use crate::complex::Complex64;
use rayon::prelude::*;

/// Minimum `m * k * n` below which [`gemm_auto`] stays serial: rayon's
/// fork-join overhead dominates under roughly a microsecond of work.
pub const PARALLEL_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// `c = a * b` with `a: m x k`, `b: k x n`, serial kernel.
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_serial(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    c.fill(Complex64::ZERO);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        gemm_row(a_row, b, n, c_row);
    }
}

/// `c = a * b`, rows of `c` computed in parallel with rayon.
pub fn gemm_parallel(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        c_row.fill(Complex64::ZERO);
        let a_row = &a[i * k..(i + 1) * k];
        gemm_row(a_row, b, n, c_row);
    });
}

/// `c = a * b`, choosing serial or parallel by problem size.
pub fn gemm_auto(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    if m * k * n >= PARALLEL_FLOP_THRESHOLD {
        gemm_parallel(m, k, n, a, b, c);
    } else {
        gemm_serial(m, k, n, a, b, c);
    }
}

/// Inner kernel: `c_row += a_row * b` for one output row.
#[inline]
fn gemm_row(a_row: &[Complex64], b: &[Complex64], n: usize, c_row: &mut [Complex64]) {
    for (p, &apk) in a_row.iter().enumerate() {
        if apk == Complex64::ZERO {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (cj, &bj) in c_row.iter_mut().zip(b_row) {
            *cj = cj.mul_add(apk, bj);
        }
    }
}

/// `c = a^H * b` with `a: k x m` (so `a^H: m x k`), `b: k x n`.
///
/// Used by inner products and canonicalization; conjugation is fused into
/// the kernel to avoid materializing `a^H`.
pub fn gemm_conj_a(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) {
    assert_eq!(a.len(), k * m, "a must be k x m for gemm_conj_a");
    assert_eq!(b.len(), k * n, "b must be k x n");
    assert_eq!(c.len(), m * n, "c must be m x n");
    c.fill(Complex64::ZERO);
    // Accumulate over p: c[i][j] += conj(a[p][i]) * b[p][j].
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let api = a_row[i];
            if api == Complex64::ZERO {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj = cj.conj_mul_add(api, bj);
            }
        }
    }
}

/// Matrix-vector product `y = a * x` with `a: m x n`.
pub fn matvec(m: usize, n: usize, a: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(a.len(), m * n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), m);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = Complex64::ZERO;
        for (aij, xj) in row.iter().zip(x) {
            acc = acc.mul_add(*aij, *xj);
        }
        y[i] = acc;
    }
}

/// Conjugated dot product `sum_i conj(a_i) * b_i` (the Hilbert-space inner
/// product convention: antilinear in the first argument).
pub fn dot_conj(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Complex64::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc = acc.conj_mul_add(*x, *y);
    }
    acc
}

/// In-place conjugate transpose of a row-major `m x n` matrix, returning the
/// `n x m` result as a new vector.
pub fn conj_transpose(m: usize, n: usize, a: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.len(), m * n);
    let mut out = vec![Complex64::ZERO; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j].conj();
        }
    }
    out
}

#[inline]
fn check_dims(m: usize, k: usize, n: usize, la: usize, lb: usize, lc: usize) {
    assert_eq!(la, m * k, "a must be m x k");
    assert_eq!(lb, k * n, "b must be k x n");
    assert_eq!(lc, m * n, "c must be m x n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{approx_eq, c64};

    fn naive_gemm(
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
    ) -> Vec<Complex64> {
        let mut c = vec![Complex64::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = Complex64::ZERO;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        // Simple deterministic pseudo-random fill; avoids a rand dependency
        // in unit tests while exercising non-trivial values.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((state >> 33) as f64) / (u32::MAX as f64) - 0.5;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let im = ((state >> 33) as f64) / (u32::MAX as f64) - 0.5;
                c64(re, im)
            })
            .collect()
    }

    #[test]
    fn serial_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 2, 9), (16, 16, 16)] {
            let a = test_matrix(m, k, 1);
            let b = test_matrix(k, n, 2);
            let mut c = vec![Complex64::ZERO; m * n];
            gemm_serial(m, k, n, &a, &b, &mut c);
            let expect = naive_gemm(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!(approx_eq(*x, *y, 1e-10));
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (m, k, n) = (33, 47, 29);
        let a = test_matrix(m, k, 3);
        let b = test_matrix(k, n, 4);
        let mut c1 = vec![Complex64::ZERO; m * n];
        let mut c2 = vec![Complex64::ZERO; m * n];
        gemm_serial(m, k, n, &a, &b, &mut c1);
        gemm_parallel(m, k, n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = test_matrix(4, 4, 5);
        let id: Vec<Complex64> = Tensor4Identity::build();
        let mut c = vec![Complex64::ZERO; 16];
        gemm_serial(4, 4, 4, &a, &id, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    struct Tensor4Identity;
    impl Tensor4Identity {
        fn build() -> Vec<Complex64> {
            let mut id = vec![Complex64::ZERO; 16];
            for i in 0..4 {
                id[i * 4 + i] = Complex64::ONE;
            }
            id
        }
    }

    #[test]
    fn conj_a_matches_materialized() {
        let (m, k, n) = (3, 5, 4);
        // a is stored k x m.
        let a = test_matrix(k, m, 6);
        let b = test_matrix(k, n, 7);
        let mut c = vec![Complex64::ZERO; m * n];
        gemm_conj_a(m, k, n, &a, &b, &mut c);
        let ah = conj_transpose(k, m, &a); // m x k
        let expect = naive_gemm(m, k, n, &ah, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    fn matvec_matches_gemm() {
        let (m, n) = (6, 4);
        let a = test_matrix(m, n, 8);
        let x = test_matrix(n, 1, 9);
        let mut y = vec![Complex64::ZERO; m];
        matvec(m, n, &a, &x, &mut y);
        let expect = naive_gemm(m, n, 1, &a, &x);
        for (u, v) in y.iter().zip(&expect) {
            assert!(approx_eq(*u, *v, 1e-10));
        }
    }

    #[test]
    fn dot_conj_is_antilinear_first() {
        let a = vec![c64(0.0, 1.0)];
        let b = vec![c64(0.0, 1.0)];
        // <i, i> = conj(i) * i = 1.
        assert!(approx_eq(dot_conj(&a, &b), c64(1.0, 0.0), 1e-12));
    }

    #[test]
    fn conj_transpose_roundtrip() {
        let a = test_matrix(3, 5, 10);
        let at = conj_transpose(3, 5, &a);
        let back = conj_transpose(5, 3, &at);
        for (x, y) in a.iter().zip(&back) {
            assert!(approx_eq(*x, *y, 1e-15));
        }
    }

    #[test]
    fn gemm_auto_dispatches_correctly() {
        // Just validates both paths produce the same result around the
        // threshold; dispatch itself is a size check.
        let (m, k, n) = (64, 64, 64);
        let a = test_matrix(m, k, 11);
        let b = test_matrix(k, n, 12);
        let mut c1 = vec![Complex64::ZERO; m * n];
        let mut c2 = vec![Complex64::ZERO; m * n];
        gemm_auto(m, k, n, &a, &b, &mut c1);
        gemm_serial(m, k, n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }
}
