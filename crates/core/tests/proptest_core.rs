//! Property-based tests of the quantum-kernel framework: Gram-matrix
//! structure on arbitrary data, distribution-strategy equivalence over
//! arbitrary process counts, and cost-model laws over arbitrary scales.

use proptest::prelude::*;
use qk_circuit::AnsatzConfig;
use qk_core::distributed::{distributed_gram, Strategy as DistStrategy};
use qk_core::extrapolate::{forecast_training, PrimitiveCosts};
use qk_core::gram::{flat_from_pair, gram_matrix, pair_from_flat};
use qk_core::states::simulate_states;
use qk_mps::TruncationConfig;
use qk_tensor::backend::CpuBackend;
use std::time::Duration;

/// Feature rows in the rescaled (0, 2) domain the ansatz expects.
fn rows_strategy(max_rows: usize, features: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..2.0, features), 2..=max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The training Gram matrix is symmetric with unit diagonal and
    /// entries in [0, 1] for any data whatsoever.
    #[test]
    fn gram_entries_are_valid_overlaps(rows in rows_strategy(6, 4), d in 1usize..3) {
        let be = CpuBackend::new();
        let batch = simulate_states(
            &rows,
            &AnsatzConfig::new(2, d, 0.7),
            &be,
            &TruncationConfig::default(),
        );
        let k = gram_matrix(&batch.states, &be).kernel;
        let n = rows.len();
        for i in 0..n {
            prop_assert!((k.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..n {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&k.get(i, j)), "K[{i}][{j}] = {}", k.get(i, j));
                prop_assert_eq!(k.get(i, j), k.get(j, i));
            }
        }
    }

    /// Round-robin and no-messaging produce the same kernel as the
    /// single-process reference for any process count.
    #[test]
    fn distribution_strategies_agree(rows in rows_strategy(8, 3), k in 1usize..5) {
        let be = CpuBackend::new();
        let ansatz = AnsatzConfig::new(2, 1, 0.5);
        let trunc = TruncationConfig::default();
        let reference = {
            let batch = simulate_states(&rows, &ansatz, &be, &trunc);
            gram_matrix(&batch.states, &be).kernel
        };
        for strategy in [DistStrategy::RoundRobin, DistStrategy::NoMessaging] {
            let out = distributed_gram(&rows, &ansatz, &be, &trunc, k, strategy).kernel;
            for i in 0..rows.len() {
                for j in 0..rows.len() {
                    prop_assert!(
                        (out.get(i, j) - reference.get(i, j)).abs() < 1e-12,
                        "{strategy:?} k={k} [{i}][{j}]"
                    );
                }
            }
        }
    }

    /// Cost-model laws hold at any scale: the round-robin total is
    /// non-increasing in the process count, and the inner-product phase
    /// scales exactly as 1/k.
    #[test]
    fn forecast_total_nonincreasing_in_processes(
        n in 10usize..5_000,
        k in 1usize..64,
        sim_us in 1u64..100_000,
        ip_us in 1u64..10_000,
    ) {
        let costs = PrimitiveCosts {
            simulation: Duration::from_micros(sim_us),
            inner_product: Duration::from_micros(ip_us),
            communication_per_state: Duration::from_nanos(100),
        };
        let a = forecast_training(&costs, n, k, DistStrategy::RoundRobin);
        let b = forecast_training(&costs, n, k + 1, DistStrategy::RoundRobin);
        // Inner products: exact 1/k scaling.
        let expect_ratio = (k + 1) as f64 / k as f64;
        let actual_ratio =
            a.inner_products.as_secs_f64() / b.inner_products.as_secs_f64().max(1e-300);
        prop_assert!((actual_ratio - expect_ratio).abs() < 1e-6, "{actual_ratio} vs {expect_ratio}");
        // Simulation phase never grows with more processes.
        prop_assert!(b.simulation <= a.simulation);
    }

    /// No-messaging never communicates and always simulates at least as
    /// much as round-robin.
    #[test]
    fn no_messaging_redundancy_dominates(
        n in 10usize..2_000,
        k in 2usize..64,
    ) {
        let costs = PrimitiveCosts::paper_qml_ansatz();
        let nm = forecast_training(&costs, n, k, DistStrategy::NoMessaging);
        let rr = forecast_training(&costs, n, k, DistStrategy::RoundRobin);
        prop_assert_eq!(nm.communication, Duration::ZERO);
        prop_assert!(nm.simulation >= rr.simulation);
        prop_assert_eq!(nm.inner_products, rr.inner_products);
    }

    /// `flat -> (i, j) -> flat` round-trips exhaustively for small `n`.
    #[test]
    fn pair_from_flat_round_trips_small_n(n in 2usize..64) {
        for k in 0..n * (n - 1) / 2 {
            let (i, j) = pair_from_flat(k, n);
            prop_assert!(i < j && j < n, "n={n} k={k} -> ({i},{j})");
            prop_assert_eq!(flat_from_pair(i, j, n), k, "n={} k={}", n, k);
        }
    }

    /// The `f64` quadratic-formula row recovery survives paper scale:
    /// sampled flat indices round-trip for `n` up to 100,000, where the
    /// flat index reaches ~5e9 and the square-root argument ~4e10.
    #[test]
    fn pair_from_flat_round_trips_at_scale(
        n in 1_000usize..=100_000,
        samples in prop::collection::vec(0.0f64..1.0, 32),
    ) {
        let total = n * (n - 1) / 2;
        // Deterministic boundary probes plus the sampled interior: row
        // starts and row ends are where the sqrt recovery can drift.
        let mut probes = vec![0, 1, total - 1, total / 2];
        for frac in [0.25f64, 0.75, 0.999] {
            let i = ((n as f64) * frac) as usize;
            if i + 1 < n {
                probes.push(flat_from_pair(i, i + 1, n)); // row start
                probes.push(flat_from_pair(i, n - 1, n)); // row end
            }
        }
        probes.extend(samples.iter().map(|f| ((total - 1) as f64 * f) as usize));
        for k in probes {
            let (i, j) = pair_from_flat(k, n);
            prop_assert!(i < j && j < n, "n={n} k={k} -> ({i},{j})");
            prop_assert_eq!(flat_from_pair(i, j, n), k, "n={} k={}", n, k);
        }
    }
}
