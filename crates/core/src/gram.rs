//! Gram-matrix assembly from simulated states (eq. 1).
//!
//! The symmetric training Gram matrix needs `N(N-1)/2` inner products
//! (diagonal entries are exactly 1 for normalized states); the inference
//! block needs `N_test * N_train`. Both fan out over rayon.

use qk_mps::Mps;
use qk_svm::{KernelBlock, KernelMatrix};
use qk_tensor::backend::ExecutionBackend;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// A Gram matrix plus the wall time spent computing it.
pub struct TimedKernel {
    /// The kernel matrix.
    pub kernel: KernelMatrix,
    /// Wall-clock time of the inner-product phase.
    pub wall_time: Duration,
    /// Number of inner products evaluated.
    pub inner_products: usize,
}

/// Computes the symmetric training kernel `K_ij = |<psi_i|psi_j>|^2`.
///
/// Exploits symmetry: only the strict upper triangle is contracted.
pub fn gram_matrix(states: &[Mps], backend: &dyn ExecutionBackend) -> TimedKernel {
    let n = states.len();
    let start = Instant::now();
    // Upper-triangle entries, processed in parallel. The (i, j) pair is
    // derived from the flat index inside the loop, so no O(N^2) pair
    // list is materialized up front (at the paper's N = 64,000 that
    // list alone would be ~32 GiB of index tuples).
    let total = n * n.saturating_sub(1) / 2;
    let entries: Vec<((usize, usize), f64)> = (0..total)
        .into_par_iter()
        .map(|k| {
            let (i, j) = pair_from_flat(k, n);
            let v = states[i].inner_with(backend, &states[j]).norm_sqr();
            ((i, j), v)
        })
        .collect();
    let mut data = vec![0.0f64; n * n];
    for i in 0..n {
        data[i * n + i] = 1.0;
    }
    for ((i, j), v) in entries {
        data[i * n + j] = v;
        data[j * n + i] = v;
    }
    TimedKernel {
        kernel: KernelMatrix::from_dense(n, data),
        wall_time: start.elapsed(),
        inner_products: n * (n - 1) / 2,
    }
}

/// Maps a flat upper-triangle index to its `(i, j)` pair (`i < j`).
///
/// Pairs are ordered row-major — `(0,1), (0,2), …, (0,n-1), (1,2), …` —
/// so row `i` starts at flat offset `C(i) = i (2n - i - 1) / 2`. The row
/// is recovered with the quadratic formula; the adjustment loops absorb
/// any floating-point drift in the square root (at most one step).
fn pair_from_flat(k: usize, n: usize) -> (usize, usize) {
    debug_assert!(k < n * (n - 1) / 2);
    let row_start = |i: usize| i * (2 * n - i - 1) / 2;
    let m = (2 * n - 1) as f64;
    let mut i = ((m - (m * m - 8.0 * k as f64).sqrt()) / 2.0).floor() as usize;
    i = i.min(n - 2);
    while i + 1 < n - 1 && row_start(i + 1) <= k {
        i += 1;
    }
    while i > 0 && row_start(i) > k {
        i -= 1;
    }
    (i, i + 1 + (k - row_start(i)))
}

/// A rectangular kernel block plus timing.
pub struct TimedBlock {
    /// Rows = test states, columns = train states.
    pub block: KernelBlock,
    /// Wall-clock time of the inner-product phase.
    pub wall_time: Duration,
    /// Number of inner products evaluated.
    pub inner_products: usize,
}

/// Computes the inference kernel block `K[t][s] = |<psi_test_t|psi_train_s>|^2`.
pub fn kernel_block(
    test_states: &[Mps],
    train_states: &[Mps],
    backend: &dyn ExecutionBackend,
) -> TimedBlock {
    let start = Instant::now();
    let cols = train_states.len();
    let data: Vec<f64> = test_states
        .par_iter()
        .flat_map_iter(|t| {
            train_states
                .iter()
                .map(move |s| t.inner_with(backend, s).norm_sqr())
        })
        .collect();
    TimedBlock {
        block: KernelBlock::from_dense(test_states.len(), cols, data),
        wall_time: start.elapsed(),
        inner_products: test_states.len() * cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::simulate_states;
    use qk_circuit::AnsatzConfig;
    use qk_mps::TruncationConfig;
    use qk_tensor::backend::CpuBackend;

    fn states(n: usize, m: usize) -> Vec<Mps> {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..m).map(|j| ((i * m + j) % 9) as f64 * 0.22).collect())
            .collect();
        let be = CpuBackend::new();
        simulate_states(
            &rows,
            &AnsatzConfig::new(2, 1, 0.7),
            &be,
            &TruncationConfig::default(),
        )
        .states
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal() {
        let st = states(5, 4);
        let be = CpuBackend::new();
        let timed = gram_matrix(&st, &be);
        let k = &timed.kernel;
        assert_eq!(k.len(), 5);
        assert_eq!(timed.inner_products, 10);
        for i in 0..5 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!((0.0..=1.0 + 1e-9).contains(&k.get(i, j)));
                assert_eq!(k.get(i, j), k.get(j, i));
            }
        }
    }

    #[test]
    fn gram_matches_pairwise_inner() {
        let st = states(4, 3);
        let be = CpuBackend::new();
        let k = gram_matrix(&st, &be).kernel;
        for i in 0..4 {
            for j in 0..4 {
                let direct = st[i].overlap_sqr(&st[j]);
                assert!((k.get(i, j) - direct).abs() < 1e-10, "[{i}][{j}]");
            }
        }
    }

    #[test]
    fn single_state_gram_is_trivial() {
        let st = states(1, 4);
        let be = CpuBackend::new();
        let timed = gram_matrix(&st, &be);
        assert_eq!(timed.kernel.len(), 1);
        assert_eq!(timed.inner_products, 0);
        assert!((timed.kernel.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_rows_give_unit_entries() {
        // Two copies of the same data point must overlap to exactly 1.
        let row = vec![0.3, 1.1, 0.6, 1.7];
        let be = CpuBackend::new();
        let batch = simulate_states(
            &[row.clone(), row],
            &AnsatzConfig::new(2, 2, 0.9),
            &be,
            &TruncationConfig::default(),
        );
        let k = gram_matrix(&batch.states, &be).kernel;
        assert!((k.get(0, 1) - 1.0).abs() < 1e-9, "K01 = {}", k.get(0, 1));
    }

    #[test]
    fn gram_agrees_with_backends() {
        // The accelerator backend runs the same algorithm; entries must
        // match the CPU backend to floating-point accuracy.
        use qk_tensor::backend::{AcceleratorBackend, DeviceModel};
        let st = states(4, 4);
        let cpu = CpuBackend::new();
        let acc = AcceleratorBackend::new(DeviceModel::ideal());
        let k_cpu = gram_matrix(&st, &cpu).kernel;
        let k_acc = gram_matrix(&st, &acc).kernel;
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (k_cpu.get(i, j) - k_acc.get(i, j)).abs() < 1e-12,
                    "[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn flat_index_enumerates_upper_triangle() {
        // pair_from_flat must be a bijection onto {(i, j) : i < j} in
        // row-major order, for a spread of sizes including tiny ones.
        for n in [2usize, 3, 4, 5, 7, 16, 33, 100] {
            let expected: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();
            let got: Vec<(usize, usize)> =
                (0..n * (n - 1) / 2).map(|k| pair_from_flat(k, n)).collect();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn flat_index_gram_matches_materialized_pair_list() {
        // Pin the flat-index loop against the old implementation, which
        // materialized the pair list before the parallel loop: entries
        // must be bitwise identical.
        let st = states(7, 4);
        let be = CpuBackend::new();
        let n = st.len();
        let k_new = gram_matrix(&st, &be).kernel;
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        for &(i, j) in &pairs {
            let v = st[i].inner_with(&be, &st[j]).norm_sqr();
            data[i * n + j] = v;
            data[j * n + i] = v;
        }
        assert_eq!(k_new.data(), data.as_slice(), "flat-index path diverged");
    }

    #[test]
    fn empty_test_block_is_empty() {
        let train = states(3, 3);
        let be = CpuBackend::new();
        let timed = kernel_block(&[], &train, &be);
        assert_eq!(timed.block.rows(), 0);
        assert_eq!(timed.inner_products, 0);
    }

    #[test]
    fn block_matches_direct() {
        let train = states(4, 3);
        let test = states(2, 3);
        let be = CpuBackend::new();
        let timed = kernel_block(&test, &train, &be);
        assert_eq!(timed.block.rows(), 2);
        assert_eq!(timed.block.cols(), 4);
        assert_eq!(timed.inner_products, 8);
        for (t, test_state) in test.iter().enumerate() {
            for (s, train_state) in train.iter().enumerate() {
                let direct = test_state.overlap_sqr(train_state);
                assert!((timed.block.row(t)[s] - direct).abs() < 1e-10);
            }
        }
    }
}
