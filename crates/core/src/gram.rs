//! Gram-matrix assembly from simulated states (eq. 1).
//!
//! The symmetric training Gram matrix needs `N(N-1)/2` inner products
//! (diagonal entries are exactly 1 for normalized states); the inference
//! block needs `N_test * N_train`.
//!
//! Small problems run a single-pass loop that writes straight into
//! per-row chunks of the dense buffer — no `O(N²)` list of index/value
//! tuples is ever materialized next to the matrix (at the paper's
//! N = 64,000 that list alone would be ~32 GiB of temporaries). At and
//! above [`TILED_THRESHOLD`] the computation delegates to `qk-gram`'s
//! tiled engine, which adds a worker pool, checkpoint/resume and a
//! memory budget; both paths are pinned bitwise identical by tests.

use qk_gram::{GramConfig, GramEngine};
use qk_mps::{Mps, ZipperWorkspace};
use qk_obs::Obs;
use qk_svm::{KernelBlock, KernelMatrix};
use qk_tensor::backend::ExecutionBackend;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Problem size (states for [`gram_matrix`], total entries for
/// [`kernel_block`]) at which computation delegates to the tiled
/// `qk-gram` engine instead of the single-pass loop.
pub const TILED_THRESHOLD: usize = 64;

/// Tile edge for the delegated in-memory path. Tile interiors are
/// serial, so the edge shrinks with the problem until the plan yields
/// several tiles per available worker (keeping moderate-N problems as
/// parallel as the old per-pair loop), and is floored to amortize
/// scheduling and capped to bound per-tile memory.
fn delegated_tile(extent: usize) -> usize {
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    extent.div_ceil(2 * workers).clamp(16, 128)
}

/// A Gram matrix plus the wall time spent computing it.
pub struct TimedKernel {
    /// The kernel matrix.
    pub kernel: KernelMatrix,
    /// Wall-clock time of the inner-product phase.
    pub wall_time: Duration,
    /// Number of inner products evaluated. Computed once from the
    /// problem shape (and surfaced from the engine's tile-plan manifest
    /// on the delegated path), never recounted per entry.
    pub inner_products: usize,
}

/// Computes the symmetric training kernel `K_ij = |<psi_i|psi_j>|^2`.
///
/// Exploits symmetry: only the strict upper triangle is contracted.
pub fn gram_matrix(states: &[Mps], backend: &dyn ExecutionBackend) -> TimedKernel {
    let n = states.len();
    let start = Instant::now();
    if n >= TILED_THRESHOLD {
        let engine = GramEngine::new(GramConfig::in_memory(delegated_tile(n)));
        let out = engine
            .compute_gram(states, backend)
            .expect("in-memory tiled gram cannot fail: no checkpoint, no spill, no budget");
        return TimedKernel {
            kernel: out.kernel.into_kernel_matrix(),
            wall_time: start.elapsed(),
            inner_products: out.report.inner_products,
        };
    }
    // Small-N fast path: each row of the dense buffer is an independent
    // chunk; row i computes its strict upper triangle in place, then a
    // cheap serial pass mirrors the triangle. Peak memory is the matrix
    // itself. One zipper workspace per row chunk amortizes the kernel's
    // environment buffers across the whole row of inner products.
    let total = n * n.saturating_sub(1) / 2;
    let mut data = vec![0.0f64; n * n];
    data.par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            let mut ws = ZipperWorkspace::new();
            row[i] = 1.0;
            for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
                *slot = states[i]
                    .inner_into(&mut ws, backend, &states[j])
                    .norm_sqr();
            }
        });
    for i in 0..n {
        for j in (i + 1)..n {
            data[j * n + i] = data[i * n + j];
        }
    }
    TimedKernel {
        kernel: KernelMatrix::from_dense(n, data),
        wall_time: start.elapsed(),
        inner_products: total,
    }
}

/// [`gram_matrix`] with observability: wraps the computation in
/// `core_gram` spans (with a `tiled` / `small_n` child marking which
/// path ran), counts inner products into `core.gram_inner_products`,
/// and — on the delegated path — shares `obs` with the tiled engine so
/// its `gram.*` instruments land in the same registry. The kernel is
/// bitwise identical to an unobserved [`gram_matrix`] run.
pub fn gram_matrix_observed(
    states: &[Mps],
    backend: &dyn ExecutionBackend,
    obs: &Obs,
) -> TimedKernel {
    let _gram_span = obs.span("core_gram");
    let n = states.len();
    let timed = if n >= TILED_THRESHOLD {
        let _path_span = obs.span("tiled");
        let engine = GramEngine::new(GramConfig {
            obs: Some(obs.clone()),
            ..GramConfig::in_memory(delegated_tile(n))
        });
        let out = engine
            .compute_gram(states, backend)
            .expect("in-memory tiled gram cannot fail: no checkpoint, no spill, no budget");
        TimedKernel {
            kernel: out.kernel.into_kernel_matrix(),
            wall_time: out.report.wall_time,
            inner_products: out.report.inner_products,
        }
    } else {
        let _path_span = obs.span("small_n");
        gram_matrix(states, backend)
    };
    obs.counter("core.gram_inner_products")
        .add(timed.inner_products as u64);
    timed
}

/// Maps a flat upper-triangle index to its `(i, j)` pair (`i < j`).
///
/// Pairs are ordered row-major — `(0,1), (0,2), …, (0,n-1), (1,2), …` —
/// so row `i` starts at flat offset `C(i) = i (2n - i - 1) / 2`. The row
/// is recovered with the quadratic formula; the adjustment loops absorb
/// any floating-point drift in the square root (at most one step).
/// Inverse of [`flat_from_pair`]; exercised by property tests up to the
/// paper's scale, where the `f64` recovery is the delicate part.
pub fn pair_from_flat(k: usize, n: usize) -> (usize, usize) {
    debug_assert!(k < n * (n - 1) / 2);
    let row_start = |i: usize| i * (2 * n - i - 1) / 2;
    let m = (2 * n - 1) as f64;
    let mut i = ((m - (m * m - 8.0 * k as f64).sqrt()) / 2.0).floor() as usize;
    i = i.min(n - 2);
    while i + 1 < n - 1 && row_start(i + 1) <= k {
        i += 1;
    }
    while i > 0 && row_start(i) > k {
        i -= 1;
    }
    (i, i + 1 + (k - row_start(i)))
}

/// Maps an upper-triangle pair (`i < j < n`) to its flat row-major
/// index: the inverse of [`pair_from_flat`].
pub fn flat_from_pair(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// A rectangular kernel block plus timing.
pub struct TimedBlock {
    /// Rows = test states, columns = train states.
    pub block: KernelBlock,
    /// Wall-clock time of the inner-product phase.
    pub wall_time: Duration,
    /// Number of inner products evaluated.
    pub inner_products: usize,
}

/// Computes the inference kernel block `K[t][s] = |<psi_test_t|psi_train_s>|^2`.
pub fn kernel_block(
    test_states: &[Mps],
    train_states: &[Mps],
    backend: &dyn ExecutionBackend,
) -> TimedBlock {
    let start = Instant::now();
    let cols = train_states.len();
    let entries = test_states.len() * cols;
    if entries >= TILED_THRESHOLD * TILED_THRESHOLD {
        let tile = delegated_tile(test_states.len().max(cols));
        let engine = GramEngine::new(GramConfig::in_memory(tile));
        let out = engine
            .compute_block(test_states, train_states, backend)
            .expect("in-memory tiled block cannot fail: no checkpoint, no spill, no budget");
        return TimedBlock {
            block: out.block,
            wall_time: start.elapsed(),
            inner_products: out.report.inner_products,
        };
    }
    // One workspace per test row, reused across its whole train sweep.
    let data: Vec<f64> = test_states
        .par_iter()
        .flat_map_iter(|t| {
            let mut ws = ZipperWorkspace::new();
            train_states
                .iter()
                .map(move |s| t.inner_into(&mut ws, backend, s).norm_sqr())
        })
        .collect();
    TimedBlock {
        block: KernelBlock::from_dense(test_states.len(), cols, data),
        wall_time: start.elapsed(),
        inner_products: entries,
    }
}

/// [`kernel_block`] with observability — the block analogue of
/// [`gram_matrix_observed`], with the same bitwise guarantee.
pub fn kernel_block_observed(
    test_states: &[Mps],
    train_states: &[Mps],
    backend: &dyn ExecutionBackend,
    obs: &Obs,
) -> TimedBlock {
    let _gram_span = obs.span("core_gram");
    let entries = test_states.len() * train_states.len();
    let timed = if entries >= TILED_THRESHOLD * TILED_THRESHOLD {
        let _path_span = obs.span("tiled");
        let tile = delegated_tile(test_states.len().max(train_states.len()));
        let engine = GramEngine::new(GramConfig {
            obs: Some(obs.clone()),
            ..GramConfig::in_memory(tile)
        });
        let out = engine
            .compute_block(test_states, train_states, backend)
            .expect("in-memory tiled block cannot fail: no checkpoint, no spill, no budget");
        TimedBlock {
            block: out.block,
            wall_time: out.report.wall_time,
            inner_products: out.report.inner_products,
        }
    } else {
        let _path_span = obs.span("small_n");
        kernel_block(test_states, train_states, backend)
    };
    obs.counter("core.gram_inner_products")
        .add(timed.inner_products as u64);
    timed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::simulate_states;
    use qk_circuit::AnsatzConfig;
    use qk_mps::TruncationConfig;
    use qk_tensor::backend::CpuBackend;

    fn states(n: usize, m: usize) -> Vec<Mps> {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..m).map(|j| ((i * m + j) % 9) as f64 * 0.22).collect())
            .collect();
        let be = CpuBackend::new();
        simulate_states(
            &rows,
            &AnsatzConfig::new(2, 1, 0.7),
            &be,
            &TruncationConfig::default(),
        )
        .states
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal() {
        let st = states(5, 4);
        let be = CpuBackend::new();
        let timed = gram_matrix(&st, &be);
        let k = &timed.kernel;
        assert_eq!(k.len(), 5);
        assert_eq!(timed.inner_products, 10);
        for i in 0..5 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!((0.0..=1.0 + 1e-9).contains(&k.get(i, j)));
                assert_eq!(k.get(i, j), k.get(j, i));
            }
        }
    }

    #[test]
    fn gram_matches_pairwise_inner() {
        let st = states(4, 3);
        let be = CpuBackend::new();
        let k = gram_matrix(&st, &be).kernel;
        for i in 0..4 {
            for j in 0..4 {
                let direct = st[i].overlap_sqr(&st[j]);
                assert!((k.get(i, j) - direct).abs() < 1e-10, "[{i}][{j}]");
            }
        }
    }

    #[test]
    fn single_state_gram_is_trivial() {
        let st = states(1, 4);
        let be = CpuBackend::new();
        let timed = gram_matrix(&st, &be);
        assert_eq!(timed.kernel.len(), 1);
        assert_eq!(timed.inner_products, 0);
        assert!((timed.kernel.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_gram_is_empty() {
        let be = CpuBackend::new();
        let timed = gram_matrix(&[], &be);
        assert_eq!(timed.kernel.len(), 0);
        assert_eq!(timed.inner_products, 0);
    }

    #[test]
    fn identical_rows_give_unit_entries() {
        // Two copies of the same data point must overlap to exactly 1.
        let row = vec![0.3, 1.1, 0.6, 1.7];
        let be = CpuBackend::new();
        let batch = simulate_states(
            &[row.clone(), row],
            &AnsatzConfig::new(2, 2, 0.9),
            &be,
            &TruncationConfig::default(),
        );
        let k = gram_matrix(&batch.states, &be).kernel;
        assert!((k.get(0, 1) - 1.0).abs() < 1e-9, "K01 = {}", k.get(0, 1));
    }

    #[test]
    fn gram_agrees_with_backends() {
        // The accelerator backend runs the same algorithm; entries must
        // match the CPU backend to floating-point accuracy.
        use qk_tensor::backend::{AcceleratorBackend, DeviceModel};
        let st = states(4, 4);
        let cpu = CpuBackend::new();
        let acc = AcceleratorBackend::new(DeviceModel::ideal());
        let k_cpu = gram_matrix(&st, &cpu).kernel;
        let k_acc = gram_matrix(&st, &acc).kernel;
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (k_cpu.get(i, j) - k_acc.get(i, j)).abs() < 1e-12,
                    "[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn flat_index_enumerates_upper_triangle() {
        // pair_from_flat must be a bijection onto {(i, j) : i < j} in
        // row-major order, for a spread of sizes including tiny ones.
        for n in [2usize, 3, 4, 5, 7, 16, 33, 100] {
            let expected: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();
            let got: Vec<(usize, usize)> =
                (0..n * (n - 1) / 2).map(|k| pair_from_flat(k, n)).collect();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn flat_round_trip_exhaustive_small_n() {
        for n in 2usize..=40 {
            for k in 0..n * (n - 1) / 2 {
                let (i, j) = pair_from_flat(k, n);
                assert!(i < j && j < n, "n={n} k={k} -> ({i},{j})");
                assert_eq!(flat_from_pair(i, j, n), k, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn small_n_gram_matches_materialized_pair_list() {
        // Pin the fast path against the original implementation, which
        // materialized the full pair list before the loop: entries must
        // be bitwise identical.
        let st = states(7, 4);
        let be = CpuBackend::new();
        let n = st.len();
        let k_new = gram_matrix(&st, &be).kernel;
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        for &(i, j) in &pairs {
            let v = st[i].inner_with(&be, &st[j]).norm_sqr();
            data[i * n + j] = v;
            data[j * n + i] = v;
        }
        assert_eq!(k_new.data(), data.as_slice(), "fast path diverged");
    }

    #[test]
    fn delegated_tile_yields_parallel_work() {
        // The delegated path must never collapse a moderate problem
        // into one serial tile on a multi-core host: with more than one
        // worker available, every delegated size plans several tiles.
        let workers = std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(1);
        for n in [TILED_THRESHOLD, 100, 240, 1_000, 64_000] {
            let tile = delegated_tile(n);
            assert!((16..=128).contains(&tile), "n={n} tile={tile}");
            let bands = n.div_ceil(tile);
            if workers > 1 {
                assert!(bands >= 2, "n={n} tile={tile} is one serial tile");
            }
        }
    }

    #[test]
    fn delegated_gram_matches_fast_path_bitwise() {
        // At TILED_THRESHOLD the engine takes over; its output must be
        // bitwise identical to the single-pass loop on the same states.
        let st = states(TILED_THRESHOLD, 3);
        let be = CpuBackend::new();
        let n = st.len();
        let timed = gram_matrix(&st, &be);
        assert_eq!(timed.inner_products, n * (n - 1) / 2);
        let mut reference = vec![0.0f64; n * n];
        for i in 0..n {
            reference[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let v = st[i].inner_with(&be, &st[j]).norm_sqr();
                reference[i * n + j] = v;
                reference[j * n + i] = v;
            }
        }
        assert_eq!(timed.kernel.data(), reference.as_slice());
    }

    #[test]
    fn empty_test_block_is_empty() {
        let train = states(3, 3);
        let be = CpuBackend::new();
        let timed = kernel_block(&[], &train, &be);
        assert_eq!(timed.block.rows(), 0);
        assert_eq!(timed.inner_products, 0);
    }

    #[test]
    fn block_matches_direct() {
        let train = states(4, 3);
        let test = states(2, 3);
        let be = CpuBackend::new();
        let timed = kernel_block(&test, &train, &be);
        assert_eq!(timed.block.rows(), 2);
        assert_eq!(timed.block.cols(), 4);
        assert_eq!(timed.inner_products, 8);
        for (t, test_state) in test.iter().enumerate() {
            for (s, train_state) in train.iter().enumerate() {
                let direct = test_state.overlap_sqr(train_state);
                assert!((timed.block.row(t)[s] - direct).abs() < 1e-10);
            }
        }
    }

    /// The observed wrappers must be pure observers: identical kernels
    /// bit for bit on both the small-N path and the delegated tiled
    /// path, with spans and counters landing in the caller's registry.
    #[test]
    fn observed_gram_is_bitwise_identical_on_both_paths() {
        let be = CpuBackend::new();
        for n in [7usize, TILED_THRESHOLD] {
            let st = states(n, 3);
            let plain = gram_matrix(&st, &be);
            let obs = Obs::new();
            let observed = gram_matrix_observed(&st, &be, &obs);
            assert_eq!(plain.kernel.data(), observed.kernel.data(), "n={n}");
            assert_eq!(plain.inner_products, observed.inner_products);
            let snap = obs.registry_snapshot();
            assert_eq!(
                snap.counters["core.gram_inner_products"],
                plain.inner_products as u64
            );
            let paths: Vec<String> = obs.span_rollup().into_iter().map(|e| e.path).collect();
            assert!(paths.contains(&"core_gram".to_string()), "{paths:?}");
            let child = if n >= TILED_THRESHOLD {
                "core_gram/tiled"
            } else {
                "core_gram/small_n"
            };
            assert!(paths.contains(&child.to_string()), "{paths:?}");
        }
    }

    #[test]
    fn observed_block_is_bitwise_identical() {
        let be = CpuBackend::new();
        let train = states(5, 3);
        let test = states(3, 3);
        let plain = kernel_block(&test, &train, &be);
        let obs = Obs::new();
        let observed = kernel_block_observed(&test, &train, &be, &obs);
        for r in 0..plain.block.rows() {
            assert_eq!(plain.block.row(r), observed.block.row(r), "row {r}");
        }
        assert_eq!(
            obs.registry_snapshot().counters["core.gram_inner_products"],
            plain.inner_products as u64
        );
    }

    #[test]
    fn delegated_block_matches_fast_path_bitwise() {
        // 64 * 64 entries trip the delegation threshold.
        let train = states(TILED_THRESHOLD, 3);
        let test = states(TILED_THRESHOLD, 3);
        let be = CpuBackend::new();
        let timed = kernel_block(&test, &train, &be);
        assert_eq!(timed.inner_products, TILED_THRESHOLD * TILED_THRESHOLD);
        for (t, test_state) in test.iter().enumerate() {
            for (s, train_state) in train.iter().enumerate() {
                let direct = test_state.inner_with(&be, train_state).norm_sqr();
                assert_eq!(
                    timed.block.row(t)[s].to_bits(),
                    direct.to_bits(),
                    "[{t}][{s}]"
                );
            }
        }
    }
}
