//! # qk-core
//!
//! The quantum kernel framework of the paper, assembled over the MPS
//! simulator, circuit ansatz, data pipeline and SVM substrates:
//!
//! * [`states`] — one MPS simulation per data point, fanned out in
//!   parallel (the linear-in-N half of the method).
//! * [`gram`] — Gram-matrix assembly from pairwise inner products (the
//!   quadratic-but-cheap half).
//! * [`distributed`] — the paper's two multi-process strategies
//!   (no-messaging and round-robin) with per-phase wall-clock accounting.
//! * [`pipeline`] — end-to-end classification experiments, quantum and
//!   Gaussian-baseline, with the `C in [0.01, 4]` sweep protocol.
//!
//! ## Quickstart
//!
//! ```
//! use qk_core::pipeline::{run_quantum_experiment, ExperimentConfig};
//! use qk_data::{generate, SyntheticConfig};
//! use qk_tensor::backend::CpuBackend;
//!
//! let data = generate(&SyntheticConfig::small(1));
//! let config = ExperimentConfig::qml(40, 5, 1);
//! let backend = CpuBackend::new();
//! let result = run_quantum_experiment(&data, &config, &backend);
//! assert!(result.best_test_auc() <= 1.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod distributed_inference;
pub mod distributed_mpi;
pub mod extrapolate;
pub mod gram;
pub mod inference;
pub mod pipeline;
pub mod projected;
pub mod states;
pub mod timing;
pub mod truncation_study;

pub use distributed::{distributed_gram, DistributedResult, ProcessTimes, Strategy};
pub use distributed_inference::{distributed_kernel_block, DistributedBlockResult};
pub use distributed_mpi::mpi_distributed_gram;
pub use extrapolate::{
    forecast_inference, forecast_training, processes_for_deadline, InferenceForecast,
    PrimitiveCosts, TrainingForecast,
};
pub use gram::{
    flat_from_pair, gram_matrix, gram_matrix_observed, kernel_block, kernel_block_observed,
    pair_from_flat, TimedBlock, TimedKernel, TILED_THRESHOLD,
};
pub use inference::{InferenceTiming, ModelDecodeError, Prediction, QuantumKernelModel};
pub use pipeline::{
    run_gaussian_experiment, run_gaussian_on_split, run_quantum_experiment, run_quantum_on_split,
    ExperimentConfig, ExperimentResult, PipelineTimings,
};
pub use projected::{projected_block, projected_feature_batch, projected_gram};
pub use states::{simulate_states, simulate_states_serial, StateBatch};
pub use timing::{thread_cpu_time, PhaseClock};
pub use truncation_study::{
    run_truncation_study, TruncationPoint, TruncationStudy, TruncationStudyConfig,
};
