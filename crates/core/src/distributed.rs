//! Distributed Gram-matrix computation (Section II-D, Fig. 4).
//!
//! The paper distributes the kernel computation over MPI ranks on
//! Perlmutter. Here each "process" is an OS thread that owns its states;
//! inter-process traffic is an explicit serialized message over a
//! crossbeam channel, timed as communication (DESIGN.md, substitution 2).
//! Two strategies are implemented:
//!
//! * **No-messaging** (Fig. 4a): the kernel matrix is tiled; each process
//!   independently simulates every state its tiles touch. No communication,
//!   but each circuit is simulated on O(sqrt(k)) processes.
//! * **Round-robin** (Fig. 4b): states are partitioned between processes;
//!   each circuit is simulated exactly once, and blocks of states travel
//!   around a ring so every pair tile is computed on exactly one process.
//!
//! Per-process wall-clock is split into the three phases the paper's
//! Fig. 8 reports: MPS simulation, inner products, and communication.

use crate::states::simulate_states_serial;
use crate::timing::PhaseClock;
use qk_circuit::AnsatzConfig;
use qk_mps::{Mps, TruncationConfig};
use qk_svm::KernelMatrix;
use qk_tensor::backend::ExecutionBackend;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Distribution strategy for the Gram matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Independent tiles, redundant simulation, zero messages (Fig. 4a).
    NoMessaging,
    /// Partitioned states with ring message passing (Fig. 4b).
    RoundRobin,
}

/// Phase breakdown for one simulated process.
///
/// Compute phases (simulation, inner products) are measured on the
/// thread's CPU clock when the platform exposes one, so that the numbers
/// reflect per-process *work* even when the simulated processes share
/// fewer physical cores than the paper's MPI ranks had; communication is
/// wall-clock, since blocking time is the quantity of interest.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ProcessTimes {
    /// Time spent simulating MPS states.
    pub simulation: Duration,
    /// Time spent contracting inner products.
    pub inner_products: Duration,
    /// Time spent serializing, sending and receiving states.
    pub communication: Duration,
}

impl ProcessTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.simulation + self.inner_products + self.communication
    }
}

/// Result of a distributed Gram computation.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// The assembled symmetric kernel matrix.
    pub kernel: KernelMatrix,
    /// Phase breakdown per process.
    pub per_process: Vec<ProcessTimes>,
    /// End-to-end wall time.
    pub wall_time: Duration,
    /// Total bytes shipped between processes (0 for no-messaging).
    pub bytes_communicated: usize,
    /// Total circuit simulations executed (counts redundant ones).
    pub simulations_run: usize,
}

impl DistributedResult {
    /// Maximum per-phase times across processes (the critical path the
    /// paper's stacked bars show).
    pub fn max_phase_times(&self) -> ProcessTimes {
        let mut out = ProcessTimes::default();
        for p in &self.per_process {
            out.simulation = out.simulation.max(p.simulation);
            out.inner_products = out.inner_products.max(p.inner_products);
            out.communication = out.communication.max(p.communication);
        }
        out
    }
}

/// Computes the training Gram matrix with the chosen strategy and number
/// of simulated processes.
pub fn distributed_gram(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    num_processes: usize,
    strategy: Strategy,
) -> DistributedResult {
    assert!(num_processes >= 1, "need at least one process");
    assert!(!rows.is_empty(), "need at least one data point");
    match strategy {
        Strategy::NoMessaging => no_messaging(rows, ansatz, backend, truncation, num_processes),
        Strategy::RoundRobin => round_robin(rows, ansatz, backend, truncation, num_processes),
    }
}

/// Contiguous block boundaries for partitioning `n` items over `k` owners.
pub(crate) fn block_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for p in 0..k {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One kernel entry produced by a worker.
pub(crate) type Entry = (usize, usize, f64);

// ---------------------------------------------------------------------
// No-messaging strategy
// ---------------------------------------------------------------------

fn no_messaging(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    k: usize,
) -> DistributedResult {
    let n = rows.len();
    let start = Instant::now();
    // Square tiling with at least k upper-triangle tiles (diagonal incl.).
    let g = tile_grid_order(k).min(n.max(1));
    let blocks = block_ranges(n, g);
    let tiles: Vec<(usize, usize)> = (0..g).flat_map(|a| (a..g).map(move |b| (a, b))).collect();
    // Tiles are dealt round-robin to processes.
    let assignments: Vec<Vec<(usize, usize)>> = (0..k)
        .map(|p| tiles.iter().copied().skip(p).step_by(k).collect())
        .collect();

    let (entry_tx, entry_rx) = crossbeam::channel::unbounded::<Vec<Entry>>();
    let mut per_process = vec![ProcessTimes::default(); k];
    let mut simulations_run = 0usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, my_tiles) in assignments.iter().enumerate() {
            let entry_tx = entry_tx.clone();
            let blocks = &blocks;
            handles.push((
                p,
                scope.spawn(move || {
                    let clock = PhaseClock::new();
                    let mut times = ProcessTimes::default();
                    let mut sims = 0usize;
                    let mut entries: Vec<Entry> = Vec::new();
                    // Simulate the union of blocks this process touches, once
                    // per process (still redundant across processes).
                    let mut needed: Vec<usize> =
                        my_tiles.iter().flat_map(|&(a, b)| [a, b]).collect();
                    needed.sort_unstable();
                    needed.dedup();
                    let mut states: Vec<Option<Vec<Mps>>> = vec![None; blocks.len()];
                    for &blk in &needed {
                        let slice = &rows[blocks[blk].clone()];
                        let t0 = clock.now();
                        let batch = simulate_states_serial(slice, ansatz, backend, truncation);
                        times.simulation += clock.since(t0);
                        sims += slice.len();
                        states[blk] = Some(batch.states);
                    }
                    for &(a, b) in my_tiles {
                        let sa = states[a].as_ref().unwrap();
                        let sb = states[b].as_ref().unwrap();
                        let t0 = clock.now();
                        for (ia, va) in sa.iter().enumerate() {
                            for (ib, vb) in sb.iter().enumerate() {
                                let gi = blocks[a].start + ia;
                                let gj = blocks[b].start + ib;
                                if a == b && gj <= gi {
                                    continue; // symmetric tile: upper half only
                                }
                                let v = va.inner_with(backend, vb).norm_sqr();
                                entries.push((gi, gj, v));
                            }
                        }
                        times.inner_products += clock.since(t0);
                    }
                    let t0 = Instant::now();
                    entry_tx.send(entries).expect("collector alive");
                    times.communication += t0.elapsed();
                    (times, sims)
                }),
            ));
        }
        drop(entry_tx);
        for (p, h) in handles {
            let (times, sims) = h.join().expect("worker panicked");
            per_process[p] = times;
            simulations_run += sims;
        }
    });

    let kernel = assemble(n, entry_rx.into_iter().flatten());
    DistributedResult {
        kernel,
        per_process,
        wall_time: start.elapsed(),
        bytes_communicated: 0,
        simulations_run,
    }
}

/// Smallest `g` with `g(g+1)/2 >= k` — the tile grid order giving every
/// process at least one tile.
pub(crate) fn tile_grid_order(k: usize) -> usize {
    let mut g = 1usize;
    while g * (g + 1) / 2 < k {
        g += 1;
    }
    g
}

// ---------------------------------------------------------------------
// Round-robin strategy
// ---------------------------------------------------------------------

/// Serializes a block of states with length framing.
pub(crate) fn pack_states(states: &[Mps]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(states.len() as u64).to_le_bytes());
    for s in states {
        let bytes = s.to_bytes();
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Inverse of [`pack_states`].
pub(crate) fn unpack_states(bytes: &[u8]) -> Vec<Mps> {
    let mut pos = 0usize;
    let count = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
    pos += 8;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        out.push(Mps::from_bytes(&bytes[pos..pos + len]));
        pos += len;
    }
    out
}

/// A traveling message: the owner block index plus serialized states.
struct RingMessage {
    owner: usize,
    payload: Vec<u8>,
}

fn round_robin(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    k: usize,
) -> DistributedResult {
    let n = rows.len();
    if k == 1 {
        // Degenerate ring: fall back to a single-process computation with
        // the same accounting.
        return no_messaging(rows, ansatz, backend, truncation, 1);
    }
    let start = Instant::now();
    let blocks = block_ranges(n, k);

    // Ring channels: process p sends to (p + k - 1) % k, receives on rx[p].
    let mut txs = Vec::with_capacity(k);
    let mut rxs = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = crossbeam::channel::bounded::<RingMessage>(1);
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let (entry_tx, entry_rx) = crossbeam::channel::unbounded::<Vec<Entry>>();

    // Number of full ring steps; for even k the final half-step is done by
    // the lower half of the ring only.
    let full_steps = (k - 1) / 2;
    let half_step = k.is_multiple_of(2);

    let mut per_process = vec![ProcessTimes::default(); k];
    let mut bytes_communicated = 0usize;
    let mut simulations_run = 0usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..k {
            let entry_tx = entry_tx.clone();
            let tx_left = txs[(p + k - 1) % k].clone();
            let rx = rxs[p].take().expect("rx taken once");
            let blocks = &blocks;
            handles.push(scope.spawn(move || {
                let clock = PhaseClock::new();
                let mut times = ProcessTimes::default();
                let mut entries: Vec<Entry> = Vec::new();
                let my_range = blocks[p].clone();
                let slice = &rows[my_range.clone()];

                // Phase 1: simulate own block exactly once.
                let t0 = clock.now();
                let own = simulate_states_serial(slice, ansatz, backend, truncation).states;
                times.simulation += clock.since(t0);
                let sims = slice.len();

                // Phase 2: local tile (p, p), upper half.
                let t0 = clock.now();
                for i in 0..own.len() {
                    for j in (i + 1)..own.len() {
                        let v = own[i].inner_with(backend, &own[j]).norm_sqr();
                        entries.push((my_range.start + i, my_range.start + j, v));
                    }
                }
                times.inner_products += clock.since(t0);

                // Phase 3: ring steps. The traveling block starts as a
                // copy of the owned block.
                let mut traveling_owner = p;
                let mut traveling = own.clone();
                let mut comm_bytes = 0usize;
                let steps = full_steps + usize::from(half_step);
                for step in 1..=steps {
                    // Ship the traveling block to the left neighbour and
                    // receive the block arriving from the right.
                    let t0 = Instant::now();
                    let payload = pack_states(&traveling);
                    comm_bytes += payload.len();
                    tx_left
                        .send(RingMessage {
                            owner: traveling_owner,
                            payload,
                        })
                        .expect("ring neighbour alive");
                    let msg = rx.recv().expect("ring neighbour alive");
                    traveling_owner = msg.owner;
                    traveling = unpack_states(&msg.payload);
                    times.communication += t0.elapsed();
                    debug_assert_eq!(traveling_owner, (p + step) % k);

                    // On the optional half-step only the lower half of the
                    // ring computes, so each cross tile is done once.
                    let is_half = half_step && step == steps;
                    if is_half && p >= k / 2 {
                        continue;
                    }
                    let other_range = blocks[traveling_owner].clone();
                    let t0 = clock.now();
                    for (i, a) in own.iter().enumerate() {
                        for (j, b) in traveling.iter().enumerate() {
                            let v = a.inner_with(backend, b).norm_sqr();
                            entries.push((my_range.start + i, other_range.start + j, v));
                        }
                    }
                    times.inner_products += clock.since(t0);
                }

                // Phase 4: send entries to the collector.
                let t0 = Instant::now();
                entry_tx.send(entries).expect("collector alive");
                times.communication += t0.elapsed();
                (times, comm_bytes, sims)
            }));
        }
        drop(entry_tx);
        drop(txs);
        for (p, h) in handles.into_iter().enumerate() {
            let (times, bytes, sims) = h.join().expect("worker panicked");
            per_process[p] = times;
            bytes_communicated += bytes;
            simulations_run += sims;
        }
    });

    let kernel = assemble(n, entry_rx.into_iter().flatten());
    DistributedResult {
        kernel,
        per_process,
        wall_time: start.elapsed(),
        bytes_communicated,
        simulations_run,
    }
}

/// Builds the symmetric kernel from a stream of upper-triangle entries.
pub(crate) fn assemble(n: usize, entries: impl Iterator<Item = Entry>) -> KernelMatrix {
    let mut data = vec![0.0f64; n * n];
    let mut seen = vec![false; n * n];
    for i in 0..n {
        data[i * n + i] = 1.0;
        seen[i * n + i] = true;
    }
    for (i, j, v) in entries {
        debug_assert!(!seen[i * n + j], "entry ({i},{j}) computed twice");
        data[i * n + j] = v;
        data[j * n + i] = v;
        seen[i * n + j] = true;
        seen[j * n + i] = true;
    }
    debug_assert!(seen.iter().all(|&s| s), "kernel has uncomputed entries");
    KernelMatrix::from_dense(n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::gram_matrix;
    use crate::states::simulate_states;
    use qk_tensor::backend::CpuBackend;

    fn rows(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..m).map(|j| ((i * m + j) % 11) as f64 * 0.18).collect())
            .collect()
    }

    fn reference_kernel(data: &[Vec<f64>]) -> KernelMatrix {
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.6);
        let batch = simulate_states(data, &cfg, &be, &TruncationConfig::default());
        gram_matrix(&batch.states, &be).kernel
    }

    fn check_strategy(n: usize, k: usize, strategy: Strategy) {
        let data = rows(n, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.6);
        let result = distributed_gram(&data, &cfg, &be, &TruncationConfig::default(), k, strategy);
        let reference = reference_kernel(&data);
        assert_eq!(result.kernel.len(), n);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (result.kernel.get(i, j) - reference.get(i, j)).abs() < 1e-9,
                    "{strategy:?} k={k}: K[{i}][{j}] {} vs {}",
                    result.kernel.get(i, j),
                    reference.get(i, j)
                );
            }
        }
        assert_eq!(result.per_process.len(), k);
    }

    #[test]
    fn no_messaging_matches_reference() {
        for k in [1usize, 2, 3, 4, 7] {
            check_strategy(9, k, Strategy::NoMessaging);
        }
    }

    #[test]
    fn round_robin_matches_reference_odd_ring() {
        for k in [3usize, 5] {
            check_strategy(10, k, Strategy::RoundRobin);
        }
    }

    #[test]
    fn round_robin_matches_reference_even_ring() {
        for k in [2usize, 4, 6] {
            check_strategy(12, k, Strategy::RoundRobin);
        }
    }

    #[test]
    fn round_robin_with_ragged_blocks() {
        // n not divisible by k.
        check_strategy(11, 4, Strategy::RoundRobin);
        check_strategy(7, 3, Strategy::RoundRobin);
    }

    #[test]
    fn round_robin_simulates_each_circuit_once() {
        let data = rows(12, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.6);
        let result = distributed_gram(
            &data,
            &cfg,
            &be,
            &TruncationConfig::default(),
            4,
            Strategy::RoundRobin,
        );
        assert_eq!(result.simulations_run, 12);
        assert!(result.bytes_communicated > 0);
    }

    #[test]
    fn no_messaging_duplicates_simulations() {
        let data = rows(12, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.6);
        let result = distributed_gram(
            &data,
            &cfg,
            &be,
            &TruncationConfig::default(),
            6,
            Strategy::NoMessaging,
        );
        assert!(
            result.simulations_run > 12,
            "expected redundant simulations, got {}",
            result.simulations_run
        );
        assert_eq!(result.bytes_communicated, 0);
    }

    #[test]
    fn block_ranges_cover_everything() {
        for (n, k) in [(10usize, 3usize), (7, 7), (5, 2), (9, 4)] {
            let blocks = block_ranges(n, k);
            assert_eq!(blocks.len(), k);
            let total: usize = blocks.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            for w in blocks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn tile_grid_order_bounds() {
        assert_eq!(tile_grid_order(1), 1);
        assert_eq!(tile_grid_order(3), 2);
        assert_eq!(tile_grid_order(4), 3);
        assert_eq!(tile_grid_order(6), 3);
        assert_eq!(tile_grid_order(7), 4);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let data = rows(3, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.6);
        let states = simulate_states(&data, &cfg, &be, &TruncationConfig::default()).states;
        let packed = pack_states(&states);
        let back = unpack_states(&packed);
        assert_eq!(back.len(), 3);
        for (a, b) in states.iter().zip(&back) {
            assert!((a.overlap_sqr(b) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_times_populated() {
        // Use enough work per process that even a tick-granular thread
        // CPU clock registers the compute phases.
        let data = rows(24, 8);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 2, 1.0);
        let result = distributed_gram(
            &data,
            &cfg,
            &be,
            &TruncationConfig::default(),
            4,
            Strategy::RoundRobin,
        );
        let max = result.max_phase_times();
        assert!(max.simulation > Duration::ZERO);
        assert!(max.inner_products + max.simulation > Duration::ZERO);
        // CPU-time phases cannot exceed the work actually done; sanity
        // bound: no phase total wildly exceeds the whole run's wall time
        // times the process count.
        let bound =
            result.wall_time * (result.per_process.len() as u32 + 1) + Duration::from_millis(50);
        for p in &result.per_process {
            assert!(p.total() <= bound);
        }
    }
}
