//! End-to-end experiment pipeline: data -> states -> kernels -> SVM ->
//! metrics. This is what every QML harness (Figs. 9-10, Tables II-III)
//! drives.

use crate::gram::{gram_matrix, kernel_block};
use crate::states::simulate_states;
use qk_circuit::AnsatzConfig;
use qk_data::{prepare_experiment, Dataset, Split};
use qk_mps::TruncationConfig;
use qk_svm::{gaussian_block, gaussian_gram, scale_bandwidth, sweep_c, SweepResult};
use qk_tensor::backend::ExecutionBackend;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one classification experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Feature-map hyperparameters (`r`, `d`, `gamma`).
    pub ansatz: AnsatzConfig,
    /// Total balanced sample count (train + test).
    pub samples: usize,
    /// Number of features (= qubits).
    pub features: usize,
    /// Seed controlling subsampling and splitting.
    pub seed: u64,
    /// Regularization grid.
    pub c_grid: Vec<f64>,
    /// SVM tolerance (the paper uses 1e-3).
    pub tol: f64,
    /// MPS truncation policy.
    pub truncation: TruncationConfig,
}

impl ExperimentConfig {
    /// The paper's QML configuration (`r = 2`, `d = 1`, `gamma = 0.1`)
    /// at the given scale.
    pub fn qml(samples: usize, features: usize, seed: u64) -> Self {
        ExperimentConfig {
            ansatz: AnsatzConfig::qml_default(),
            samples,
            features,
            seed,
            c_grid: qk_svm::default_c_grid(),
            tol: 1e-3,
            truncation: TruncationConfig::default(),
        }
    }
}

/// Timing breakdown of a quantum-kernel experiment.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PipelineTimings {
    /// Wall time simulating all train+test states.
    pub simulation: Duration,
    /// Wall time for the training Gram matrix.
    pub train_kernel: Duration,
    /// Wall time for the test kernel block.
    pub test_kernel: Duration,
}

/// Output of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Metrics for every `C` on the grid.
    pub sweep: SweepResult,
    /// Timing breakdown (zero for the classical baseline's simulation).
    pub timings: PipelineTimings,
    /// Mean largest bond dimension over all simulated states.
    pub mean_max_bond: f64,
    /// Mean per-MPS memory in bytes.
    pub mean_memory_bytes: f64,
}

impl ExperimentResult {
    /// Best test AUC over the sweep.
    pub fn best_test_auc(&self) -> f64 {
        self.sweep.best_by_test_auc().test.auc
    }

    /// Best train AUC over the sweep (Fig. 9's quantity).
    pub fn best_train_auc(&self) -> f64 {
        self.sweep
            .points
            .iter()
            .map(|p| p.train.auc)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Runs the full quantum-kernel experiment on a prepared split.
pub fn run_quantum_on_split(
    split: &Split,
    config: &ExperimentConfig,
    backend: &dyn ExecutionBackend,
) -> ExperimentResult {
    let train_batch = simulate_states(
        &split.train.features,
        &config.ansatz,
        backend,
        &config.truncation,
    );
    let test_batch = simulate_states(
        &split.test.features,
        &config.ansatz,
        backend,
        &config.truncation,
    );

    let train_timed = gram_matrix(&train_batch.states, backend);
    let test_timed = kernel_block(&test_batch.states, &train_batch.states, backend);

    let sweep = sweep_c(
        &train_timed.kernel,
        &split.train.label_signs(),
        &test_timed.block,
        &split.test.label_signs(),
        &config.c_grid,
        config.tol,
    );

    let all_states = train_batch.states.len() + test_batch.states.len();
    let mean_max_bond = (train_batch.states.iter().chain(&test_batch.states))
        .map(|s| s.max_bond() as f64)
        .sum::<f64>()
        / all_states as f64;
    let mean_memory_bytes = (train_batch.states.iter().chain(&test_batch.states))
        .map(|s| s.memory_bytes() as f64)
        .sum::<f64>()
        / all_states as f64;

    ExperimentResult {
        sweep,
        timings: PipelineTimings {
            simulation: train_batch.wall_time + test_batch.wall_time,
            train_kernel: train_timed.wall_time,
            test_kernel: test_timed.wall_time,
        },
        mean_max_bond,
        mean_memory_bytes,
    }
}

/// Prepares the split from a raw dataset and runs the quantum experiment.
pub fn run_quantum_experiment(
    data: &Dataset,
    config: &ExperimentConfig,
    backend: &dyn ExecutionBackend,
) -> ExperimentResult {
    let split = prepare_experiment(data, config.samples, config.features, config.seed);
    run_quantum_on_split(&split, config, backend)
}

/// Runs the classical Gaussian-kernel baseline (eq. 9) on a prepared
/// split, with the same sweep protocol.
pub fn run_gaussian_on_split(split: &Split, c_grid: &[f64], tol: f64) -> ExperimentResult {
    let alpha = scale_bandwidth(&split.train.features);
    let t0 = std::time::Instant::now();
    let train_kernel = gaussian_gram(&split.train.features, alpha);
    let train_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let test_kernel = gaussian_block(&split.test.features, &split.train.features, alpha);
    let test_time = t0.elapsed();

    let sweep = sweep_c(
        &train_kernel,
        &split.train.label_signs(),
        &test_kernel,
        &split.test.label_signs(),
        c_grid,
        tol,
    );
    ExperimentResult {
        sweep,
        timings: PipelineTimings {
            simulation: Duration::ZERO,
            train_kernel: train_time,
            test_kernel: test_time,
        },
        mean_max_bond: 0.0,
        mean_memory_bytes: 0.0,
    }
}

/// Prepares a split and runs the Gaussian baseline.
pub fn run_gaussian_experiment(
    data: &Dataset,
    samples: usize,
    features: usize,
    seed: u64,
    c_grid: &[f64],
    tol: f64,
) -> ExperimentResult {
    let split = prepare_experiment(data, samples, features, seed);
    run_gaussian_on_split(&split, c_grid, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_data::{generate, SyntheticConfig};
    use qk_tensor::backend::CpuBackend;

    #[test]
    fn quantum_experiment_runs_end_to_end() {
        let data = generate(&SyntheticConfig::small(5));
        let config = ExperimentConfig {
            c_grid: vec![0.5, 2.0],
            ..ExperimentConfig::qml(60, 6, 5)
        };
        let be = CpuBackend::new();
        let result = run_quantum_experiment(&data, &config, &be);
        assert_eq!(result.sweep.points.len(), 2);
        let auc = result.best_test_auc();
        assert!((0.0..=1.0).contains(&auc));
        assert!(result.mean_max_bond >= 1.0);
        assert!(result.timings.simulation > Duration::ZERO);
    }

    #[test]
    fn gaussian_baseline_runs() {
        let data = generate(&SyntheticConfig::small(6));
        let result = run_gaussian_experiment(&data, 80, 8, 6, &[0.5, 2.0], 1e-3);
        assert_eq!(result.sweep.points.len(), 2);
        // The synthetic task is learnable: better than chance.
        assert!(
            result.best_test_auc() > 0.5,
            "auc {}",
            result.best_test_auc()
        );
    }

    #[test]
    fn quantum_beats_chance_on_easy_task() {
        // A large enough test split to make AUC stable, moderate noise.
        let data = generate(&SyntheticConfig {
            noise: 1.0,
            num_features: 12,
            num_illicit: 150,
            num_licit: 350,
            ..SyntheticConfig::small(7)
        });
        let config = ExperimentConfig {
            ansatz: AnsatzConfig::new(2, 1, 0.3),
            c_grid: vec![1.0, 4.0],
            ..ExperimentConfig::qml(240, 10, 7)
        };
        let be = CpuBackend::new();
        let result = run_quantum_experiment(&data, &config, &be);
        assert!(
            result.best_test_auc() > 0.65,
            "quantum AUC {} not above chance",
            result.best_test_auc()
        );
    }

    #[test]
    fn seed_reproducibility() {
        let data = generate(&SyntheticConfig::small(8));
        let config = ExperimentConfig {
            c_grid: vec![1.0],
            ..ExperimentConfig::qml(40, 5, 8)
        };
        let be = CpuBackend::new();
        let a = run_quantum_experiment(&data, &config, &be);
        let b = run_quantum_experiment(&data, &config, &be);
        assert_eq!(a.best_test_auc(), b.best_test_auc());
    }

    #[test]
    fn different_seeds_draw_different_subsamples() {
        let data = generate(&SyntheticConfig::small(9));
        let be = CpuBackend::new();
        let run = |seed: u64| {
            let config = ExperimentConfig {
                c_grid: vec![1.0],
                ..ExperimentConfig::qml(40, 5, seed)
            };
            run_quantum_experiment(&data, &config, &be).best_test_auc()
        };
        // Not a strict requirement of the API, but with 40-row draws from
        // a 200-row pool two seeds virtually never tie exactly; a tie
        // would indicate the seed is being ignored.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn gaussian_timings_skip_simulation_phase() {
        let data = generate(&SyntheticConfig::small(12));
        let result = run_gaussian_experiment(&data, 40, 6, 12, &[1.0], 1e-3);
        assert_eq!(result.timings.simulation, Duration::ZERO);
        assert_eq!(result.mean_max_bond, 0.0);
    }

    #[test]
    fn c_grid_order_is_preserved_in_sweep() {
        let data = generate(&SyntheticConfig::small(13));
        let config = ExperimentConfig {
            c_grid: vec![4.0, 0.01, 1.0],
            ..ExperimentConfig::qml(40, 5, 13)
        };
        let be = CpuBackend::new();
        let result = run_quantum_experiment(&data, &config, &be);
        let cs: Vec<f64> = result.sweep.points.iter().map(|p| p.c).collect();
        assert_eq!(cs, vec![4.0, 0.01, 1.0]);
    }

    #[test]
    fn backends_produce_identical_sweeps() {
        use qk_tensor::backend::{AcceleratorBackend, DeviceModel};
        let data = generate(&SyntheticConfig::small(14));
        let config = ExperimentConfig {
            c_grid: vec![1.0],
            ..ExperimentConfig::qml(30, 5, 14)
        };
        let cpu = run_quantum_experiment(&data, &config, &CpuBackend::new());
        let acc = run_quantum_experiment(
            &data,
            &config,
            &AcceleratorBackend::new(DeviceModel::ideal()),
        );
        assert!((cpu.best_test_auc() - acc.best_test_auc()).abs() < 1e-12);
        // Table I's consistency check at pipeline level: same algorithm,
        // same bond dimensions.
        assert_eq!(cpu.mean_max_bond, acc.mean_max_bond);
    }
}
