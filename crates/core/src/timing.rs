//! Per-thread CPU-time measurement for the distribution strategies.
//!
//! The paper's Fig. 8 timings come from MPI ranks that each own physical
//! cores. Our simulated processes are threads that may share cores, so
//! phase times measured on the wall clock would conflate a process's own
//! work with time spent descheduled. [`PhaseClock`] therefore measures
//! the calling thread's *CPU time* where the platform exposes it (Linux
//! `/proc/thread-self/schedstat`, nanosecond resolution) and falls back
//! to wall-clock elsewhere. On a host with one core per process the two
//! coincide.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A per-thread phase clock: thread CPU time when available, wall time
/// otherwise. Construct one per thread; instants from different threads
/// must not be mixed.
pub struct PhaseClock {
    cpu_clock: bool,
    epoch: Instant,
}

/// An opaque instant from a [`PhaseClock`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseInstant(Duration);

impl PhaseClock {
    /// Creates a clock for the calling thread.
    pub fn new() -> Self {
        PhaseClock {
            cpu_clock: schedstat_is_healthy(),
            epoch: Instant::now(),
        }
    }

    /// `true` when measuring thread CPU time rather than wall time.
    pub fn is_cpu_clock(&self) -> bool {
        self.cpu_clock
    }

    /// Current reading.
    pub fn now(&self) -> PhaseInstant {
        if self.cpu_clock {
            // The kernel credits a thread's run time at scheduler events
            // (ticks and switches), so a mid-slice read lags by up to a
            // full tick (~4 ms at HZ=250) and a sub-tick phase would
            // read as zero. A voluntary yield forces the credit, making
            // the counter exact at the cost of one reschedule (~µs).
            std::thread::yield_now();
            if let Some(t) = thread_cpu_time() {
                return PhaseInstant(t);
            }
        }
        PhaseInstant(self.epoch.elapsed())
    }

    /// Time elapsed since an earlier reading (saturating).
    pub fn since(&self, earlier: PhaseInstant) -> Duration {
        self.now().0.saturating_sub(earlier.0)
    }
}

impl Default for PhaseClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads the calling thread's on-CPU time from the Linux scheduler stats;
/// `None` on other platforms or locked-down kernels.
pub fn thread_cpu_time() -> Option<Duration> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let ns: u64 = text.split_whitespace().next()?.parse().ok()?;
    Some(Duration::from_nanos(ns))
}

/// Whether the kernel's scheduler run-time accounting actually advances.
///
/// Some kernels expose `/proc/thread-self/schedstat` but with run-time
/// accounting compiled out or disabled, so the on-CPU field reads zero
/// forever; trusting it would silently measure every phase as zero. A
/// freshly spawned thread also legitimately reads zero until its first
/// scheduler tick, so the counter cannot be judged from a single
/// instantaneous read at construction time. Instead the first caller
/// burns CPU until the counter moves or a small wall budget (well past a
/// scheduler tick) expires, and the process-wide verdict is cached.
fn schedstat_is_healthy() -> bool {
    static HEALTHY: OnceLock<bool> = OnceLock::new();
    *HEALTHY.get_or_init(|| {
        if thread_cpu_time().is_none() {
            return false;
        }
        let deadline = Instant::now() + Duration::from_millis(20);
        let mut acc = 0u64;
        loop {
            // Spin-work so the probing thread keeps accumulating runtime.
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            match thread_cpu_time() {
                Some(t) if t > Duration::ZERO => return true,
                Some(_) if Instant::now() < deadline => continue,
                _ => return false,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = PhaseClock::new();
        let a = clock.now();
        // Do a little work.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let elapsed = clock.since(a);
        let again = clock.since(a);
        assert!(again >= elapsed);
    }

    #[test]
    fn cpu_clock_counts_work_not_sleep() {
        let clock = PhaseClock::new();
        if !clock.is_cpu_clock() {
            return; // platform without schedstat: nothing to verify
        }
        let start = clock.now();
        std::thread::sleep(Duration::from_millis(60));
        let busy = clock.since(start);
        // Sleeping must contribute (almost) nothing to CPU time.
        assert!(
            busy < Duration::from_millis(30),
            "sleep charged to CPU clock: {busy:?}"
        );
    }

    #[test]
    fn cpu_clock_advances_under_load() {
        let clock = PhaseClock::new();
        let start = clock.now();
        let mut acc = 1.0f64;
        for i in 1..4_000_000u64 {
            acc += 1.0 / i as f64;
        }
        std::hint::black_box(acc);
        assert!(clock.since(start) > Duration::ZERO);
    }

    #[test]
    fn per_thread_isolation() {
        // CPU burned on another thread must not appear on this clock.
        let clock = PhaseClock::new();
        if !clock.is_cpu_clock() {
            return;
        }
        let start = clock.now();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut acc = 0u64;
                for i in 0..3_000_000u64 {
                    acc = acc.wrapping_add(i);
                }
                std::hint::black_box(acc);
            });
        });
        let charged = clock.since(start);
        assert!(
            charged < Duration::from_millis(50),
            "other thread's work charged here: {charged:?}"
        );
    }
}
