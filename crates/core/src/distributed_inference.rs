//! Distributed computation of the rectangular inference kernel
//! (Section II-D's closing paragraphs).
//!
//! After training, classifying unlabeled data needs the rectangular
//! block `K[t][s] = |⟨ψ(x_test_t)|ψ(x_train_s)⟩|²`. The paper notes the
//! kernel matrices for inference are rectangular and that round-robin
//! then needs extra care: tiles in the same column need the same subset
//! of states, which the paper resolves with an additional round of
//! message passing between process groups. This module implements the
//! same two strategies as the training Gram matrix, adapted to the
//! rectangular case:
//!
//! * **No-messaging**: the rectangle is tiled on a grid; every process
//!   independently simulates the train and test blocks its tiles touch.
//! * **Round-robin**: train states are partitioned between processes and
//!   simulated exactly once; the (smaller) test blocks travel around the
//!   ring, so after `k` steps every (test block, train block) tile has
//!   been computed on exactly one process. Circulating the test side
//!   keeps messages small, which is the paper's motivation for grouping
//!   processes by the short matrix dimension.

use crate::distributed::{ProcessTimes, Strategy};
use crate::states::simulate_states_serial;
use crate::timing::PhaseClock;
use qk_circuit::AnsatzConfig;
use qk_mps::{Mps, TruncationConfig};
use qk_svm::KernelBlock;
use qk_tensor::backend::ExecutionBackend;
use std::time::{Duration, Instant};

// Reuse the training-side helpers (crate-private).
use crate::distributed::{block_ranges, pack_states, tile_grid_order, unpack_states};

/// Result of a distributed inference-block computation.
#[derive(Debug, Clone)]
pub struct DistributedBlockResult {
    /// The assembled rectangular kernel: rows = test, columns = train.
    pub block: KernelBlock,
    /// Phase breakdown per process.
    pub per_process: Vec<ProcessTimes>,
    /// End-to-end wall time.
    pub wall_time: Duration,
    /// Total bytes shipped between processes (0 for no-messaging).
    pub bytes_communicated: usize,
    /// Total circuit simulations executed (counts redundant ones).
    pub simulations_run: usize,
}

/// Computes the inference kernel block with the chosen strategy and
/// number of simulated processes.
///
/// # Panics
/// Panics if either row set is empty or `num_processes == 0`.
pub fn distributed_kernel_block(
    test_rows: &[Vec<f64>],
    train_rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    num_processes: usize,
    strategy: Strategy,
) -> DistributedBlockResult {
    assert!(num_processes >= 1, "need at least one process");
    assert!(!train_rows.is_empty(), "need at least one training point");
    assert!(!test_rows.is_empty(), "need at least one test point");
    match strategy {
        Strategy::NoMessaging => no_messaging_block(
            test_rows,
            train_rows,
            ansatz,
            backend,
            truncation,
            num_processes,
        ),
        Strategy::RoundRobin => round_robin_block(
            test_rows,
            train_rows,
            ansatz,
            backend,
            truncation,
            num_processes,
        ),
    }
}

type Entry = (usize, usize, f64);

fn assemble_block(rows: usize, cols: usize, entries: impl Iterator<Item = Entry>) -> KernelBlock {
    let mut data = vec![0.0f64; rows * cols];
    let mut seen = vec![false; rows * cols];
    for (i, j, v) in entries {
        debug_assert!(!seen[i * cols + j], "entry ({i},{j}) computed twice");
        data[i * cols + j] = v;
        seen[i * cols + j] = true;
    }
    debug_assert!(seen.iter().all(|&s| s), "block has uncomputed entries");
    KernelBlock::from_dense(rows, cols, data)
}

fn no_messaging_block(
    test_rows: &[Vec<f64>],
    train_rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    k: usize,
) -> DistributedBlockResult {
    let (nt, ns) = (test_rows.len(), train_rows.len());
    let start = Instant::now();
    // A g x g tile grid over (test, train) with at least k tiles; dealt
    // round-robin to the processes, as in the training Gram case.
    let g = tile_grid_order(k).min(nt.min(ns).max(1));
    let test_blocks = block_ranges(nt, g);
    let train_blocks = block_ranges(ns, g);
    let tiles: Vec<(usize, usize)> = (0..g).flat_map(|a| (0..g).map(move |b| (a, b))).collect();
    let assignments: Vec<Vec<(usize, usize)>> = (0..k)
        .map(|p| tiles.iter().copied().skip(p).step_by(k).collect())
        .collect();

    let (entry_tx, entry_rx) = crossbeam::channel::unbounded::<Vec<Entry>>();
    let mut per_process = vec![ProcessTimes::default(); k];
    let mut simulations_run = 0usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, my_tiles) in assignments.iter().enumerate() {
            let entry_tx = entry_tx.clone();
            let test_blocks = &test_blocks;
            let train_blocks = &train_blocks;
            handles.push((
                p,
                scope.spawn(move || {
                    let clock = PhaseClock::new();
                    let mut times = ProcessTimes::default();
                    let mut sims = 0usize;
                    let mut entries: Vec<Entry> = Vec::new();

                    // Simulate every test/train block this process touches.
                    let mut test_states: Vec<Option<Vec<Mps>>> = vec![None; test_blocks.len()];
                    let mut train_states: Vec<Option<Vec<Mps>>> = vec![None; train_blocks.len()];
                    for &(a, b) in my_tiles {
                        if test_states[a].is_none() {
                            let slice = &test_rows[test_blocks[a].clone()];
                            let t0 = clock.now();
                            let batch = simulate_states_serial(slice, ansatz, backend, truncation);
                            times.simulation += clock.since(t0);
                            sims += slice.len();
                            test_states[a] = Some(batch.states);
                        }
                        if train_states[b].is_none() {
                            let slice = &train_rows[train_blocks[b].clone()];
                            let t0 = clock.now();
                            let batch = simulate_states_serial(slice, ansatz, backend, truncation);
                            times.simulation += clock.since(t0);
                            sims += slice.len();
                            train_states[b] = Some(batch.states);
                        }
                        let sa = test_states[a].as_ref().unwrap();
                        let sb = train_states[b].as_ref().unwrap();
                        let t0 = clock.now();
                        for (ia, va) in sa.iter().enumerate() {
                            for (ib, vb) in sb.iter().enumerate() {
                                let gi = test_blocks[a].start + ia;
                                let gj = train_blocks[b].start + ib;
                                let v = va.inner_with(backend, vb).norm_sqr();
                                entries.push((gi, gj, v));
                            }
                        }
                        times.inner_products += clock.since(t0);
                    }
                    let t0 = Instant::now();
                    entry_tx.send(entries).expect("collector alive");
                    times.communication += t0.elapsed();
                    (times, sims)
                }),
            ));
        }
        drop(entry_tx);
        for (p, h) in handles {
            let (times, sims) = h.join().expect("worker panicked");
            per_process[p] = times;
            simulations_run += sims;
        }
    });

    DistributedBlockResult {
        block: assemble_block(nt, ns, entry_rx.into_iter().flatten()),
        per_process,
        wall_time: start.elapsed(),
        bytes_communicated: 0,
        simulations_run,
    }
}

/// A traveling message: the owner block index plus serialized states.
struct RingMessage {
    owner: usize,
    payload: Vec<u8>,
}

fn round_robin_block(
    test_rows: &[Vec<f64>],
    train_rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    k: usize,
) -> DistributedBlockResult {
    let (nt, ns) = (test_rows.len(), train_rows.len());
    if k == 1 {
        return no_messaging_block(test_rows, train_rows, ansatz, backend, truncation, 1);
    }
    let start = Instant::now();
    let test_blocks = block_ranges(nt, k);
    let train_blocks = block_ranges(ns, k);

    let mut txs = Vec::with_capacity(k);
    let mut rxs = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = crossbeam::channel::bounded::<RingMessage>(1);
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let (entry_tx, entry_rx) = crossbeam::channel::unbounded::<Vec<Entry>>();

    let mut per_process = vec![ProcessTimes::default(); k];
    let mut bytes_communicated = 0usize;
    let mut simulations_run = 0usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..k {
            let entry_tx = entry_tx.clone();
            let tx_left = txs[(p + k - 1) % k].clone();
            let rx = rxs[p].take().expect("rx taken once");
            let test_blocks = &test_blocks;
            let train_blocks = &train_blocks;
            handles.push(scope.spawn(move || {
                let clock = PhaseClock::new();
                let mut times = ProcessTimes::default();
                let mut entries: Vec<Entry> = Vec::new();
                let my_train = train_blocks[p].clone();
                let my_test = test_blocks[p].clone();

                // Phase 1: simulate the owned train and test partitions,
                // each exactly once across the whole ring.
                let t0 = clock.now();
                let own_train = simulate_states_serial(
                    &train_rows[my_train.clone()],
                    ansatz,
                    backend,
                    truncation,
                )
                .states;
                let own_test = simulate_states_serial(
                    &test_rows[my_test.clone()],
                    ansatz,
                    backend,
                    truncation,
                )
                .states;
                times.simulation += clock.since(t0);
                let sims = my_train.len() + my_test.len();

                // Phase 2: local tile (own test x own train).
                let t0 = clock.now();
                for (i, a) in own_test.iter().enumerate() {
                    for (j, b) in own_train.iter().enumerate() {
                        let v = a.inner_with(backend, b).norm_sqr();
                        entries.push((my_test.start + i, my_train.start + j, v));
                    }
                }
                times.inner_products += clock.since(t0);

                // Phase 3: circulate the test block around the full ring.
                // Rectangular tiles have no symmetry to exploit, so all
                // k - 1 steps run on every process.
                let mut traveling_owner = p;
                let mut traveling = own_test.clone();
                let mut comm_bytes = 0usize;
                for step in 1..k {
                    let t0 = Instant::now();
                    let payload = pack_states(&traveling);
                    comm_bytes += payload.len();
                    tx_left
                        .send(RingMessage {
                            owner: traveling_owner,
                            payload,
                        })
                        .expect("ring neighbour alive");
                    let msg = rx.recv().expect("ring neighbour alive");
                    traveling_owner = msg.owner;
                    traveling = unpack_states(&msg.payload);
                    times.communication += t0.elapsed();
                    debug_assert_eq!(traveling_owner, (p + step) % k);

                    let other_test = test_blocks[traveling_owner].clone();
                    let t0 = clock.now();
                    for (i, a) in traveling.iter().enumerate() {
                        for (j, b) in own_train.iter().enumerate() {
                            let v = a.inner_with(backend, b).norm_sqr();
                            entries.push((other_test.start + i, my_train.start + j, v));
                        }
                    }
                    times.inner_products += clock.since(t0);
                }

                let t0 = Instant::now();
                entry_tx.send(entries).expect("collector alive");
                times.communication += t0.elapsed();
                (times, comm_bytes, sims)
            }));
        }
        drop(entry_tx);
        drop(txs);
        for (p, h) in handles.into_iter().enumerate() {
            let (times, bytes, sims) = h.join().expect("worker panicked");
            per_process[p] = times;
            bytes_communicated += bytes;
            simulations_run += sims;
        }
    });

    DistributedBlockResult {
        block: assemble_block(nt, ns, entry_rx.into_iter().flatten()),
        per_process,
        wall_time: start.elapsed(),
        bytes_communicated,
        simulations_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::kernel_block;
    use crate::states::simulate_states;
    use qk_tensor::backend::CpuBackend;

    fn rows(n: usize, m: usize, offset: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| ((i * m + j) % 7) as f64 * 0.27 + offset)
                    .collect()
            })
            .collect()
    }

    fn reference(test: &[Vec<f64>], train: &[Vec<f64>]) -> KernelBlock {
        let be = CpuBackend::new();
        let ansatz = AnsatzConfig::new(2, 1, 0.6);
        let trunc = TruncationConfig::default();
        let t = simulate_states(test, &ansatz, &be, &trunc);
        let s = simulate_states(train, &ansatz, &be, &trunc);
        kernel_block(&t.states, &s.states, &be).block
    }

    fn check_matches(
        test: &[Vec<f64>],
        train: &[Vec<f64>],
        k: usize,
        strategy: Strategy,
    ) -> DistributedBlockResult {
        let be = CpuBackend::new();
        let out = distributed_kernel_block(
            test,
            train,
            &AnsatzConfig::new(2, 1, 0.6),
            &be,
            &TruncationConfig::default(),
            k,
            strategy,
        );
        let expect = reference(test, train);
        assert_eq!(out.block.rows(), test.len());
        assert_eq!(out.block.cols(), train.len());
        for i in 0..test.len() {
            for j in 0..train.len() {
                assert!(
                    (out.block.row(i)[j] - expect.row(i)[j]).abs() < 1e-12,
                    "{strategy:?} k={k} [{i}][{j}]"
                );
            }
        }
        out
    }

    #[test]
    fn round_robin_matches_reference() {
        for k in [1, 2, 3, 5] {
            check_matches(&rows(5, 4, 0.1), &rows(11, 4, 0.4), k, Strategy::RoundRobin);
        }
    }

    #[test]
    fn no_messaging_matches_reference() {
        for k in [1, 2, 4, 6] {
            check_matches(&rows(4, 4, 0.2), &rows(9, 4, 0.5), k, Strategy::NoMessaging);
        }
    }

    #[test]
    fn round_robin_simulates_each_circuit_once() {
        let out = check_matches(&rows(6, 3, 0.1), &rows(10, 3, 0.3), 4, Strategy::RoundRobin);
        assert_eq!(out.simulations_run, 16);
        assert!(out.bytes_communicated > 0);
    }

    #[test]
    fn no_messaging_never_communicates_but_duplicates_work() {
        let out = check_matches(
            &rows(6, 3, 0.1),
            &rows(10, 3, 0.3),
            4,
            Strategy::NoMessaging,
        );
        assert_eq!(out.bytes_communicated, 0);
        // The tile grid makes some block simulated on several processes.
        assert!(out.simulations_run >= 16, "{}", out.simulations_run);
    }

    #[test]
    fn fewer_test_points_than_processes() {
        // Empty test partitions must be handled (k > n_test).
        let out = check_matches(&rows(2, 3, 0.2), &rows(9, 3, 0.4), 4, Strategy::RoundRobin);
        assert_eq!(out.per_process.len(), 4);
    }

    #[test]
    fn phase_times_are_populated() {
        let out = check_matches(&rows(4, 4, 0.1), &rows(8, 4, 0.3), 2, Strategy::RoundRobin);
        let total: Duration = out.per_process.iter().map(|p| p.simulation).sum();
        assert!(total > Duration::ZERO);
    }
}
