//! Truncation-noise analysis (the paper's stated future work).
//!
//! The paper runs everything at a cutoff of 1e-16 — machine precision —
//! so its results are "(virtually) noiseless", and its conclusion notes:
//! "if future work shows that using more complex circuit ansatze is
//! beneficial, more aggressive truncation may be deemed necessary for
//! scalability purposes. In such a situation, analysis of the noise
//! induced by truncation would be necessary." This module is that
//! analysis: sweep the SVD cutoff from machine precision to aggressively
//! lossy, and for each setting measure (a) the element-wise error the
//! truncation injects into the Gram matrix, (b) the resource savings
//! (bond dimension, memory, simulation time), and (c) what the noise
//! does to downstream classification quality.
//!
//! The interesting regime is `d > 1`, where bond dimensions actually
//! grow; at `d = 1` the χ ≈ 2 states have nothing to truncate and every
//! cutoff degenerates to the exact simulation.

use crate::gram::{gram_matrix, kernel_block};
use crate::states::simulate_states;
use qk_circuit::AnsatzConfig;
use qk_data::Split;
use qk_mps::TruncationConfig;
use qk_svm::{sweep_c, KernelBlock, KernelMatrix};
use qk_tensor::backend::ExecutionBackend;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Parameters of a truncation sweep.
#[derive(Debug, Clone)]
pub struct TruncationStudyConfig {
    /// Circuit ansatz; use `d > 1` so truncation has bite.
    pub ansatz: AnsatzConfig,
    /// Cutoffs to sweep, loosest last. The reference (noiseless) run
    /// always uses the paper's 1e-16 regardless of this list.
    pub cutoffs: Vec<f64>,
    /// SVM regularization grid for the AUC-under-noise assessment.
    pub c_grid: Vec<f64>,
    /// SVM convergence tolerance.
    pub tol: f64,
}

impl Default for TruncationStudyConfig {
    fn default() -> Self {
        TruncationStudyConfig {
            ansatz: AnsatzConfig::new(2, 4, 0.5),
            cutoffs: vec![1e-12, 1e-8, 1e-6, 1e-4, 1e-2],
            c_grid: qk_svm::default_c_grid(),
            tol: 1e-3,
        }
    }
}

/// Measurements at one cutoff.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TruncationPoint {
    /// The SVD cutoff swept (discard singular values while Σs² ≤ cutoff).
    pub cutoff: f64,
    /// Mean |K_ij − K_ij^ref| over the training Gram matrix.
    pub mean_kernel_error: f64,
    /// Worst-case |K_ij − K_ij^ref| over the training Gram matrix.
    pub max_kernel_error: f64,
    /// Mean over states of the accumulated discarded weight Σs² — the
    /// paper's equation (8) error accounting.
    pub mean_discarded_weight: f64,
    /// Worst per-state fidelity lower bound `1 − Σs²`.
    pub min_fidelity_bound: f64,
    /// Mean largest bond dimension (Table I's χ column at this cutoff).
    pub mean_max_bond: f64,
    /// Mean per-MPS memory footprint in bytes.
    pub mean_memory_bytes: f64,
    /// Wall time to simulate all train+test states.
    pub simulation_time: Duration,
    /// Best test AUC over the C grid with the noisy kernel.
    pub test_auc: f64,
}

/// Full study output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TruncationStudy {
    /// The noiseless (1e-16) baseline the sweep is measured against.
    pub reference: TruncationPoint,
    /// One point per requested cutoff, in input order.
    pub points: Vec<TruncationPoint>,
}

impl TruncationStudy {
    /// Largest cutoff whose AUC stays within `auc_budget` of the
    /// reference — the operating point a practitioner would pick.
    pub fn loosest_safe_cutoff(&self, auc_budget: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| (self.reference.test_auc - p.test_auc) <= auc_budget)
            .map(|p| p.cutoff)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.max(c))))
    }
}

fn study_point(
    split: &Split,
    config: &TruncationStudyConfig,
    truncation: &TruncationConfig,
    backend: &dyn ExecutionBackend,
    reference: Option<(&KernelMatrix, &KernelBlock)>,
) -> (TruncationPoint, KernelMatrix, KernelBlock) {
    let train = simulate_states(&split.train.features, &config.ansatz, backend, truncation);
    let test = simulate_states(&split.test.features, &config.ansatz, backend, truncation);
    let simulation_time = train.wall_time + test.wall_time;

    let gram = gram_matrix(&train.states, backend);
    let block = kernel_block(&test.states, &train.states, backend);

    let (mean_err, max_err) = match reference {
        Some((ref_kernel, _)) => {
            let (mut sum, mut max, mut count) = (0.0f64, 0.0f64, 0usize);
            let n = train.states.len();
            for i in 0..n {
                for j in 0..n {
                    let e = (gram.kernel.get(i, j) - ref_kernel.get(i, j)).abs();
                    sum += e;
                    max = max.max(e);
                    count += 1;
                }
            }
            (sum / count as f64, max)
        }
        None => (0.0, 0.0),
    };

    let all_states = train.states.iter().chain(&test.states);
    let (mut weight_sum, mut min_fid, mut count) = (0.0f64, 1.0f64, 0usize);
    for s in all_states {
        weight_sum += s.stats().total_discarded_weight;
        min_fid = min_fid.min(s.stats().fidelity_lower_bound());
        count += 1;
    }

    let sweep = sweep_c(
        &gram.kernel,
        &split.train.label_signs(),
        &block.block,
        &split.test.label_signs(),
        &config.c_grid,
        config.tol,
    );

    let point = TruncationPoint {
        cutoff: truncation.cutoff,
        mean_kernel_error: mean_err,
        max_kernel_error: max_err,
        mean_discarded_weight: weight_sum / count as f64,
        min_fidelity_bound: min_fid,
        mean_max_bond: train.mean_max_bond(),
        mean_memory_bytes: train.mean_memory_bytes(),
        simulation_time,
        test_auc: sweep.best_by_test_auc().test.auc,
    };
    (point, gram.kernel, block.block)
}

/// Runs the sweep: one noiseless reference at the paper's 1e-16 cutoff,
/// then one run per requested cutoff, each compared element-wise against
/// the reference kernel.
pub fn run_truncation_study(
    split: &Split,
    config: &TruncationStudyConfig,
    backend: &dyn ExecutionBackend,
) -> TruncationStudy {
    assert!(
        !config.cutoffs.is_empty(),
        "sweep needs at least one cutoff"
    );
    assert!(
        config.cutoffs.iter().all(|&c| c > 0.0 && c < 1.0),
        "cutoffs must lie in (0, 1)"
    );
    let (reference, ref_kernel, ref_block) = study_point(
        split,
        config,
        &TruncationConfig::paper_default(),
        backend,
        None,
    );

    let points = config
        .cutoffs
        .iter()
        .map(|&cutoff| {
            let trunc = TruncationConfig::with_cutoff(cutoff);
            study_point(
                split,
                config,
                &trunc,
                backend,
                Some((&ref_kernel, &ref_block)),
            )
            .0
        })
        .collect();

    TruncationStudy { reference, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_data::{generate, prepare_experiment, SyntheticConfig};
    use qk_tensor::backend::CpuBackend;

    fn small_split() -> Split {
        let data = generate(&SyntheticConfig::small(23));
        prepare_experiment(&data, 40, 8, 23)
    }

    fn run_small(cutoffs: Vec<f64>, d: usize) -> TruncationStudy {
        let config = TruncationStudyConfig {
            ansatz: AnsatzConfig::new(2, d, 0.5),
            cutoffs,
            c_grid: vec![1.0],
            tol: 1e-3,
        };
        run_truncation_study(&small_split(), &config, &CpuBackend::new())
    }

    #[test]
    fn reference_run_is_noiseless() {
        let study = run_small(vec![1e-12], 3);
        assert_eq!(study.reference.mean_kernel_error, 0.0);
        assert_eq!(study.reference.max_kernel_error, 0.0);
        // The paper's bound: accumulated error at machine precision.
        assert!(study.reference.min_fidelity_bound > 1.0 - 1e-9);
    }

    #[test]
    fn kernel_error_grows_as_cutoff_loosens() {
        let study = run_small(vec![1e-10, 1e-4, 5e-2], 3);
        let errs: Vec<f64> = study.points.iter().map(|p| p.max_kernel_error).collect();
        // Monotone within measurement jitter: the loosest cutoff must be
        // at least as bad as the tightest, and strictly noisy.
        assert!(errs[2] >= errs[0], "{errs:?}");
        assert!(
            errs[2] > 1e-4,
            "aggressive truncation should inject visible noise: {errs:?}"
        );
        // Tight cutoff stays small. Note the amplitude-level error scales
        // like sqrt(cutoff) per truncation, accumulated over every
        // two-qubit gate, so 1e-10 discarded weight shows up as ~1e-6
        // kernel error — not machine precision.
        assert!(errs[0] < 1e-4, "{errs:?}");
    }

    #[test]
    fn bond_dimension_shrinks_as_cutoff_loosens() {
        let study = run_small(vec![1e-10, 5e-2], 3);
        let tight = &study.points[0];
        let loose = &study.points[1];
        assert!(
            loose.mean_max_bond <= tight.mean_max_bond,
            "loose {} vs tight {}",
            loose.mean_max_bond,
            tight.mean_max_bond
        );
        assert!(loose.mean_memory_bytes <= tight.mean_memory_bytes);
        // Loosening can only reduce resources relative to the reference:
        // singular values between 1e-16 and 1e-10 get discarded too.
        assert!(tight.mean_max_bond <= study.reference.mean_max_bond);
    }

    #[test]
    fn discarded_weight_accounting_matches_direction() {
        let study = run_small(vec![1e-10, 5e-2], 3);
        assert!(study.points[1].mean_discarded_weight >= study.points[0].mean_discarded_weight);
        assert!(study.points[1].min_fidelity_bound <= study.points[0].min_fidelity_bound);
        // Fidelity bounds stay valid probabilities.
        for p in study.points.iter().chain([&study.reference]) {
            assert!((0.0..=1.0).contains(&p.min_fidelity_bound), "{p:?}");
        }
    }

    #[test]
    fn auc_stays_sane_under_noise() {
        let study = run_small(vec![1e-8, 5e-2], 3);
        for p in &study.points {
            assert!((0.0..=1.0).contains(&p.test_auc), "{p:?}");
        }
        // Mild truncation must not move AUC: kernel errors ~1e-8 are far
        // below the SVM's decision margins.
        assert!(
            (study.points[0].test_auc - study.reference.test_auc).abs() < 1e-6,
            "mild truncation changed AUC: {} vs {}",
            study.points[0].test_auc,
            study.reference.test_auc
        );
    }

    #[test]
    fn loosest_safe_cutoff_picks_operating_point() {
        let study = run_small(vec![1e-10, 1e-6, 5e-2], 3);
        // With an infinite budget, the loosest cutoff always qualifies.
        let c = study.loosest_safe_cutoff(1.0).unwrap();
        assert_eq!(c, 5e-2);
        // With a negative budget nothing qualifies unless noise helps.
        let none_or_better = study.loosest_safe_cutoff(-1.0);
        if let Some(c) = none_or_better {
            let p = study.points.iter().find(|p| p.cutoff == c).unwrap();
            assert!(p.test_auc >= study.reference.test_auc);
        }
    }

    #[test]
    fn d1_states_tolerate_mild_truncation() {
        // At d = 1 the ansatz's bond dimension is tiny; a *mild* cutoff
        // discards essentially nothing and kernel errors stay near
        // numerical noise. (A genuinely loose cutoff like 1e-3 does bite
        // even at d = 1 — it kills the small Schmidt coefficient of each
        // RXX — which is exactly why this study exists.)
        let study = run_small(vec![1e-10], 1);
        assert!(
            study.points[0].max_kernel_error < 1e-4,
            "d=1 kernel should be robust at mild cutoffs: {:?}",
            study.points[0]
        );
        assert!(study.points[0].min_fidelity_bound > 1.0 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "cutoffs must lie in (0, 1)")]
    fn rejects_nonsense_cutoffs() {
        let config = TruncationStudyConfig {
            cutoffs: vec![2.0],
            ..TruncationStudyConfig::default()
        };
        run_truncation_study(&small_split(), &config, &CpuBackend::new());
    }
}
