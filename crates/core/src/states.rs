//! Batched quantum-state preparation: one MPS simulation per data point.
//!
//! This is the linear-in-N half of the paper's decomposition (Section I):
//! `N` MPS simulations, embarrassingly parallel, followed by `O(N^2)`
//! cheap inner products. States are simulated with rayon fan-out and the
//! chosen execution backend.

use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{Mps, MpsSimulator, SimRecord, TruncationConfig};
use qk_tensor::backend::ExecutionBackend;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Output of a batched state-preparation run.
pub struct StateBatch {
    /// One MPS per input row, in input order.
    pub states: Vec<Mps>,
    /// Per-state simulation records.
    pub records: Vec<SimRecord>,
    /// Wall-clock time for the whole batch.
    pub wall_time: Duration,
}

impl StateBatch {
    /// Mean of the largest bond dimension over the batch — Table I's
    /// "average largest chi".
    pub fn mean_max_bond(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        self.states.iter().map(|s| s.max_bond() as f64).sum::<f64>() / self.states.len() as f64
    }

    /// Mean MPS memory footprint in bytes — Table I's "memory per MPS".
    pub fn mean_memory_bytes(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        self.states
            .iter()
            .map(|s| s.memory_bytes() as f64)
            .sum::<f64>()
            / self.states.len() as f64
    }

    /// Sum of per-state simulation durations (CPU time, not wall time).
    pub fn total_simulation_time(&self) -> Duration {
        self.records.iter().map(|r| r.duration).sum()
    }
}

/// Simulates the feature-map circuit for every row, in parallel.
pub fn simulate_states(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
) -> StateBatch {
    let start = Instant::now();
    let results: Vec<(Mps, SimRecord)> = rows
        .par_iter()
        .map(|x| {
            let circuit = feature_map_circuit(x, ansatz);
            MpsSimulator::new(backend)
                .with_truncation(*truncation)
                .simulate(&circuit)
        })
        .collect();
    let (states, records): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    StateBatch {
        states,
        records,
        wall_time: start.elapsed(),
    }
}

/// Serial variant used inside explicitly-threaded distribution strategies
/// (each simulated "process" is already a thread of its own).
pub fn simulate_states_serial(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
) -> StateBatch {
    let start = Instant::now();
    let (states, records): (Vec<_>, Vec<_>) = rows
        .iter()
        .map(|x| {
            let circuit = feature_map_circuit(x, ansatz);
            MpsSimulator::new(backend)
                .with_truncation(*truncation)
                .simulate(&circuit)
        })
        .unzip();
    StateBatch {
        states,
        records,
        wall_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_tensor::backend::CpuBackend;

    fn rows() -> Vec<Vec<f64>> {
        (0..6)
            .map(|i| (0..4).map(|j| ((i * 4 + j) % 7) as f64 * 0.28).collect())
            .collect()
    }

    #[test]
    fn batch_matches_row_count() {
        let be = CpuBackend::new();
        let batch = simulate_states(
            &rows(),
            &AnsatzConfig::new(2, 1, 0.5),
            &be,
            &TruncationConfig::default(),
        );
        assert_eq!(batch.states.len(), 6);
        assert_eq!(batch.records.len(), 6);
        for s in &batch.states {
            assert_eq!(s.num_qubits(), 4);
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 2, 0.8);
        let tc = TruncationConfig::default();
        let par = simulate_states(&rows(), &cfg, &be, &tc);
        let ser = simulate_states_serial(&rows(), &cfg, &be, &tc);
        for (a, b) in par.states.iter().zip(&ser.states) {
            assert!((a.overlap_sqr(b) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_statistics() {
        let be = CpuBackend::new();
        let batch = simulate_states(
            &rows(),
            &AnsatzConfig::new(2, 2, 1.0),
            &be,
            &TruncationConfig::default(),
        );
        assert!(batch.mean_max_bond() >= 1.0);
        assert!(batch.mean_memory_bytes() > 0.0);
        assert!(batch.total_simulation_time() > Duration::ZERO);
    }
}
