//! Deployable quantum-kernel model: train once, classify new points.
//!
//! Section III-A of the paper walks through what classifying a single
//! unlabeled point costs once the Gram matrix is built: simulate the new
//! circuit (~2 s for the 165-qubit QML ansatz), compute inner products
//! against every stored training state (parallelizable; ~0.02 s each),
//! and feed the kernel row to the trained SVM. This module packages that
//! workflow: the trained model retains the training-set MPS states (the
//! paper keeps them "in memory across different processors"), exposes
//! timed single-point and batch prediction, optional Platt-calibrated
//! probabilities, and byte-level serialization so a trained model can be
//! shipped like any other artifact.

use crate::gram::gram_matrix;
use crate::states::simulate_states;
use qk_circuit::ansatz::feature_map_circuit;
use qk_circuit::{route_for_mps, AnsatzConfig};
use qk_mps::{Mps, MpsDecodeError, MpsSimulator, TruncationConfig, ZipperWorkspace};
use qk_svm::{fit_platt, train_svc, KernelBlock, PlattCalibration, SmoParams, TrainedSvm};
use qk_tensor::backend::ExecutionBackend;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Timing breakdown of one prediction (the paper's inference cost
/// decomposition).
#[derive(Debug, Clone, Copy, Default)]
pub struct InferenceTiming {
    /// Simulating the new data point's circuit.
    pub simulation: Duration,
    /// Inner products against the stored training states.
    pub inner_products: Duration,
}

/// A single prediction.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// SVM decision value (sign is the class).
    pub decision_value: f64,
    /// Predicted label in `{-1.0, +1.0}`.
    pub label: f64,
    /// Calibrated probability of the positive class, when the model has
    /// been calibrated.
    pub probability: Option<f64>,
    /// Where the time went.
    pub timing: InferenceTiming,
}

/// A trained quantum-kernel SVM with its retained training states.
pub struct QuantumKernelModel {
    ansatz: AnsatzConfig,
    truncation: TruncationConfig,
    train_states: Vec<Mps>,
    svm: TrainedSvm,
    calibration: Option<PlattCalibration>,
}

impl QuantumKernelModel {
    /// Trains a model: simulates all training states, builds the Gram
    /// matrix, and solves the SVM dual at the given parameters.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[f64],
        ansatz: &AnsatzConfig,
        truncation: &TruncationConfig,
        params: &SmoParams,
        backend: &dyn ExecutionBackend,
    ) -> Self {
        assert_eq!(rows.len(), labels.len(), "row/label count mismatch");
        assert!(!rows.is_empty(), "cannot fit on an empty training set");
        let batch = simulate_states(rows, ansatz, backend, truncation);
        let gram = gram_matrix(&batch.states, backend);
        let svm = train_svc(&gram.kernel, labels, params);
        QuantumKernelModel {
            ansatz: *ansatz,
            truncation: *truncation,
            train_states: batch.states,
            svm,
            calibration: None,
        }
    }

    /// Fits Platt calibration on held-out rows so predictions carry
    /// probabilities. Calibration data should be disjoint from the
    /// training set to avoid optimistic probabilities.
    pub fn calibrate(&mut self, rows: &[Vec<f64>], labels: &[f64], backend: &dyn ExecutionBackend) {
        let decisions: Vec<f64> = self
            .predict_batch(rows, backend)
            .into_iter()
            .map(|p| p.decision_value)
            .collect();
        self.calibration = Some(fit_platt(&decisions, labels));
    }

    /// Number of retained training states.
    pub fn num_train_states(&self) -> usize {
        self.train_states.len()
    }

    /// Number of features (= qubits) the model expects.
    pub fn num_features(&self) -> usize {
        self.train_states[0].num_qubits()
    }

    /// The underlying SVM (dual coefficients, bias, support vectors).
    pub fn svm(&self) -> &TrainedSvm {
        &self.svm
    }

    /// The fitted calibration, if [`QuantumKernelModel::calibrate`] ran.
    pub fn calibration(&self) -> Option<&PlattCalibration> {
        self.calibration.as_ref()
    }

    /// The feature-map ansatz this model encodes points with. Two model
    /// versions with equal ansatz and truncation produce identical
    /// encodings, so cached states can survive a hot-swap between them.
    pub fn ansatz(&self) -> &AnsatzConfig {
        &self.ansatz
    }

    /// The truncation policy applied during encoding.
    pub fn truncation(&self) -> &TruncationConfig {
        &self.truncation
    }

    /// Total bytes of retained MPS states — the paper's point that a
    /// d = 1 model on 165 qubits stores 64,000 states in under 1 GiB.
    pub fn retained_state_bytes(&self) -> usize {
        self.train_states.iter().map(Mps::memory_bytes).sum()
    }

    /// Encodes a data point into its quantum feature state — the paper's
    /// dominant inference cost (~2 s at 165 qubits). Exposed separately
    /// so a serving layer can cache the result and skip this phase for
    /// repeated points.
    pub fn encode(&self, x: &[f64], backend: &dyn ExecutionBackend) -> Mps {
        assert_eq!(x.len(), self.num_features(), "feature count mismatch");
        let circuit = route_for_mps(&feature_map_circuit(x, &self.ansatz));
        let sim = MpsSimulator::new(backend).with_truncation(self.truncation);
        sim.simulate(&circuit).0
    }

    /// Kernel row of a pre-simulated state against every retained
    /// training state, computed in parallel (the paper distributes
    /// exactly this loop over its ranks).
    pub fn kernel_row(&self, state: &Mps, backend: &dyn ExecutionBackend) -> Vec<f64> {
        self.train_states
            .par_iter()
            .map(|s| state.inner_with(backend, s).norm_sqr())
            .collect()
    }

    /// [`QuantumKernelModel::kernel_row`] into a caller-held zipper
    /// workspace: the serving worker's hot path. One worker holds one
    /// workspace and amortizes the kernel's buffers across every row it
    /// serves; entries are bitwise identical to [`kernel_row`]'s (both
    /// run the same zipper kernel).
    ///
    /// [`kernel_row`]: QuantumKernelModel::kernel_row
    pub fn kernel_row_into(
        &self,
        ws: &mut ZipperWorkspace,
        state: &Mps,
        backend: &dyn ExecutionBackend,
    ) -> Vec<f64> {
        self.train_states
            .iter()
            .map(|s| state.inner_into(ws, backend, s).norm_sqr())
            .collect()
    }

    fn prediction_from_decision(&self, decision_value: f64, timing: InferenceTiming) -> Prediction {
        Prediction {
            decision_value,
            label: if decision_value >= 0.0 { 1.0 } else { -1.0 },
            probability: self.calibration.map(|c| c.probability(decision_value)),
            timing,
        }
    }

    /// Classifies a point whose feature state is already simulated:
    /// only the cheap inner-product phase runs, so `timing.simulation`
    /// is zero. This is the cache-hit path of a serving layer.
    pub fn predict_from_state(&self, state: &Mps, backend: &dyn ExecutionBackend) -> Prediction {
        let t0 = Instant::now();
        let row = self.kernel_row(state, backend);
        let inner_products = t0.elapsed();
        self.prediction_from_decision(
            self.svm.decision_value(&row),
            InferenceTiming {
                simulation: Duration::ZERO,
                inner_products,
            },
        )
    }

    /// Classifies a batch of pre-simulated states at once: one kernel
    /// block is assembled in parallel and decision values are evaluated
    /// over its borrowed rows. Decision values are bitwise identical to
    /// calling [`QuantumKernelModel::predict_from_state`] per point.
    /// `timing.inner_products` reports each point's equal share of the
    /// block's wall time; `timing.simulation` is zero.
    pub fn predict_from_states(
        &self,
        states: &[&Mps],
        backend: &dyn ExecutionBackend,
    ) -> Vec<Prediction> {
        if states.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        // Parallelism follows the larger axis: a lone state (a serving
        // layer's light-traffic batch) fans out across the training
        // states like predict_from_state; bigger batches fan out across
        // the query states. Entry order — and thus every decision
        // value — is identical either way.
        let data: Vec<f64> = if states.len() == 1 {
            self.kernel_row(states[0], backend)
        } else {
            states
                .par_iter()
                .flat_map_iter(|t| {
                    self.train_states
                        .iter()
                        .map(move |s| t.inner_with(backend, s).norm_sqr())
                })
                .collect()
        };
        let block = KernelBlock::from_dense(states.len(), self.train_states.len(), data);
        let share = t0.elapsed() / states.len() as u32;
        let timing = InferenceTiming {
            simulation: Duration::ZERO,
            inner_products: share,
        };
        self.svm
            .decision_values_block(&block)
            .into_iter()
            .map(|d| self.prediction_from_decision(d, timing))
            .collect()
    }

    /// [`QuantumKernelModel::predict_from_states`] with a caller-held
    /// zipper workspace: kernel rows are evaluated serially on the
    /// calling thread, reusing one workspace across the whole batch.
    /// This is the serving worker's batch path — the worker already *is*
    /// the unit of parallelism, so fanning out again buys nothing, while
    /// the shared workspace removes every per-pair allocation. Decision
    /// values are bitwise identical to `predict_from_states`.
    pub fn predict_from_states_with(
        &self,
        ws: &mut ZipperWorkspace,
        states: &[&Mps],
        backend: &dyn ExecutionBackend,
    ) -> Vec<Prediction> {
        if states.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        let mut data = Vec::with_capacity(states.len() * self.train_states.len());
        for t in states {
            for s in &self.train_states {
                data.push(t.inner_into(ws, backend, s).norm_sqr());
            }
        }
        let block = KernelBlock::from_dense(states.len(), self.train_states.len(), data);
        let share = t0.elapsed() / states.len() as u32;
        let timing = InferenceTiming {
            simulation: Duration::ZERO,
            inner_products: share,
        };
        self.svm
            .decision_values_block(&block)
            .into_iter()
            .map(|d| self.prediction_from_decision(d, timing))
            .collect()
    }

    /// Classifies one data point, reporting the paper's inference timing
    /// split (simulation vs inner products).
    pub fn predict_one(&self, x: &[f64], backend: &dyn ExecutionBackend) -> Prediction {
        let t0 = Instant::now();
        let state = self.encode(x, backend);
        let simulation = t0.elapsed();
        let mut prediction = self.predict_from_state(&state, backend);
        prediction.timing.simulation = simulation;
        prediction
    }

    /// Classifies a batch of points.
    pub fn predict_batch(
        &self,
        rows: &[Vec<f64>],
        backend: &dyn ExecutionBackend,
    ) -> Vec<Prediction> {
        rows.iter().map(|x| self.predict_one(x, backend)).collect()
    }

    /// Serializes the model (ansatz, truncation policy, SVM and all
    /// retained states) to a flat byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_f64 = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_le_bytes());
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());

        push_u64(&mut out, self.ansatz.layers as u64);
        push_u64(&mut out, self.ansatz.interaction_distance as u64);
        push_f64(&mut out, self.ansatz.gamma);
        push_f64(&mut out, self.truncation.cutoff);
        push_u64(&mut out, self.truncation.max_bond.map_or(0, |b| b as u64));

        push_f64(&mut out, self.svm.bias);
        push_u64(&mut out, self.svm.alphas.len() as u64);
        for (&a, &y) in self.svm.alphas.iter().zip(&self.svm.labels) {
            push_f64(&mut out, a);
            push_f64(&mut out, y);
        }

        match &self.calibration {
            Some(c) => {
                out.push(1);
                push_f64(&mut out, c.a);
                push_f64(&mut out, c.b);
            }
            None => out.push(0),
        }

        push_u64(&mut out, self.train_states.len() as u64);
        for s in &self.train_states {
            let bytes = s.to_bytes();
            push_u64(&mut out, bytes.len() as u64);
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Deserializes a model produced by [`QuantumKernelModel::to_bytes`].
    ///
    /// # Panics
    /// Panics on malformed input; use
    /// [`QuantumKernelModel::try_from_bytes`] to handle untrusted
    /// artifacts (e.g. a serving registry loading uploaded models).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self::try_from_bytes(bytes).unwrap_or_else(|e| panic!("corrupt model bytes: {e}"))
    }

    /// Fallible deserialization of [`QuantumKernelModel::to_bytes`]
    /// output. Rejects truncated or trailing input, unknown calibration
    /// tags, dual-coefficient/state count mismatches, corrupt retained
    /// states, and states with inconsistent qubit counts — corrupt
    /// headers cannot trigger allocations beyond the input size.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, ModelDecodeError> {
        let mut pos = 0usize;
        let read_u64 = |pos: &mut usize| -> Result<u64, ModelDecodeError> {
            let end = pos
                .checked_add(8)
                .filter(|&e| e <= bytes.len())
                .ok_or(ModelDecodeError::Truncated { offset: *pos })?;
            let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
            *pos = end;
            Ok(v)
        };
        let read_f64 = |pos: &mut usize| -> Result<f64, ModelDecodeError> {
            Ok(f64::from_bits(read_u64(pos)?))
        };

        let layers = read_u64(&mut pos)? as usize;
        let interaction_distance = read_u64(&mut pos)? as usize;
        let gamma = read_f64(&mut pos)?;
        let cutoff = read_f64(&mut pos)?;
        let max_bond = match read_u64(&mut pos)? {
            0 => None,
            b => Some(b as usize),
        };

        let bias = read_f64(&mut pos)?;
        let n = read_u64(&mut pos)? as usize;
        if n == 0 {
            return Err(ModelDecodeError::NoTrainStates);
        }
        // Each (alpha, label) pair is 16 wire bytes; bound the allocation
        // by what the buffer can hold.
        if n > (bytes.len() - pos) / 16 {
            return Err(ModelDecodeError::Truncated { offset: pos });
        }
        let mut alphas = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            alphas.push(read_f64(&mut pos)?);
            labels.push(read_f64(&mut pos)?);
        }

        let calibration = match bytes.get(pos) {
            Some(0) => {
                pos += 1;
                None
            }
            Some(1) => {
                pos += 1;
                let a = read_f64(&mut pos)?;
                let b = read_f64(&mut pos)?;
                Some(PlattCalibration {
                    a,
                    b,
                    nll: f64::NAN,
                    iterations: 0,
                })
            }
            Some(&tag) => return Err(ModelDecodeError::BadCalibrationTag { tag }),
            None => return Err(ModelDecodeError::Truncated { offset: pos }),
        };

        let n_states = read_u64(&mut pos)? as usize;
        if n_states != n {
            return Err(ModelDecodeError::StateCountMismatch {
                states: n_states,
                alphas: n,
            });
        }
        let mut train_states = Vec::with_capacity(n_states);
        for index in 0..n_states {
            let len = read_u64(&mut pos)? as usize;
            if len > bytes.len() - pos {
                return Err(ModelDecodeError::Truncated { offset: pos });
            }
            let state = Mps::try_from_bytes(&bytes[pos..pos + len])
                .map_err(|source| ModelDecodeError::State { index, source })?;
            if state.num_qubits()
                != train_states
                    .first()
                    .map_or(state.num_qubits(), Mps::num_qubits)
            {
                return Err(ModelDecodeError::QubitMismatch { index });
            }
            train_states.push(state);
            pos += len;
        }
        if pos != bytes.len() {
            return Err(ModelDecodeError::TrailingBytes {
                consumed: pos,
                len: bytes.len(),
            });
        }

        Ok(QuantumKernelModel {
            ansatz: AnsatzConfig::new(layers, interaction_distance, gamma),
            truncation: TruncationConfig { cutoff, max_bond },
            train_states,
            svm: TrainedSvm {
                alphas,
                bias,
                labels,
                passes: 0,
            },
            calibration,
        })
    }
}

/// Why a byte buffer failed to decode as a [`QuantumKernelModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelDecodeError {
    /// The buffer ended inside a field at this offset.
    Truncated {
        /// Byte offset where more input was required.
        offset: usize,
    },
    /// The model declares zero training states.
    NoTrainStates,
    /// The calibration tag byte is neither 0 nor 1.
    BadCalibrationTag {
        /// The offending tag.
        tag: u8,
    },
    /// Retained state count disagrees with the dual coefficient count.
    StateCountMismatch {
        /// Declared state count.
        states: usize,
        /// Declared dual coefficient count.
        alphas: usize,
    },
    /// A retained state failed to decode.
    State {
        /// Index of the offending state.
        index: usize,
        /// The underlying MPS decode failure.
        source: MpsDecodeError,
    },
    /// A retained state has a different qubit count than the first.
    QubitMismatch {
        /// Index of the offending state.
        index: usize,
    },
    /// Input continues past the end of the encoded model.
    TrailingBytes {
        /// Bytes consumed by the decoder.
        consumed: usize,
        /// Total input length.
        len: usize,
    },
}

impl std::fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelDecodeError::Truncated { offset } => {
                write!(f, "input truncated at byte {offset}")
            }
            ModelDecodeError::NoTrainStates => write!(f, "zero training states declared"),
            ModelDecodeError::BadCalibrationTag { tag } => {
                write!(f, "bad calibration tag {tag}")
            }
            ModelDecodeError::StateCountMismatch { states, alphas } => {
                write!(f, "{states} states for {alphas} dual coefficients")
            }
            ModelDecodeError::State { index, source } => {
                write!(f, "state {index}: {source}")
            }
            ModelDecodeError::QubitMismatch { index } => {
                write!(f, "state {index} has a different qubit count")
            }
            ModelDecodeError::TrailingBytes { consumed, len } => {
                write!(f, "{} trailing bytes after model data", len - consumed)
            }
        }
    }
}

impl std::error::Error for ModelDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelDecodeError::State { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_data::{generate, prepare_experiment, SyntheticConfig};
    use qk_tensor::backend::CpuBackend;

    fn trained_model() -> (QuantumKernelModel, qk_data::Split, CpuBackend) {
        // Low-noise data and a moderate training set so the fitted model
        // is comfortably above chance — the same 240-sample, 10-feature,
        // seed-7 regime as `pipeline::quantum_beats_chance_on_easy_task`
        // (73% held-out accuracy; a Gaussian-kernel control on harder
        // seeds sits at chance, so the regime, not the model, is what
        // this choice pins down).
        let data = generate(&SyntheticConfig {
            noise: 1.0,
            num_features: 12,
            num_illicit: 150,
            num_licit: 350,
            ..SyntheticConfig::small(7)
        });
        let split = prepare_experiment(&data, 240, 10, 7);
        let be = CpuBackend::new();
        let model = QuantumKernelModel::fit(
            &split.train.features,
            &split.train.label_signs(),
            &AnsatzConfig::new(2, 1, 0.3),
            &TruncationConfig::default(),
            &SmoParams::with_c(1.0),
            &be,
        );
        (model, split, be)
    }

    #[test]
    fn fit_and_predict_beats_chance() {
        let (model, split, be) = trained_model();
        assert_eq!(model.num_train_states(), split.train.features.len());
        assert_eq!(model.num_features(), 10);
        let predictions = model.predict_batch(&split.test.features, &be);
        let labels = split.test.label_signs();
        let correct = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, &y)| p.label == y)
            .count();
        assert!(
            correct * 2 > labels.len(),
            "accuracy {}/{} not above chance",
            correct,
            labels.len()
        );
    }

    #[test]
    fn predictions_match_pipeline_decision_values() {
        // predict_one's kernel row must equal the batch pipeline's test
        // block row: same decision values either way.
        let (model, split, be) = trained_model();
        let cfg = AnsatzConfig::new(2, 1, 0.3);
        let trunc = TruncationConfig::default();
        let test_batch = simulate_states(&split.test.features, &cfg, &be, &trunc);
        // Rebuild the training states the model retains.
        let train_batch = simulate_states(&split.train.features, &cfg, &be, &trunc);
        let block = crate::gram::kernel_block(&test_batch.states, &train_batch.states, &be);
        for (i, x) in split.test.features.iter().enumerate().take(5) {
            let p = model.predict_one(x, &be);
            let via_block = model.svm().decision_value(block.block.row(i));
            assert!(
                (p.decision_value - via_block).abs() < 1e-9,
                "row {i}: {} vs {via_block}",
                p.decision_value
            );
        }
    }

    #[test]
    fn timing_fields_are_populated() {
        let (model, split, be) = trained_model();
        let p = model.predict_one(&split.test.features[0], &be);
        assert!(p.timing.simulation > Duration::ZERO);
        // Inner products may be fast but must be measured.
        assert!(p.timing.inner_products >= Duration::ZERO);
        assert!(p.label == 1.0 || p.label == -1.0);
        assert!(p.probability.is_none());
    }

    #[test]
    fn calibration_adds_probabilities() {
        let (mut model, split, be) = trained_model();
        model.calibrate(&split.test.features, &split.test.label_signs(), &be);
        assert!(model.calibration().is_some());
        let p = model.predict_one(&split.test.features[0], &be);
        let prob = p
            .probability
            .expect("calibrated model yields probabilities");
        assert!((0.0..=1.0).contains(&prob));
        // Probability must be consistent with the decision side for a
        // sane calibration: strongly positive decision -> p > 0.5.
        let strong = model
            .predict_batch(&split.test.features, &be)
            .into_iter()
            .max_by(|a, b| a.decision_value.partial_cmp(&b.decision_value).unwrap())
            .unwrap();
        if strong.decision_value > 0.5 {
            assert!(strong.probability.unwrap() > 0.5);
        }
    }

    #[test]
    fn model_roundtrips_through_bytes() {
        let (mut model, split, be) = trained_model();
        model.calibrate(&split.test.features, &split.test.label_signs(), &be);
        let bytes = model.to_bytes();
        let back = QuantumKernelModel::from_bytes(&bytes);
        assert_eq!(back.num_train_states(), model.num_train_states());
        assert_eq!(back.num_features(), model.num_features());
        for x in split.test.features.iter().take(5) {
            let a = model.predict_one(x, &be);
            let b = back.predict_one(x, &be);
            assert!((a.decision_value - b.decision_value).abs() < 1e-9);
            assert_eq!(a.label, b.label);
            let (pa, pb) = (a.probability.unwrap(), b.probability.unwrap());
            assert!((pa - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn predict_from_state_matches_predict_one() {
        // The split encode/predict API must be bitwise identical to the
        // fused path — the serving layer's cache-hit correctness rests
        // on this.
        let (model, split, be) = trained_model();
        let xs = &split.test.features[..6];
        let states: Vec<Mps> = xs.iter().map(|x| model.encode(x, &be)).collect();
        let refs: Vec<&Mps> = states.iter().collect();
        let batched = model.predict_from_states(&refs, &be);
        assert_eq!(batched.len(), xs.len());
        for ((x, state), via_batch) in xs.iter().zip(&states).zip(&batched) {
            let fused = model.predict_one(x, &be);
            let via_state = model.predict_from_state(state, &be);
            assert_eq!(fused.decision_value, via_state.decision_value);
            assert_eq!(fused.decision_value, via_batch.decision_value);
            assert_eq!(fused.label, via_batch.label);
            assert_eq!(via_state.timing.simulation, Duration::ZERO);
        }
        assert!(model.predict_from_states(&[], &be).is_empty());
    }

    #[test]
    fn try_from_bytes_rejects_mangled_model_buffers() {
        let (mut model, split, be) = trained_model();
        model.calibrate(&split.test.features, &split.test.label_signs(), &be);
        let bytes = model.to_bytes();

        // Truncations at a spread of depths: header, duals, calibration,
        // state headers, state payloads, and the final byte.
        for cut in [0, 8, 40, 47, 57, 90, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                QuantumKernelModel::try_from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }

        // Trailing junk.
        let mut long = bytes.clone();
        long.push(0);
        assert!(QuantumKernelModel::try_from_bytes(&long).is_err());

        // Bad calibration tag (tag byte sits right after the duals).
        let tag_pos = 7 * 8 + model.num_train_states() * 16;
        assert_eq!(bytes[tag_pos], 1, "layout drifted: not the tag byte");
        let mut bad_tag = bytes.clone();
        bad_tag[tag_pos] = 7;
        assert_eq!(
            QuantumKernelModel::try_from_bytes(&bad_tag).err(),
            Some(ModelDecodeError::BadCalibrationTag { tag: 7 })
        );

        // State count disagreeing with the dual coefficient count.
        let count_pos = tag_pos + 17;
        let mut bad_count = bytes.clone();
        bad_count[count_pos..count_pos + 8].copy_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            QuantumKernelModel::try_from_bytes(&bad_count).err(),
            Some(ModelDecodeError::StateCountMismatch { states: 3, .. })
        ));

        // Corrupt first retained state (mangle its center field).
        let state0 = count_pos + 8 + 8;
        let mut bad_state = bytes.clone();
        bad_state[state0 + 8..state0 + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            QuantumKernelModel::try_from_bytes(&bad_state).err(),
            Some(ModelDecodeError::State { index: 0, .. })
        ));

        // The pristine artifact still decodes and predicts identically.
        let back = QuantumKernelModel::try_from_bytes(&bytes).expect("pristine artifact");
        let x = &split.test.features[0];
        assert_eq!(
            back.predict_one(x, &be).decision_value,
            model.predict_one(x, &be).decision_value
        );
    }

    #[test]
    #[should_panic(expected = "corrupt model bytes")]
    fn from_bytes_panics_on_truncation() {
        let (model, _, _) = trained_model();
        let bytes = model.to_bytes();
        QuantumKernelModel::from_bytes(&bytes[..bytes.len() - 3]);
    }

    #[test]
    fn accessors_expose_encoding_parameters() {
        let (model, _, _) = trained_model();
        assert_eq!(model.ansatz(), &AnsatzConfig::new(2, 1, 0.3));
        assert_eq!(model.truncation(), &TruncationConfig::default());
    }

    #[test]
    fn retained_bytes_reflect_states() {
        let (model, _, _) = trained_model();
        let per_state = model.retained_state_bytes() / model.num_train_states();
        // d = 1 ansatz states are tiny (the paper: < 15 KiB at 165
        // qubits; far less at 6 qubits).
        assert!(
            per_state > 0 && per_state < 16 * 1024,
            "{per_state} bytes/state"
        );
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_panics() {
        let (model, _, be) = trained_model();
        model.predict_one(&[0.1, 0.2], &be);
    }
}
