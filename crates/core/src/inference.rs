//! Deployable quantum-kernel model: train once, classify new points.
//!
//! Section III-A of the paper walks through what classifying a single
//! unlabeled point costs once the Gram matrix is built: simulate the new
//! circuit (~2 s for the 165-qubit QML ansatz), compute inner products
//! against every stored training state (parallelizable; ~0.02 s each),
//! and feed the kernel row to the trained SVM. This module packages that
//! workflow: the trained model retains the training-set MPS states (the
//! paper keeps them "in memory across different processors"), exposes
//! timed single-point and batch prediction, optional Platt-calibrated
//! probabilities, and byte-level serialization so a trained model can be
//! shipped like any other artifact.

use crate::gram::gram_matrix;
use crate::states::simulate_states;
use qk_circuit::ansatz::feature_map_circuit;
use qk_circuit::{route_for_mps, AnsatzConfig};
use qk_mps::{Mps, MpsSimulator, TruncationConfig};
use qk_svm::{fit_platt, train_svc, PlattCalibration, SmoParams, TrainedSvm};
use qk_tensor::backend::ExecutionBackend;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Timing breakdown of one prediction (the paper's inference cost
/// decomposition).
#[derive(Debug, Clone, Copy, Default)]
pub struct InferenceTiming {
    /// Simulating the new data point's circuit.
    pub simulation: Duration,
    /// Inner products against the stored training states.
    pub inner_products: Duration,
}

/// A single prediction.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// SVM decision value (sign is the class).
    pub decision_value: f64,
    /// Predicted label in `{-1.0, +1.0}`.
    pub label: f64,
    /// Calibrated probability of the positive class, when the model has
    /// been calibrated.
    pub probability: Option<f64>,
    /// Where the time went.
    pub timing: InferenceTiming,
}

/// A trained quantum-kernel SVM with its retained training states.
pub struct QuantumKernelModel {
    ansatz: AnsatzConfig,
    truncation: TruncationConfig,
    train_states: Vec<Mps>,
    svm: TrainedSvm,
    calibration: Option<PlattCalibration>,
}

impl QuantumKernelModel {
    /// Trains a model: simulates all training states, builds the Gram
    /// matrix, and solves the SVM dual at the given parameters.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[f64],
        ansatz: &AnsatzConfig,
        truncation: &TruncationConfig,
        params: &SmoParams,
        backend: &dyn ExecutionBackend,
    ) -> Self {
        assert_eq!(rows.len(), labels.len(), "row/label count mismatch");
        assert!(!rows.is_empty(), "cannot fit on an empty training set");
        let batch = simulate_states(rows, ansatz, backend, truncation);
        let gram = gram_matrix(&batch.states, backend);
        let svm = train_svc(&gram.kernel, labels, params);
        QuantumKernelModel {
            ansatz: *ansatz,
            truncation: *truncation,
            train_states: batch.states,
            svm,
            calibration: None,
        }
    }

    /// Fits Platt calibration on held-out rows so predictions carry
    /// probabilities. Calibration data should be disjoint from the
    /// training set to avoid optimistic probabilities.
    pub fn calibrate(&mut self, rows: &[Vec<f64>], labels: &[f64], backend: &dyn ExecutionBackend) {
        let decisions: Vec<f64> = self
            .predict_batch(rows, backend)
            .into_iter()
            .map(|p| p.decision_value)
            .collect();
        self.calibration = Some(fit_platt(&decisions, labels));
    }

    /// Number of retained training states.
    pub fn num_train_states(&self) -> usize {
        self.train_states.len()
    }

    /// Number of features (= qubits) the model expects.
    pub fn num_features(&self) -> usize {
        self.train_states[0].num_qubits()
    }

    /// The underlying SVM (dual coefficients, bias, support vectors).
    pub fn svm(&self) -> &TrainedSvm {
        &self.svm
    }

    /// The fitted calibration, if [`QuantumKernelModel::calibrate`] ran.
    pub fn calibration(&self) -> Option<&PlattCalibration> {
        self.calibration.as_ref()
    }

    /// Total bytes of retained MPS states — the paper's point that a
    /// d = 1 model on 165 qubits stores 64,000 states in under 1 GiB.
    pub fn retained_state_bytes(&self) -> usize {
        self.train_states.iter().map(Mps::memory_bytes).sum()
    }

    /// Classifies one data point, reporting the paper's inference timing
    /// split. The kernel row is computed in parallel across training
    /// states (the paper distributes exactly this loop over its ranks).
    pub fn predict_one(&self, x: &[f64], backend: &dyn ExecutionBackend) -> Prediction {
        assert_eq!(x.len(), self.num_features(), "feature count mismatch");
        let t0 = Instant::now();
        let circuit = route_for_mps(&feature_map_circuit(x, &self.ansatz));
        let sim = MpsSimulator::new(backend).with_truncation(self.truncation);
        let (state, _) = sim.simulate(&circuit);
        let simulation = t0.elapsed();

        let t0 = Instant::now();
        let row: Vec<f64> = self
            .train_states
            .par_iter()
            .map(|s| state.inner_with(backend, s).norm_sqr())
            .collect();
        let inner_products = t0.elapsed();

        let decision_value = self.svm.decision_value(&row);
        Prediction {
            decision_value,
            label: if decision_value >= 0.0 { 1.0 } else { -1.0 },
            probability: self.calibration.map(|c| c.probability(decision_value)),
            timing: InferenceTiming {
                simulation,
                inner_products,
            },
        }
    }

    /// Classifies a batch of points.
    pub fn predict_batch(
        &self,
        rows: &[Vec<f64>],
        backend: &dyn ExecutionBackend,
    ) -> Vec<Prediction> {
        rows.iter().map(|x| self.predict_one(x, backend)).collect()
    }

    /// Serializes the model (ansatz, truncation policy, SVM and all
    /// retained states) to a flat byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_f64 = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_le_bytes());
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());

        push_u64(&mut out, self.ansatz.layers as u64);
        push_u64(&mut out, self.ansatz.interaction_distance as u64);
        push_f64(&mut out, self.ansatz.gamma);
        push_f64(&mut out, self.truncation.cutoff);
        push_u64(&mut out, self.truncation.max_bond.map_or(0, |b| b as u64));

        push_f64(&mut out, self.svm.bias);
        push_u64(&mut out, self.svm.alphas.len() as u64);
        for (&a, &y) in self.svm.alphas.iter().zip(&self.svm.labels) {
            push_f64(&mut out, a);
            push_f64(&mut out, y);
        }

        match &self.calibration {
            Some(c) => {
                out.push(1);
                push_f64(&mut out, c.a);
                push_f64(&mut out, c.b);
            }
            None => out.push(0),
        }

        push_u64(&mut out, self.train_states.len() as u64);
        for s in &self.train_states {
            let bytes = s.to_bytes();
            push_u64(&mut out, bytes.len() as u64);
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Deserializes a model produced by [`QuantumKernelModel::to_bytes`].
    ///
    /// # Panics
    /// Panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut pos = 0usize;
        let read_f64 = |pos: &mut usize| {
            let v = f64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            v
        };
        let read_u64 = |pos: &mut usize| {
            let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            v
        };

        let layers = read_u64(&mut pos) as usize;
        let interaction_distance = read_u64(&mut pos) as usize;
        let gamma = read_f64(&mut pos);
        let cutoff = read_f64(&mut pos);
        let max_bond = match read_u64(&mut pos) {
            0 => None,
            b => Some(b as usize),
        };

        let bias = read_f64(&mut pos);
        let n = read_u64(&mut pos) as usize;
        let mut alphas = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            alphas.push(read_f64(&mut pos));
            labels.push(read_f64(&mut pos));
        }

        let calibration = match bytes[pos] {
            0 => {
                pos += 1;
                None
            }
            1 => {
                pos += 1;
                let a = read_f64(&mut pos);
                let b = read_f64(&mut pos);
                Some(PlattCalibration {
                    a,
                    b,
                    nll: f64::NAN,
                    iterations: 0,
                })
            }
            tag => panic!("corrupt model bytes: bad calibration tag {tag}"),
        };

        let n_states = read_u64(&mut pos) as usize;
        assert_eq!(n_states, n, "state count must match dual coefficient count");
        let mut train_states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            let len = read_u64(&mut pos) as usize;
            train_states.push(Mps::from_bytes(&bytes[pos..pos + len]));
            pos += len;
        }

        QuantumKernelModel {
            ansatz: AnsatzConfig::new(layers, interaction_distance, gamma),
            truncation: TruncationConfig { cutoff, max_bond },
            train_states,
            svm: TrainedSvm {
                alphas,
                bias,
                labels,
                passes: 0,
            },
            calibration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_data::{generate, prepare_experiment, SyntheticConfig};
    use qk_tensor::backend::CpuBackend;

    fn trained_model() -> (QuantumKernelModel, qk_data::Split, CpuBackend) {
        // Low-noise data and a moderate training set so the fitted model
        // is comfortably above chance — the same 240-sample, 10-feature,
        // seed-7 regime as `pipeline::quantum_beats_chance_on_easy_task`
        // (73% held-out accuracy; a Gaussian-kernel control on harder
        // seeds sits at chance, so the regime, not the model, is what
        // this choice pins down).
        let data = generate(&SyntheticConfig {
            noise: 1.0,
            num_features: 12,
            num_illicit: 150,
            num_licit: 350,
            ..SyntheticConfig::small(7)
        });
        let split = prepare_experiment(&data, 240, 10, 7);
        let be = CpuBackend::new();
        let model = QuantumKernelModel::fit(
            &split.train.features,
            &split.train.label_signs(),
            &AnsatzConfig::new(2, 1, 0.3),
            &TruncationConfig::default(),
            &SmoParams::with_c(1.0),
            &be,
        );
        (model, split, be)
    }

    #[test]
    fn fit_and_predict_beats_chance() {
        let (model, split, be) = trained_model();
        assert_eq!(model.num_train_states(), split.train.features.len());
        assert_eq!(model.num_features(), 10);
        let predictions = model.predict_batch(&split.test.features, &be);
        let labels = split.test.label_signs();
        let correct = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, &y)| p.label == y)
            .count();
        assert!(
            correct * 2 > labels.len(),
            "accuracy {}/{} not above chance",
            correct,
            labels.len()
        );
    }

    #[test]
    fn predictions_match_pipeline_decision_values() {
        // predict_one's kernel row must equal the batch pipeline's test
        // block row: same decision values either way.
        let (model, split, be) = trained_model();
        let cfg = AnsatzConfig::new(2, 1, 0.3);
        let trunc = TruncationConfig::default();
        let test_batch = simulate_states(&split.test.features, &cfg, &be, &trunc);
        // Rebuild the training states the model retains.
        let train_batch = simulate_states(&split.train.features, &cfg, &be, &trunc);
        let block = crate::gram::kernel_block(&test_batch.states, &train_batch.states, &be);
        for (i, x) in split.test.features.iter().enumerate().take(5) {
            let p = model.predict_one(x, &be);
            let via_block = model.svm().decision_value(block.block.row(i));
            assert!(
                (p.decision_value - via_block).abs() < 1e-9,
                "row {i}: {} vs {via_block}",
                p.decision_value
            );
        }
    }

    #[test]
    fn timing_fields_are_populated() {
        let (model, split, be) = trained_model();
        let p = model.predict_one(&split.test.features[0], &be);
        assert!(p.timing.simulation > Duration::ZERO);
        // Inner products may be fast but must be measured.
        assert!(p.timing.inner_products >= Duration::ZERO);
        assert!(p.label == 1.0 || p.label == -1.0);
        assert!(p.probability.is_none());
    }

    #[test]
    fn calibration_adds_probabilities() {
        let (mut model, split, be) = trained_model();
        model.calibrate(&split.test.features, &split.test.label_signs(), &be);
        assert!(model.calibration().is_some());
        let p = model.predict_one(&split.test.features[0], &be);
        let prob = p
            .probability
            .expect("calibrated model yields probabilities");
        assert!((0.0..=1.0).contains(&prob));
        // Probability must be consistent with the decision side for a
        // sane calibration: strongly positive decision -> p > 0.5.
        let strong = model
            .predict_batch(&split.test.features, &be)
            .into_iter()
            .max_by(|a, b| a.decision_value.partial_cmp(&b.decision_value).unwrap())
            .unwrap();
        if strong.decision_value > 0.5 {
            assert!(strong.probability.unwrap() > 0.5);
        }
    }

    #[test]
    fn model_roundtrips_through_bytes() {
        let (mut model, split, be) = trained_model();
        model.calibrate(&split.test.features, &split.test.label_signs(), &be);
        let bytes = model.to_bytes();
        let back = QuantumKernelModel::from_bytes(&bytes);
        assert_eq!(back.num_train_states(), model.num_train_states());
        assert_eq!(back.num_features(), model.num_features());
        for x in split.test.features.iter().take(5) {
            let a = model.predict_one(x, &be);
            let b = back.predict_one(x, &be);
            assert!((a.decision_value - b.decision_value).abs() < 1e-9);
            assert_eq!(a.label, b.label);
            let (pa, pb) = (a.probability.unwrap(), b.probability.unwrap());
            assert!((pa - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn retained_bytes_reflect_states() {
        let (model, _, _) = trained_model();
        let per_state = model.retained_state_bytes() / model.num_train_states();
        // d = 1 ansatz states are tiny (the paper: < 15 KiB at 165
        // qubits; far less at 6 qubits).
        assert!(
            per_state > 0 && per_state < 16 * 1024,
            "{per_state} bytes/state"
        );
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_panics() {
        let (model, _, be) = trained_model();
        model.predict_one(&[0.1, 0.2], &be);
    }
}
