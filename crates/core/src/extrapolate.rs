//! Compute-requirement forecasting (paper, end of section III-A).
//!
//! The paper extrapolates its Fig. 8 measurements to production scale:
//! "training on a data set of 64,000 entries could be achieved in 30
//! hours using 320 GPUs, or in 15 hours using 640 GPUs", and classifying
//! one unlabeled point against a 64,000-state training set on 320 GPUs
//! costs "4 seconds" of inner products plus "an additional 2 seconds" of
//! MPS simulation. Those numbers follow from a three-term linear cost
//! model over the per-primitive times; this module implements that model
//! so users can size a cluster before committing to a run.
//!
//! The model is deliberately simple — the same arithmetic the paper does
//! in prose — and is validated in two ways: the tests reproduce the
//! paper's published forecasts from the paper's own per-primitive costs,
//! and [`PrimitiveCosts::from_distributed`] calibrates the model from a
//! measured [`DistributedResult`] so a forecast can be checked against
//! the run that produced it.

use crate::distributed::{DistributedResult, Strategy};
use crate::states::simulate_states_serial;
use qk_circuit::AnsatzConfig;
use qk_mps::TruncationConfig;
use qk_tensor::backend::ExecutionBackend;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Per-primitive costs the forecast is linear in.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrimitiveCosts {
    /// Simulating one data point's circuit into an MPS.
    pub simulation: Duration,
    /// Contracting one pairwise inner product.
    pub inner_product: Duration,
    /// Shipping one MPS state to a neighbouring process (round-robin
    /// only; serialize + send + receive, amortized per state).
    pub communication_per_state: Duration,
}

impl PrimitiveCosts {
    /// The paper's published costs for the 165-qubit QML ansatz
    /// (`d = 1`, `r = 2`, `γ = 0.1`): "MPS simulation for the
    /// corresponding new data point using this circuit ansatz requires
    /// an additional 2 seconds" and "each inner product requires
    /// approximately 0.02 seconds". Communication is negligible for the
    /// χ ≈ 2, <15 KiB states of this ansatz.
    pub fn paper_qml_ansatz() -> Self {
        PrimitiveCosts {
            simulation: Duration::from_secs(2),
            inner_product: Duration::from_millis(20),
            communication_per_state: Duration::from_micros(100),
        }
    }

    /// Calibrates the model by timing a small sample: simulates
    /// `sample.len()` circuits serially and contracts all pairwise inner
    /// products among them. Use a sample of at least 4 rows drawn from
    /// the same distribution as the production data set.
    pub fn measure(
        sample: &[Vec<f64>],
        ansatz: &AnsatzConfig,
        truncation: &TruncationConfig,
        backend: &dyn ExecutionBackend,
    ) -> Self {
        assert!(
            sample.len() >= 2,
            "need at least two rows to time inner products"
        );
        let batch = simulate_states_serial(sample, ansatz, backend, truncation);
        let simulation = batch.total_simulation_time().div_f64(sample.len() as f64);

        let t0 = Instant::now();
        let mut pairs = 0u32;
        for i in 0..batch.states.len() {
            for j in (i + 1)..batch.states.len() {
                let _ = batch.states[i].inner_with(backend, &batch.states[j]);
                pairs += 1;
            }
        }
        let inner_product = t0.elapsed() / pairs;

        // Serialization round-trip cost stands in for one state transfer.
        let t0 = Instant::now();
        for s in &batch.states {
            let bytes = s.to_bytes();
            let _ = qk_mps::Mps::from_bytes(&bytes);
        }
        let communication_per_state = t0.elapsed() / batch.states.len() as u32;

        PrimitiveCosts {
            simulation,
            inner_product,
            communication_per_state,
        }
    }

    /// Recovers per-primitive costs from a measured distributed run on
    /// `n` data points: total phase time across processes divided by the
    /// number of primitives that phase executed.
    pub fn from_distributed(result: &DistributedResult, n: usize) -> Self {
        let total = |f: fn(&crate::distributed::ProcessTimes) -> Duration| {
            result.per_process.iter().map(f).sum::<Duration>()
        };
        let pairs = (n * (n.saturating_sub(1))) / 2 + n; // off-diagonal + diagonal
        let sims = result.simulations_run.max(1);
        PrimitiveCosts {
            simulation: total(|p| p.simulation).div_f64(sims as f64),
            inner_product: total(|p| p.inner_products).div_f64(pairs as f64),
            // Bytes shipped don't tell us the state count directly; fold
            // the whole communication bill into a per-state figure using
            // the round-robin schedule's state-transfer count.
            communication_per_state: if result.bytes_communicated == 0 {
                Duration::ZERO
            } else {
                let k = result.per_process.len();
                let transfers = round_robin_transfers(n, k).max(1);
                total(|p| p.communication).div_f64(transfers as f64)
            },
        }
    }
}

/// States shipped in a full round-robin schedule: `k − 1` rounds, each
/// moving half of each process's `n / k` partition.
fn round_robin_transfers(n: usize, k: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    let per_round = (n / k).div_ceil(2) * k;
    per_round * (k - 1)
}

/// Forecast wall-clock phases for a training Gram matrix on `n` points
/// over `k` processes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainingForecast {
    /// Data set size the forecast is for.
    pub data_points: usize,
    /// Parallel processes assumed.
    pub processes: usize,
    /// Critical-path simulation time.
    pub simulation: Duration,
    /// Critical-path inner-product time.
    pub inner_products: Duration,
    /// Critical-path communication time (round-robin only).
    pub communication: Duration,
}

impl TrainingForecast {
    /// End-to-end forecast: phases run one after another on the
    /// critical-path process.
    pub fn total(&self) -> Duration {
        self.simulation + self.inner_products + self.communication
    }
}

/// Forecast for classifying one unlabeled point against a trained model
/// (paper: "classification of a single unlabeled data point").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferenceForecast {
    /// Simulating the new point's circuit; the paper notes this "does
    /// not benefit from parallelization in the current framework".
    pub simulation: Duration,
    /// Inner products against all stored training states, spread across
    /// processes.
    pub inner_products: Duration,
}

impl InferenceForecast {
    /// End-to-end forecast.
    pub fn total(&self) -> Duration {
        self.simulation + self.inner_products
    }
}

/// Forecasts the training Gram-matrix computation.
///
/// Round-robin (Fig. 4b): each process simulates its `n / k` partition
/// once, computes its `n(n−1)/2k` share of inner products, and ships
/// half its partition to a neighbour for `k − 1` rounds. No-messaging
/// (Fig. 4a): processes own √k × √k tiles, so every circuit is simulated
/// redundantly on O(√k) processes and no states move.
pub fn forecast_training(
    costs: &PrimitiveCosts,
    n: usize,
    k: usize,
    strategy: Strategy,
) -> TrainingForecast {
    assert!(n >= 1 && k >= 1, "need at least one point and one process");
    let pairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    let inner_products = costs.inner_product.mul_f64(pairs / k as f64);
    match strategy {
        Strategy::RoundRobin => {
            let per_proc = (n as f64 / k as f64).ceil();
            let shipped = round_robin_transfers(n, k) as f64 / k as f64;
            TrainingForecast {
                data_points: n,
                processes: k,
                simulation: costs.simulation.mul_f64(per_proc),
                inner_products,
                communication: costs.communication_per_state.mul_f64(shipped),
            }
        }
        Strategy::NoMessaging => {
            // Square tiling: g = ⌈√k⌉ tile-grid side; a process owning a
            // tile simulates its row block and its column block.
            let g = (k as f64).sqrt().ceil();
            let per_proc = 2.0 * (n as f64 / g).ceil();
            TrainingForecast {
                data_points: n,
                processes: k,
                simulation: costs.simulation.mul_f64(per_proc),
                inner_products,
                communication: Duration::ZERO,
            }
        }
    }
}

/// Forecasts single-point inference against `n_train` stored states on
/// `k` processes.
pub fn forecast_inference(costs: &PrimitiveCosts, n_train: usize, k: usize) -> InferenceForecast {
    assert!(k >= 1, "need at least one process");
    InferenceForecast {
        simulation: costs.simulation,
        inner_products: costs.inner_product.mul_f64(n_train as f64 / k as f64),
    }
}

/// Smallest process count that brings the forecast training total under
/// `deadline` with the round-robin strategy, or `None` if even one
/// process per data point is not enough (the quadratic inner-product
/// term means deadlines below `n·t_ip / 2` are unreachable).
pub fn processes_for_deadline(
    costs: &PrimitiveCosts,
    n: usize,
    deadline: Duration,
) -> Option<usize> {
    // The total is monotone non-increasing in k (communication grows
    // slower than the n²/k inner-product term shrinks for realistic
    // costs), so binary search over k in [1, n].
    let fits = |k: usize| forecast_training(costs, n, k, Strategy::RoundRobin).total() <= deadline;
    if !fits(n) {
        return None;
    }
    let (mut lo, mut hi) = (1usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::distributed_gram;
    use qk_data::{generate, prepare_experiment, SyntheticConfig};
    use qk_tensor::backend::CpuBackend;

    const HOUR: f64 = 3600.0;

    #[test]
    fn paper_training_forecast_320_gpus() {
        // Paper: 64,000 entries, 320 GPUs -> ~30 hours. With t_ip = 20 ms
        // the exact arithmetic gives 64,000²/2 × 0.02 s / 320 ≈ 35.5 h;
        // the paper rounds down to 30. Accept the 25–40 h band.
        let f = forecast_training(
            &PrimitiveCosts::paper_qml_ansatz(),
            64_000,
            320,
            Strategy::RoundRobin,
        );
        let hours = f.total().as_secs_f64() / HOUR;
        assert!((25.0..=40.0).contains(&hours), "forecast {hours:.1} h");
        // Simulation is a rounding error next to the quadratic term.
        assert!(f.simulation < f.inner_products / 100);
    }

    #[test]
    fn paper_training_forecast_doubling_gpus_halves_time() {
        // Paper: "or in 15 hours using 640 GPUs" — exactly half.
        let c = PrimitiveCosts::paper_qml_ansatz();
        let t320 = forecast_training(&c, 64_000, 320, Strategy::RoundRobin);
        let t640 = forecast_training(&c, 64_000, 640, Strategy::RoundRobin);
        let ratio = t320.inner_products.as_secs_f64() / t640.inner_products.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        let hours = t640.total().as_secs_f64() / HOUR;
        assert!((12.0..=20.0).contains(&hours), "forecast {hours:.1} h");
    }

    #[test]
    fn paper_inference_forecast() {
        // Paper: 64,000 training size, 320 GPUs -> 4 s of inner products
        // plus 2 s of simulation.
        let f = forecast_inference(&PrimitiveCosts::paper_qml_ansatz(), 64_000, 320);
        assert!((f.inner_products.as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((f.simulation.as_secs_f64() - 2.0).abs() < 1e-9);
        assert!((f.total().as_secs_f64() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fig8_shape_constant_simulation_doubling_inner_products() {
        // Fig. 8's law: double both N and k and the simulation bar stays
        // flat while the inner-product bar doubles.
        let c = PrimitiveCosts::paper_qml_ansatz();
        let a = forecast_training(&c, 800, 4, Strategy::RoundRobin);
        let b = forecast_training(&c, 1600, 8, Strategy::RoundRobin);
        assert_eq!(a.simulation, b.simulation);
        let ratio = b.inner_products.as_secs_f64() / a.inner_products.as_secs_f64();
        assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn no_messaging_simulates_redundantly_but_never_communicates() {
        let c = PrimitiveCosts::paper_qml_ansatz();
        let nm = forecast_training(&c, 1000, 16, Strategy::NoMessaging);
        let rr = forecast_training(&c, 1000, 16, Strategy::RoundRobin);
        assert_eq!(nm.communication, Duration::ZERO);
        assert!(rr.communication > Duration::ZERO);
        // 16 processes = 4x4 tiles: each simulates 2·n/4 = n/2 states,
        // versus n/16 for round-robin — an 8x redundancy.
        assert!(
            nm.simulation > rr.simulation.mul_f64(7.0),
            "no-messaging {:?} vs round-robin {:?}",
            nm.simulation,
            rr.simulation
        );
        // Inner-product work is identical under either strategy.
        assert_eq!(nm.inner_products, rr.inner_products);
    }

    #[test]
    fn single_process_round_robin_has_no_communication() {
        let c = PrimitiveCosts::paper_qml_ansatz();
        let f = forecast_training(&c, 100, 1, Strategy::RoundRobin);
        assert_eq!(f.communication, Duration::ZERO);
        assert_eq!(f.simulation, c.simulation.mul_f64(100.0));
    }

    #[test]
    fn deadline_solver_brackets_the_paper_claims() {
        let c = PrimitiveCosts::paper_qml_ansatz();
        // 40 h is feasible at 64k points; the solver's answer must be
        // consistent: k processes meet it, k−1 do not.
        let deadline = Duration::from_secs_f64(40.0 * HOUR);
        let k = processes_for_deadline(&c, 64_000, deadline).expect("feasible");
        assert!(forecast_training(&c, 64_000, k, Strategy::RoundRobin).total() <= deadline);
        assert!(
            forecast_training(&c, 64_000, k - 1, Strategy::RoundRobin).total() > deadline,
            "k = {k} not minimal"
        );
        // ~35.5 h at 320 -> 40 h needs slightly fewer than 320.
        assert!((250..=330).contains(&k), "k = {k}");
    }

    #[test]
    fn deadline_solver_reports_unreachable() {
        let c = PrimitiveCosts::paper_qml_ansatz();
        // One minute for 64k points is beyond any process count.
        assert_eq!(
            processes_for_deadline(&c, 64_000, Duration::from_secs(60)),
            None
        );
    }

    #[test]
    fn measured_costs_forecast_a_real_run_within_tolerance() {
        // Calibrate on a real distributed run, then check the model
        // reconstructs that run's phase totals. This is a self-
        // consistency test of the calibration arithmetic, so the
        // tolerance can be tight for simulation/inner products.
        let data = generate(&SyntheticConfig::small(5));
        let split = prepare_experiment(&data, 64, 8, 5);
        let ansatz = AnsatzConfig::new(2, 1, 0.5);
        let trunc = TruncationConfig::default();
        let be = CpuBackend::new();
        let k = 4;
        let run = distributed_gram(
            &split.train.features,
            &ansatz,
            &be,
            &trunc,
            k,
            Strategy::RoundRobin,
        );
        let n = split.train.features.len();
        let costs = PrimitiveCosts::from_distributed(&run, n);
        let f = forecast_training(&costs, n, k, Strategy::RoundRobin);

        let measured_sim: Duration = run.per_process.iter().map(|p| p.simulation).sum();
        let forecast_sim = f.simulation.mul_f64(k as f64);
        let rel = (forecast_sim.as_secs_f64() - measured_sim.as_secs_f64()).abs()
            / measured_sim.as_secs_f64().max(1e-12);
        assert!(rel < 0.35, "simulation forecast off by {:.0}%", rel * 100.0);
    }

    #[test]
    fn measure_returns_positive_costs() {
        let data = generate(&SyntheticConfig::small(9));
        let split = prepare_experiment(&data, 20, 6, 9);
        let be = CpuBackend::new();
        let costs = PrimitiveCosts::measure(
            &split.train.features[..6],
            &AnsatzConfig::new(2, 1, 0.5),
            &TruncationConfig::default(),
            &be,
        );
        assert!(costs.simulation > Duration::ZERO);
        assert!(costs.inner_product > Duration::ZERO);
        assert!(costs.communication_per_state > Duration::ZERO);
        // A d = 1 circuit simulates in well under a second at 6 qubits.
        assert!(costs.simulation < Duration::from_secs(1));
    }

    #[test]
    fn transfers_schedule_counts() {
        // 64 states over 4 processes: 16 per partition, 8 shipped per
        // process per round, 3 rounds -> 8·4·3 = 96 transfers.
        assert_eq!(round_robin_transfers(64, 4), 96);
        assert_eq!(round_robin_transfers(64, 1), 0);
        // Odd partition sizes round the half-partition up.
        assert_eq!(round_robin_transfers(10, 2), (5usize.div_ceil(2)) * 2);
    }
}
