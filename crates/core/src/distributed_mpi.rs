//! Gram-matrix distribution over the `qk-mpi` message-passing substrate.
//!
//! [`crate::distributed`] implements the paper's two strategies directly
//! on threads and channels. This module implements the *same* strategies
//! on the MPI-shaped API of [`qk_mpi`] — rank-symmetric SPMD code with
//! tagged sends, ring `send_recv` rotation and a final `gather` at rank
//! 0, which is structurally the program the paper runs under `mpi4py`.
//! Both implementations must produce identical kernels; the integration
//! tests pin that equivalence.
//!
//! Phase accounting matches [`crate::distributed::ProcessTimes`]:
//! compute phases on the per-thread CPU clock, communication (including
//! time blocked in receives) on the wall clock.

use crate::distributed::{
    assemble, block_ranges, pack_states, tile_grid_order, unpack_states, DistributedResult, Entry,
    ProcessTimes, Strategy,
};
use crate::states::simulate_states_serial;
use crate::timing::PhaseClock;
use qk_circuit::AnsatzConfig;
use qk_mpi::{run_world, Process, Source};
use qk_mps::{Mps, TruncationConfig};
use qk_tensor::backend::ExecutionBackend;
use std::time::Instant;

/// Tag for ring rotation messages (one tag per step keeps mismatched
/// steps from crossing).
const TAG_RING_BASE: u32 = 100;

/// Computes the training Gram matrix with the chosen strategy over
/// `num_ranks` simulated MPI ranks.
///
/// Produces the same kernel as [`crate::distributed::distributed_gram`];
/// the difference is the substrate (SPMD ranks exchanging messages
/// instead of threads sharing a channel topology).
pub fn mpi_distributed_gram(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
    num_ranks: usize,
    strategy: Strategy,
) -> DistributedResult {
    assert!(num_ranks >= 1, "need at least one rank");
    assert!(!rows.is_empty(), "need at least one data point");
    let n = rows.len();
    let start = Instant::now();

    // Per-rank results come back through run_world's return values — the
    // "job output" — while kernel entries travel through a gather, as the
    // paper's implementation does.
    struct RankOutput {
        times: ProcessTimes,
        comm_bytes: usize,
        simulations: usize,
        entries: Option<Vec<Entry>>, // Some only at rank 0
    }

    let outputs: Vec<RankOutput> = run_world(num_ranks, |p| {
        let (times, comm_bytes, simulations, entries) = match strategy {
            Strategy::NoMessaging => no_messaging_rank(p, rows, ansatz, backend, truncation),
            Strategy::RoundRobin => round_robin_rank(p, rows, ansatz, backend, truncation),
        };

        // Final collection: every rank gathers its entries to rank 0.
        let t0 = Instant::now();
        let gathered = p.gather(0, &encode_entries(&entries));
        let mut times = times;
        times.communication += t0.elapsed();

        let merged = gathered.map(|parts| {
            parts
                .iter()
                .flat_map(|bytes| decode_entries(bytes))
                .collect::<Vec<Entry>>()
        });
        RankOutput {
            times,
            comm_bytes,
            simulations,
            entries: merged,
        }
    });

    let per_process: Vec<ProcessTimes> = outputs.iter().map(|o| o.times).collect();
    let bytes_communicated: usize = outputs.iter().map(|o| o.comm_bytes).sum();
    let simulations_run: usize = outputs.iter().map(|o| o.simulations).sum();
    let entries = outputs
        .into_iter()
        .find_map(|o| o.entries)
        .expect("rank 0 gathered the entries");

    DistributedResult {
        kernel: assemble(n, entries.into_iter()),
        per_process,
        wall_time: start.elapsed(),
        bytes_communicated,
        simulations_run,
    }
}

/// Serializes kernel entries as `(u64, u64, f64)` little-endian triples.
fn encode_entries(entries: &[Entry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 24);
    for &(i, j, v) in entries {
        out.extend_from_slice(&(i as u64).to_le_bytes());
        out.extend_from_slice(&(j as u64).to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_entries`].
fn decode_entries(bytes: &[u8]) -> Vec<Entry> {
    assert_eq!(bytes.len() % 24, 0, "corrupt entry payload");
    bytes
        .chunks_exact(24)
        .map(|c| {
            let i = u64::from_le_bytes(c[0..8].try_into().unwrap()) as usize;
            let j = u64::from_le_bytes(c[8..16].try_into().unwrap()) as usize;
            let v = f64::from_le_bytes(c[16..24].try_into().unwrap());
            (i, j, v)
        })
        .collect()
}

/// No-messaging strategy, rank-local part: simulate every block the
/// rank's tiles touch, compute the tile entries, no peer traffic.
fn no_messaging_rank(
    p: &mut Process,
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
) -> (ProcessTimes, usize, usize, Vec<Entry>) {
    let n = rows.len();
    let k = p.world_size();
    let g = tile_grid_order(k).min(n.max(1));
    let blocks = block_ranges(n, g);
    let tiles: Vec<(usize, usize)> = (0..g).flat_map(|a| (a..g).map(move |b| (a, b))).collect();
    let my_tiles: Vec<(usize, usize)> = tiles.iter().copied().skip(p.rank()).step_by(k).collect();

    let clock = PhaseClock::new();
    let mut times = ProcessTimes::default();
    let mut simulations = 0usize;
    let mut entries: Vec<Entry> = Vec::new();

    let mut needed: Vec<usize> = my_tiles.iter().flat_map(|&(a, b)| [a, b]).collect();
    needed.sort_unstable();
    needed.dedup();
    let mut states: Vec<Option<Vec<Mps>>> = vec![None; blocks.len()];
    for &blk in &needed {
        let slice = &rows[blocks[blk].clone()];
        let t0 = clock.now();
        let batch = simulate_states_serial(slice, ansatz, backend, truncation);
        times.simulation += clock.since(t0);
        simulations += slice.len();
        states[blk] = Some(batch.states);
    }
    for &(a, b) in &my_tiles {
        let sa = states[a].as_ref().expect("block simulated");
        let sb = states[b].as_ref().expect("block simulated");
        let t0 = clock.now();
        for (ia, va) in sa.iter().enumerate() {
            for (ib, vb) in sb.iter().enumerate() {
                let gi = blocks[a].start + ia;
                let gj = blocks[b].start + ib;
                if a == b && gj <= gi {
                    continue;
                }
                entries.push((gi, gj, va.inner_with(backend, vb).norm_sqr()));
            }
        }
        times.inner_products += clock.since(t0);
    }
    (times, 0, simulations, entries)
}

/// Round-robin strategy, rank-local part: simulate the owned block once,
/// rotate blocks around the ring with `send_recv`.
fn round_robin_rank(
    p: &mut Process,
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
) -> (ProcessTimes, usize, usize, Vec<Entry>) {
    let k = p.world_size();
    if k == 1 {
        return no_messaging_rank(p, rows, ansatz, backend, truncation);
    }
    let n = rows.len();
    let blocks = block_ranges(n, k);
    let rank = p.rank();
    let my_range = blocks[rank].clone();
    let slice = &rows[my_range.clone()];

    let clock = PhaseClock::new();
    let mut times = ProcessTimes::default();
    let mut entries: Vec<Entry> = Vec::new();
    let mut comm_bytes = 0usize;

    // Phase 1: simulate the owned block exactly once.
    let t0 = clock.now();
    let own = simulate_states_serial(slice, ansatz, backend, truncation).states;
    times.simulation += clock.since(t0);
    let simulations = slice.len();

    // Phase 2: local symmetric tile, upper half.
    let t0 = clock.now();
    for i in 0..own.len() {
        for j in (i + 1)..own.len() {
            let v = own[i].inner_with(backend, &own[j]).norm_sqr();
            entries.push((my_range.start + i, my_range.start + j, v));
        }
    }
    times.inner_products += clock.since(t0);

    // Phase 3: rotate blocks leftward around the ring. After `step`
    // rotations this rank holds the block owned by `rank + step`.
    let left = (rank + k - 1) % k;
    let right = (rank + 1) % k;
    let full_steps = (k - 1) / 2;
    let half_step = k.is_multiple_of(2);
    let steps = full_steps + usize::from(half_step);
    let mut traveling = own.clone();
    for step in 1..=steps {
        let t0 = Instant::now();
        let payload = pack_states(&traveling);
        comm_bytes += payload.len();
        let msg = p.send_recv(
            left,
            TAG_RING_BASE + step as u32,
            &payload,
            Source::Rank(right),
            TAG_RING_BASE + step as u32,
        );
        traveling = unpack_states(&msg.payload);
        times.communication += t0.elapsed();
        let traveling_owner = (rank + step) % k;

        // On the final half-step of an even ring only the lower half of
        // the ranks compute, so each cross tile is produced once.
        if half_step && step == steps && rank >= k / 2 {
            continue;
        }
        let other_range = blocks[traveling_owner].clone();
        let t0 = clock.now();
        for (i, a) in own.iter().enumerate() {
            for (j, b) in traveling.iter().enumerate() {
                let v = a.inner_with(backend, b).norm_sqr();
                entries.push((my_range.start + i, other_range.start + j, v));
            }
        }
        times.inner_products += clock.since(t0);
    }

    (times, comm_bytes, simulations, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::distributed_gram;
    use qk_tensor::backend::CpuBackend;

    fn rows(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..m).map(|j| ((i * m + j) % 13) as f64 * 0.15).collect())
            .collect()
    }

    fn check_matches_channel_implementation(n: usize, k: usize, strategy: Strategy) {
        let data = rows(n, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.7);
        let trunc = TruncationConfig::default();
        let via_mpi = mpi_distributed_gram(&data, &cfg, &be, &trunc, k, strategy);
        let via_channels = distributed_gram(&data, &cfg, &be, &trunc, k, strategy);
        assert_eq!(via_mpi.kernel.len(), n);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (via_mpi.kernel.get(i, j) - via_channels.kernel.get(i, j)).abs() < 1e-12,
                    "{strategy:?} k={k}: K[{i}][{j}]"
                );
            }
        }
        assert_eq!(via_mpi.per_process.len(), k);
    }

    #[test]
    fn no_messaging_matches_channel_implementation() {
        for k in [1usize, 2, 4, 5] {
            check_matches_channel_implementation(9, k, Strategy::NoMessaging);
        }
    }

    #[test]
    fn round_robin_matches_channel_implementation() {
        for k in [2usize, 3, 4, 5, 6] {
            check_matches_channel_implementation(12, k, Strategy::RoundRobin);
        }
    }

    #[test]
    fn round_robin_handles_ragged_blocks() {
        check_matches_channel_implementation(11, 4, Strategy::RoundRobin);
        check_matches_channel_implementation(7, 3, Strategy::RoundRobin);
    }

    #[test]
    fn round_robin_simulates_once_and_communicates() {
        let data = rows(12, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.7);
        let result = mpi_distributed_gram(
            &data,
            &cfg,
            &be,
            &TruncationConfig::default(),
            4,
            Strategy::RoundRobin,
        );
        assert_eq!(result.simulations_run, 12);
        assert!(result.bytes_communicated > 0);
    }

    #[test]
    fn no_messaging_has_zero_ring_traffic() {
        let data = rows(10, 4);
        let be = CpuBackend::new();
        let cfg = AnsatzConfig::new(2, 1, 0.7);
        let result = mpi_distributed_gram(
            &data,
            &cfg,
            &be,
            &TruncationConfig::default(),
            4,
            Strategy::NoMessaging,
        );
        // Entry gathering is the only traffic; ring bytes are zero.
        assert_eq!(result.bytes_communicated, 0);
        assert!(result.simulations_run > 10, "redundant simulation expected");
    }

    #[test]
    fn entry_codec_roundtrip() {
        let entries = vec![(0usize, 3usize, 0.25), (7, 9, 1.0), (2, 2, 1e-9)];
        let decoded = decode_entries(&encode_entries(&entries));
        assert_eq!(decoded, entries);
    }
}
