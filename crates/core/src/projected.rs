//! Projected quantum kernel (the alternative method the paper's
//! introduction cites: Huang et al., Nat. Commun. 12, 2631).
//!
//! Instead of fidelity overlaps, each data point is mapped to the vector
//! of single-qubit Pauli expectations of its feature-map state (`3m` real
//! numbers), and the kernel is a Gaussian RBF over those projected
//! features:
//!
//! ```text
//! K_pq = exp( -alpha * sum_{q,P} ( <P_q>_p - <P_q>_q' )^2 )
//! ```
//!
//! Only `N` MPS simulations are needed (no pairwise state contraction),
//! which trades kernel expressivity for an inner-product phase that is
//! linear instead of quadratic in `N`.

use crate::states::simulate_states;
use qk_circuit::AnsatzConfig;
use qk_mps::TruncationConfig;
use qk_svm::{KernelBlock, KernelMatrix};
use qk_tensor::backend::ExecutionBackend;
use rayon::prelude::*;

/// Projected features (`3m` Pauli expectations per row) for a batch.
pub fn projected_feature_batch(
    rows: &[Vec<f64>],
    ansatz: &AnsatzConfig,
    backend: &dyn ExecutionBackend,
    truncation: &TruncationConfig,
) -> Vec<Vec<f64>> {
    let batch = simulate_states(rows, ansatz, backend, truncation);
    batch
        .states
        .into_par_iter()
        .map(|mut s| s.projected_features())
        .collect()
}

/// Bandwidth heuristic for the projected kernel: `1 / (dim * var)` over
/// the projected features, mirroring the paper's Gaussian convention.
pub fn projected_bandwidth(features: &[Vec<f64>]) -> f64 {
    qk_svm::scale_bandwidth(features)
}

/// Symmetric projected-kernel Gram matrix.
pub fn projected_gram(features: &[Vec<f64>], alpha: f64) -> KernelMatrix {
    KernelMatrix::from_fn(features.len(), |i, j| {
        rbf(&features[i], &features[j], alpha)
    })
}

/// Rectangular projected-kernel block (rows = test, cols = train).
pub fn projected_block(test: &[Vec<f64>], train: &[Vec<f64>], alpha: f64) -> KernelBlock {
    KernelBlock::from_fn(test.len(), train.len(), |i, j| {
        rbf(&test[i], &train[j], alpha)
    })
}

fn rbf(a: &[f64], b: &[f64], alpha: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-alpha * d2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_bench_test_shim::*;

    // Local shim: small deterministic rows in the (0,2) domain.
    mod qk_bench_test_shim {
        pub fn rows(n: usize, m: usize) -> Vec<Vec<f64>> {
            (0..n)
                .map(|i| (0..m).map(|j| ((i * m + j) % 9) as f64 * 0.22).collect())
                .collect()
        }
    }

    use qk_tensor::backend::CpuBackend;

    #[test]
    fn feature_batch_shape() {
        let be = CpuBackend::new();
        let feats = projected_feature_batch(
            &rows(5, 4),
            &AnsatzConfig::new(2, 1, 0.7),
            &be,
            &TruncationConfig::default(),
        );
        assert_eq!(feats.len(), 5);
        assert!(feats.iter().all(|f| f.len() == 12));
        assert!(feats.iter().flatten().all(|v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn projected_gram_is_valid_kernel() {
        let be = CpuBackend::new();
        let feats = projected_feature_batch(
            &rows(6, 4),
            &AnsatzConfig::new(2, 1, 0.7),
            &be,
            &TruncationConfig::default(),
        );
        let alpha = projected_bandwidth(&feats);
        let k = projected_gram(&feats, alpha);
        for i in 0..6 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..6 {
                assert!((0.0..=1.0).contains(&k.get(i, j)));
            }
        }
        assert_eq!(k.max_asymmetry(), 0.0);
    }

    #[test]
    fn identical_rows_give_unit_kernel_entry() {
        let be = CpuBackend::new();
        let mut data = rows(2, 4);
        data[1] = data[0].clone();
        let feats = projected_feature_batch(
            &data,
            &AnsatzConfig::new(2, 1, 0.7),
            &be,
            &TruncationConfig::default(),
        );
        let k = projected_gram(&feats, 1.0);
        assert!((k.get(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_matches_gram_on_same_rows() {
        let be = CpuBackend::new();
        let feats = projected_feature_batch(
            &rows(4, 4),
            &AnsatzConfig::new(2, 1, 0.7),
            &be,
            &TruncationConfig::default(),
        );
        let k = projected_gram(&feats, 0.8);
        let b = projected_block(&feats, &feats, 0.8);
        for i in 0..4 {
            for j in 0..4 {
                assert!((k.get(i, j) - b.row(i)[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn projected_kernel_trains_an_svm() {
        use qk_data::{generate, prepare_experiment, SyntheticConfig};
        use qk_svm::{default_c_grid, sweep_c};
        // A large enough split that test AUC is stable (tiny test sets
        // make AUC a coin flip regardless of the kernel).
        let data = generate(&SyntheticConfig {
            noise: 1.0,
            num_features: 12,
            num_illicit: 150,
            num_licit: 350,
            ..SyntheticConfig::small(77)
        });
        let split = prepare_experiment(&data, 240, 10, 77);
        let be = CpuBackend::new();
        let ansatz = AnsatzConfig::new(2, 1, 0.3);
        let tc = TruncationConfig::default();
        let train_f = projected_feature_batch(&split.train.features, &ansatz, &be, &tc);
        let test_f = projected_feature_batch(&split.test.features, &ansatz, &be, &tc);
        let alpha = projected_bandwidth(&train_f);
        let k = projected_gram(&train_f, alpha);
        let b = projected_block(&test_f, &train_f, alpha);
        let sweep = sweep_c(
            &k,
            &split.train.label_signs(),
            &b,
            &split.test.label_signs(),
            &default_c_grid(),
            1e-3,
        );
        let auc = sweep.best_by_test_auc().test.auc;
        assert!((0.0..=1.0).contains(&auc));
        assert!(auc > 0.5, "projected kernel should beat chance, got {auc}");
    }
}
