//! Violating fixture for the determinism pass: one of each forbidden
//! construct inside a pinned module.

use std::collections::HashMap;
use std::time::Instant;

pub struct Kernel {
    weights: HashMap<u64, f64>,
}

impl Kernel {
    /// FMA on an `f64` receiver: single rounding, bitwise-divergent
    /// from the non-fused reference.
    pub fn accumulate(&self, acc: f64, a: f64, x: f64) -> f64 {
        acc.mul_add(a, x)
    }

    /// Fully-qualified form of the same bug.
    pub fn accumulate_qualified(a: f64, b: f64, c: f64) -> f64 {
        f64::mul_add(a, b, c)
    }

    /// Hash-order leak into a digest: per-process random iteration.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for (k, v) in &self.weights {
            h = (h ^ k).wrapping_mul(0x100000001b3);
            h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Wall-clock read in a value-producing path, not allowlisted.
    pub fn salted_digest(&self) -> u64 {
        self.digest() ^ Instant::now().elapsed().as_nanos() as u64
    }
}
