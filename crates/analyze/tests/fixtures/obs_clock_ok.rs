//! Passing fixture for the qk-obs clock policy: clock and process-id
//! reads confined to the allowlisted observability entry points, with
//! every downstream consumer taking the captured value as an argument.

use std::time::Instant;

pub struct SpanGuard {
    start: Instant,
    path: String,
}

impl SpanGuard {
    /// Allowlisted in the fixture policy: the span's start instant only
    /// ever feeds a duration report, never a computed kernel value.
    pub fn enter(path: &str) -> SpanGuard {
        SpanGuard {
            start: Instant::now(),
            path: path.to_string(),
        }
    }

    /// `.elapsed()` on a stored instant is reporting, not an ambient
    /// read — fine anywhere.
    pub fn close(self) -> (String, f64) {
        (self.path, self.start.elapsed().as_secs_f64())
    }
}

pub struct Journal {
    epoch: Instant,
    lines: Vec<String>,
}

impl Journal {
    /// Allowlisted: the journal epoch stamps `t_us` fields that the
    /// determinism comparator strips before diffing.
    pub fn open_bounded(max_events: usize) -> Journal {
        Journal {
            epoch: Instant::now(),
            lines: Vec::with_capacity(max_events),
        }
    }

    /// Stamping against the stored epoch reads no ambient state.
    pub fn event(&mut self, name: &str) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        self.lines.push(format!("{{\"t_us\":{t_us},\"event\":\"{name}\"}}"));
    }
}
