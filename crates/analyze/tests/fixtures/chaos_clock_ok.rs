//! Passing fixture for the qk-chaos clock policy: the only clock read
//! lives in the allowlisted backoff loop (`RetryPolicy::run`), while
//! fault *decisions* are a pure function of (seed, site, occurrence) —
//! no ambient state anywhere near them.

use std::time::{Duration, Instant};

pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_delay: Duration,
    pub max_elapsed: Option<Duration>,
}

impl RetryPolicy {
    /// Allowlisted in the fixture policy: the elapsed-time cap bounds
    /// wall-clock spent retrying; it never influences what a fault
    /// decision or a retried operation *computes*.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    let over_budget = self
                        .max_elapsed
                        .is_some_and(|cap| started.elapsed() >= cap);
                    if attempt >= self.max_attempts || over_budget {
                        return Err(e);
                    }
                    std::thread::sleep(self.base_delay);
                }
            }
        }
    }
}

/// The replay contract: a fault decision hashes the (seed, site,
/// occurrence) triple and nothing else, so the schedule is bitwise
/// reproducible from the plan alone.
pub fn decide(seed: u64, site: &str, occurrence: u64) -> bool {
    let mut h = seed ^ occurrence.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h & 1 == 0
}
