//! Violating fixture for the qk-obs trace clock policy: tile-level
//! instrumentation that stamps events by reading the clock directly
//! inside pinned compute code instead of asking the tracer for
//! `now_us`. The allowlist names `Tracer::*` entry points — it grants
//! nothing to kernel files that try to self-instrument.

use std::time::Instant;

pub struct TileTimeline {
    spans: Vec<(u64, u64)>,
}

impl TileTimeline {
    /// An inlined "trace stamp" in the tile loop: the ambient clock
    /// read lives in an un-allowlisted kernel function, so the
    /// determinism pass must flag it even though the value only feeds
    /// the timeline.
    pub fn stamp_tile(&mut self, values: &mut [f64], inputs: &[f64]) -> f64 {
        let start = Instant::now();
        let mut acc = 0.0;
        for (slot, v) in values.iter_mut().zip(inputs) {
            *slot += v;
            acc += *slot;
        }
        let dur_us = start.elapsed().as_micros() as u64;
        self.spans.push((self.spans.len() as u64, dur_us));
        acc
    }
}

/// Shard naming via a process-id salt in the kernel crate: also an
/// ambient read, also flagged when the function is not on the
/// allowlist.
pub fn shard_name(rank: u32) -> String {
    format!("trace_rank_{rank}.{}.jsonl", std::process::id())
}
