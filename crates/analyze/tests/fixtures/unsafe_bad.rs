//! Violating fixture for the unsafe-audit pass: an unjustified unsafe
//! block (no `// SAFETY:` anywhere near it).

pub fn dispatch(x: &[f64]) -> f64 {
    // This comment is not a safety justification.
    unsafe { *x.as_ptr() }
}
