//! Passing fixture for the trainer clock policy: the only ambient read
//! is the process id inside the allowlisted atomic-rename temp naming
//! (`TrainerCkpt::store`); snapshot contents and resume decisions are a
//! pure function of the job fingerprint and SMO state.

use std::path::{Path, PathBuf};

pub struct TrainerCkpt {
    pub dir: PathBuf,
    pub fingerprint: u64,
}

impl TrainerCkpt {
    /// Allowlisted in the fixture policy: the pid only names the
    /// scratch file so concurrent writers cannot collide; it never
    /// reaches the snapshot bytes.
    pub fn store(&self, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self
            .dir
            .join(format!(".trainer.{}.tmp", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.dir.join("trainer.qks"))
    }
}

/// The resume contract: a snapshot is adopted iff its embedded
/// fingerprint matches the job's — a pure comparison, no clock, no
/// mtime heuristics.
pub fn should_adopt(snapshot_fingerprint: u64, job_fingerprint: u64) -> bool {
    snapshot_fingerprint == job_fingerprint
}

/// Checksums are position-dependent folds over the snapshot bytes.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Paths derive from the checkpoint directory alone.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("trainer.qks")
}
