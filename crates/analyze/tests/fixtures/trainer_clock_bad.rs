//! Violating fixture for the trainer clock policy: snapshot contents
//! stamped from the wall clock (two resumed runs can never be bitwise
//! identical), a staleness heuristic deciding resume from elapsed time,
//! and a hash-ordered error cache.

use std::collections::HashMap;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub struct Snapshot {
    pub alphas: Vec<f64>,
    pub stamp_us: u64,
}

impl Snapshot {
    /// VIOLATION: embedding a wall-clock stamp in the snapshot makes
    /// its bytes — and the checksum over them — irreproducible.
    pub fn stamp(&mut self) {
        self.stamp_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64);
    }
}

/// VIOLATION: resume decided by a clock-derived staleness window — the
/// same checkpoint is adopted or discarded depending on when the
/// process happens to restart.
pub fn should_adopt(written_at: Instant) -> bool {
    Instant::now().duration_since(written_at).as_secs() < 60
}

/// VIOLATION: a hash-ordered error cache makes the pass's update order
/// (and therefore the converged alphas) run-dependent.
pub fn worst_violator(errors: &HashMap<usize, f64>) -> Option<usize> {
    errors
        .iter()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .map(|(i, _)| *i)
}
