//! Passing fixture for the fingerprint-coverage pass: every field of
//! the job struct is hashed.

pub struct JobSpec {
    pub encoding: u64,
    pub rows: usize,
    pub cols: usize,
    pub tile: usize,
}

impl JobSpec {
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for v in [
            self.encoding,
            self.rows as u64,
            self.cols as u64,
            self.tile as u64,
        ] {
            h = (h ^ v).wrapping_mul(0x100000001b3);
        }
        h
    }
}
