//! Passing fixture for the qk-obs trace clock policy: the tracer's
//! ambient reads live only in the three allowlisted entry points
//! (`Tracer::new`, `Tracer::now_us`, `Tracer::write_shards`); every
//! recording call takes its stamps as arguments.

use std::path::{Path, PathBuf};
use std::time::Instant;

pub struct Tracer {
    epoch: Instant,
    events: Vec<(u64, u64)>,
}

impl Tracer {
    /// Allowlisted: the epoch instant anchors every `t_us` stamp and
    /// never feeds a computed kernel value.
    pub fn new() -> Tracer {
        Tracer {
            epoch: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Allowlisted: the single clock read on the recording path.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Stamps arrive as arguments — no ambient state read here.
    pub fn record_since(&mut self, start_us: u64, end_us: u64) {
        self.events.push((start_us, end_us.saturating_sub(start_us)));
    }

    /// Allowlisted ambient read: the process id only tags the
    /// temp-file name used for the durable shard rename.
    pub fn write_shards(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let body: String = self
            .events
            .iter()
            .map(|(t, d)| format!("{{\"t_us\":{t},\"dur_us\":{d}}}\n"))
            .collect();
        let path = dir.join("trace_rank_0.jsonl");
        let tmp = dir.join(format!(".trace_rank_0.{}.tmp", std::process::id()));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}
