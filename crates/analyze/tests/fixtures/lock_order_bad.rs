//! Violating fixture for the lock-order pass: `hit` takes `cache` then
//! `stats`, `inverted` takes `stats` then `cache` (a deadlockable
//! cycle), and `reply` blocks on a channel send while still holding the
//! cache guard.

impl Server {
    pub fn hit(&self) {
        let cache = self.cache.lock().unwrap();
        let mut stats = self.stats.lock().unwrap();
        stats.record(cache.len());
    }

    pub fn inverted(&self) {
        let mut stats = self.stats.lock().unwrap();
        let cache = self.cache.lock().unwrap();
        stats.record(cache.len());
    }

    pub fn reply(&self, job: &Job) {
        let cache = self.cache.lock().unwrap();
        job.reply.send(cache.get(&job.key)).ok();
    }
}
