//! Passing fixture for the unsafe-audit pass: justified sites inside an
//! allowlisted path (the fixture policy allowlists this file's virtual
//! path under `crates/tensor/`).

pub fn dispatch(x: &[f64]) -> f64 {
    if cfg!(target_arch = "x86_64") {
        // SAFETY: feature support was verified by the dispatcher above.
        unsafe { kernel(x.as_ptr(), x.len()) }
    } else {
        x.iter().sum()
    }
}

/// # Safety
/// `ptr` must point to `len` readable `f64`s.
pub unsafe fn kernel(ptr: *const f64, len: usize) -> f64 {
    // SAFETY: the caller guarantees `ptr..ptr+len` is readable; the
    // loop never exceeds `len`.
    let mut acc = 0.0;
    for i in 0..len {
        acc += *ptr.add(i);
    }
    acc
}
