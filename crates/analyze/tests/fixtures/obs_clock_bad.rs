//! Violating fixture for the qk-obs clock policy: instrumentation that
//! reads the clock directly inside pinned compute code instead of going
//! through the allowlisted qk-obs entry points.

use std::time::Instant;

pub struct Tile {
    values: Vec<f64>,
}

impl Tile {
    /// A "quick timing hack" in the tile kernel: the ambient clock read
    /// lives in an un-allowlisted function, so the determinism pass must
    /// flag it even though the value only feeds a log line.
    pub fn compute(&mut self, inputs: &[f64]) -> f64 {
        let start = Instant::now();
        let mut acc = 0.0;
        for (slot, v) in self.values.iter_mut().zip(inputs) {
            *slot += v;
            acc += *slot;
        }
        eprintln!("tile took {:?}", start.elapsed());
        acc
    }
}

/// Process-id salt in a helper: also an ambient read, also flagged when
/// the function is not on the allowlist.
pub fn scratch_name(seq: u64) -> String {
    format!(".tmp.{}.{seq}", std::process::id())
}
