//! Passing fixture for the lock-order pass: two call paths that take
//! `cache` then `stats` in the same global order, a guard scoped to end
//! before a channel send, and a condvar wait (which releases its guard
//! and is exempt).

impl Server {
    pub fn hit(&self) {
        let cache = self.cache.lock().unwrap();
        let mut stats = self.stats.lock().unwrap();
        stats.record(cache.len());
    }

    pub fn warm(&self) {
        let cache = self.cache.lock().unwrap();
        {
            let mut stats = self.stats.lock().unwrap();
            stats.note_warm();
        }
        cache.prefetch();
    }

    pub fn reply(&self, job: &Job) {
        let value = {
            let cache = self.cache.lock().unwrap();
            cache.get(&job.key)
        };
        job.reply.send(value).ok();
    }
}

impl Mailbox {
    pub fn take(&self) -> Envelope {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(env) = queue.pop() {
                return env;
            }
            queue = self.arrived.wait(queue).unwrap();
        }
    }
}
