//! Violating fixture for the no-alloc pass: the declared hot path
//! allocates in five different ways.

/// Declared in the fixture policy as no-alloc.
pub fn compute_tile(rows: usize, cols: usize, states: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0f64; rows * cols];
    let scratch: Vec<f64> = states.to_vec();
    let copy = scratch.clone();
    let boxed = Box::new(copy);
    let doubled: Vec<f64> = boxed.iter().map(|x| x * 2.0).collect();
    for r in 0..rows {
        for c in 0..cols {
            out[r * cols + c] = doubled[r] * doubled[c];
        }
    }
    out
}
