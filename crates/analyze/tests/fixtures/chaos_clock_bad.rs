//! Violating fixture for the qk-chaos clock policy: a fault decision
//! seeded from the wall clock (irreproducible schedules) and a jitter
//! helper reading time outside the allowlisted backoff loop.

use std::time::Instant;

pub struct FaultSite {
    pub name: String,
    pub occurrence: u64,
}

impl FaultSite {
    /// VIOLATION: deciding a fault from an ambient clock read makes the
    /// injection schedule unreplayable — the whole point of the seeded
    /// plan is that this is impossible.
    pub fn fire_now(&mut self) -> bool {
        self.occurrence += 1;
        Instant::now().elapsed().subsec_nanos() & 1 == 0
    }
}

/// VIOLATION: jitter derived from the process id, outside any
/// allowlisted function.
pub fn jitter_salt() -> u64 {
    u64::from(std::process::id())
}
