//! Passing fixture for the no-alloc pass: a declared hot-path function
//! that writes through caller-provided buffers only.

/// Declared in the fixture policy as no-alloc.
pub fn compute_tile(rows: usize, cols: usize, states: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out[r * cols + c] = states[r] * states[c];
        }
    }
}

/// Not declared no-alloc: orchestration may allocate freely.
pub fn run(rows: usize, cols: usize, states: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0f64; rows * cols];
    compute_tile(rows, cols, states, &mut out);
    out
}
