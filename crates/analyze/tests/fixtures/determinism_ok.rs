//! Passing fixture for the determinism pass: a pinned kernel that keeps
//! every rounding separate, uses ordered containers, and only touches
//! the clock from an allowlisted reporting function.

use std::collections::BTreeMap;
use std::time::Instant;

pub struct Kernel {
    weights: BTreeMap<u64, f64>,
}

impl Kernel {
    /// Non-fused complex multiply-accumulate: the `mul_add` receiver is
    /// a project `Complex64`, not an `f64`, so it expands to separate
    /// mul and add roundings and is allowed.
    pub fn accumulate(&self, acc: Complex64, a: Complex64, b: Complex64) -> Complex64 {
        let fused_free = acc.mul_add(a, b);
        fused_free.conj_mul_add(a, b)
    }

    /// Plain separate mul/add on floats is always fine.
    pub fn axpy(&self, y: f64, a: f64, x: f64) -> f64 {
        y + a * x
    }

    /// Ordered iteration feeding a digest: deterministic.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for (k, v) in &self.weights {
            h = (h ^ k).wrapping_mul(0x100000001b3);
            h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Allowlisted in the fixture policy: the clock feeds a report field,
/// never a computed value.
pub fn timed_run(kernel: &Kernel) -> (u64, f64) {
    let start = Instant::now();
    let digest = kernel.digest();
    (digest, start.elapsed().as_secs_f64())
}
