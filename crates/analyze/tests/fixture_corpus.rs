//! Fixture corpus: one passing and one violating case per lint pass
//! (under `tests/fixtures/`, excluded from the workspace scan), plus
//! the live-workspace gate: the real tree must be violation-free.

use std::fs;
use std::path::{Path, PathBuf};

use qk_analyze::passes;
use qk_analyze::policy::Policy;
use qk_analyze::report::Finding;
use qk_analyze::scan::FileModel;

/// Loads a fixture under a virtual workspace-relative path so the
/// policy's path rules apply to it.
fn fixture(name: &str, virtual_path: &str) -> FileModel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    FileModel::scan(PathBuf::from(virtual_path), &src)
}

fn assert_all_pass(findings: &[Finding], pass: &str) {
    for f in findings {
        assert_eq!(f.pass, pass, "unexpected pass in finding: {f:?}");
    }
}

#[test]
fn determinism_fixtures() {
    let policy = Policy::parse(
        "[determinism]\npinned = [\"pinned.rs\"]\nallow_clock_in = [\"timed_run\"]\n",
    )
    .unwrap();
    let ok = fixture("determinism_ok.rs", "pinned.rs");
    assert!(
        passes::determinism::run(&[ok], &policy).is_empty(),
        "passing determinism fixture must be clean"
    );
    let bad = fixture("determinism_bad.rs", "pinned.rs");
    let findings = passes::determinism::run(&[bad], &policy);
    assert_all_pass(&findings, "determinism");
    // One per construct: `.mul_add` on f64, `f64::mul_add`, the HashMap
    // type (twice: use + field), and the clock read.
    assert!(findings.len() >= 4, "got {findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("mul_add")));
    assert!(findings.iter().any(|f| f.message.contains("HashMap")));
    assert!(findings
        .iter()
        .any(|f| f.function == "Kernel::salted_digest"));
}

#[test]
fn obs_clock_fixtures() {
    // Mirrors the live analyze.toml shape: the whole obs crate pinned by
    // directory prefix, with only the audited entry points allowed to
    // touch the clock.
    let policy = Policy::parse(
        "[determinism]\npinned = [\"crates/obs/src/\", \"crates/gram/src/engine.rs\"]\n\
         allow_clock_in = [\"SpanGuard::enter\", \"Journal::open_bounded\"]\n",
    )
    .unwrap();

    // The qk-obs idiom passes: ambient reads only in allowlisted
    // functions, everything downstream works from stored instants.
    let ok = fixture("obs_clock_ok.rs", "crates/obs/src/span.rs");
    assert!(
        passes::determinism::run(&[ok], &policy).is_empty(),
        "allowlisted obs clock sites must be clean"
    );

    // The same allowlist does NOT grant instrumented kernel files the
    // right to read clocks directly: a timing hack in the engine and a
    // process-id salt in a helper are both still flagged.
    let bad = fixture("obs_clock_bad.rs", "crates/gram/src/engine.rs");
    let findings = passes::determinism::run(&[bad], &policy);
    assert_all_pass(&findings, "determinism");
    assert_eq!(findings.len(), 2, "got {findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.function == "Tile::compute" && f.message.contains("Instant::now")),
        "ambient clock read in a kernel fn must be flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.function == "scratch_name" && f.message.contains("process::id")),
        "process-id read outside the allowlist must be flagged: {findings:?}"
    );

    // Directory pinning means the same violations inside the obs crate
    // itself are flagged too — the allowlist names functions, not files.
    let bad_in_obs = fixture("obs_clock_bad.rs", "crates/obs/src/journal.rs");
    assert_eq!(
        passes::determinism::run(&[bad_in_obs], &policy).len(),
        2,
        "un-allowlisted clock reads inside crates/obs/ are not exempt"
    );
}

#[test]
fn trace_clock_fixtures() {
    // Mirrors the live analyze.toml shape for the trace module: the obs
    // crate pinned by directory prefix alongside the instrumented gram
    // engine, with only the tracer's audited entry points allowed to
    // touch the clock.
    let policy = Policy::parse(
        "[determinism]\npinned = [\"crates/obs/src/\", \"crates/gram/src/engine.rs\"]\n\
         allow_clock_in = [\"Tracer::new\", \"Tracer::now_us\", \"Tracer::write_shards\"]\n",
    )
    .unwrap();

    // The tracer idiom passes: the epoch read, the stamp read, and the
    // pid-tagged temp name are all in allowlisted functions; recording
    // takes stamps as arguments.
    let ok = fixture("trace_clock_ok.rs", "crates/obs/src/trace.rs");
    assert!(
        passes::determinism::run(&[ok], &policy).is_empty(),
        "allowlisted tracer clock sites must be clean"
    );

    // The allowlist grants nothing to kernel files that self-instrument:
    // an inline trace stamp in the tile loop and a pid-salted shard name
    // are both flagged.
    let bad = fixture("trace_clock_bad.rs", "crates/gram/src/engine.rs");
    let findings = passes::determinism::run(&[bad], &policy);
    assert_all_pass(&findings, "determinism");
    assert_eq!(findings.len(), 2, "got {findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.function == "TileTimeline::stamp_tile" && f.message.contains("Instant::now")),
        "inline trace stamp in a kernel fn must be flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.function == "shard_name" && f.message.contains("process::id")),
        "pid-salted shard name outside the allowlist must be flagged: {findings:?}"
    );

    // Directory pinning applies inside the obs crate too: the same
    // violations in a different obs file are still flagged — the
    // allowlist names functions, not files.
    let bad_in_obs = fixture("trace_clock_bad.rs", "crates/obs/src/trace.rs");
    assert_eq!(
        passes::determinism::run(&[bad_in_obs], &policy).len(),
        2,
        "un-allowlisted clock reads inside crates/obs/ are not exempt"
    );
}

#[test]
fn chaos_clock_fixtures() {
    // Mirrors the live analyze.toml shape: the whole chaos crate pinned
    // by directory prefix, with only the audited backoff loop allowed
    // to read the clock — and the same allowlist granting nothing to
    // kernel files.
    let policy = Policy::parse(
        "[determinism]\npinned = [\"crates/chaos/src/\", \"crates/gram/src/engine.rs\"]\n\
         allow_clock_in = [\"RetryPolicy::run\"]\n",
    )
    .unwrap();

    // The qk-chaos idiom passes: the elapsed cap inside the allowlisted
    // retry loop is fine, fault decisions stay pure.
    let ok = fixture("chaos_clock_ok.rs", "crates/chaos/src/retry.rs");
    assert!(
        passes::determinism::run(&[ok], &policy).is_empty(),
        "allowlisted chaos backoff clock site must be clean"
    );

    // Clock-seeded fault decisions and jitter salts are flagged inside
    // the chaos crate itself...
    let bad = fixture("chaos_clock_bad.rs", "crates/chaos/src/plan.rs");
    let findings = passes::determinism::run(&[bad], &policy);
    assert_all_pass(&findings, "determinism");
    assert_eq!(findings.len(), 2, "got {findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.function == "FaultSite::fire_now" && f.message.contains("Instant::now")),
        "clock-seeded fault decision must be flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.function == "jitter_salt" && f.message.contains("process::id")),
        "process-id jitter outside the allowlist must be flagged: {findings:?}"
    );

    // ...and the RetryPolicy::run allowlist entry does not leak into
    // pinned kernel files: the same clock-reading retry loop pasted
    // into the engine is still clean ONLY because the allowlist names
    // functions; the surrounding violations prove the file is checked.
    let bad_in_engine = fixture("chaos_clock_bad.rs", "crates/gram/src/engine.rs");
    assert_eq!(
        passes::determinism::run(&[bad_in_engine], &policy).len(),
        2,
        "un-allowlisted clock reads in a kernel file are not exempt"
    );
}

#[test]
fn trainer_clock_fixtures() {
    // Mirrors the live analyze.toml shape: the crash-safe trainer pinned
    // as a single file, with only the atomic-rename temp naming in
    // `TrainerCkpt::store` allowed to read ambient process state.
    let policy = Policy::parse(
        "[determinism]\npinned = [\"crates/svm/src/trainer.rs\"]\n\
         allow_clock_in = [\"TrainerCkpt::store\"]\n",
    )
    .unwrap();

    // The trainer idiom passes: pid-tagged temp naming inside the
    // allowlisted store, pure fingerprint-equality resume decisions.
    let ok = fixture("trainer_clock_ok.rs", "crates/svm/src/trainer.rs");
    assert!(
        passes::determinism::run(&[ok], &policy).is_empty(),
        "allowlisted trainer temp-naming pid read must be clean"
    );

    // Clock-stamped snapshot bytes, clock-decided resume and a
    // hash-ordered error cache are all flagged.
    let bad = fixture("trainer_clock_bad.rs", "crates/svm/src/trainer.rs");
    let findings = passes::determinism::run(&[bad], &policy);
    assert_all_pass(&findings, "determinism");
    assert!(
        findings
            .iter()
            .any(|f| f.function == "Snapshot::stamp" && f.message.contains("SystemTime")),
        "clock-stamped snapshot contents must be flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.function == "should_adopt" && f.message.contains("Instant")),
        "clock-decided resume must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("HashMap")),
        "hash-ordered error cache must be flagged: {findings:?}"
    );

    // The allowlist names functions, not files: the same violations in
    // an unpinned file produce no findings, and the pinned-path check
    // is what put them in scope at all.
    let bad_unpinned = fixture("trainer_clock_bad.rs", "crates/svm/src/smo_helpers.rs");
    assert!(
        passes::determinism::run(&[bad_unpinned], &policy).is_empty(),
        "unpinned files are out of determinism scope"
    );
}

#[test]
fn no_alloc_fixtures() {
    let policy = Policy::parse("[no_alloc]\nfunctions = [\"compute_tile\"]\n").unwrap();
    let ok = fixture("no_alloc_ok.rs", "hot.rs");
    assert!(
        passes::no_alloc::run(&[ok], &policy).is_empty(),
        "passing no-alloc fixture must be clean (orchestration `run` may allocate)"
    );
    let bad = fixture("no_alloc_bad.rs", "hot.rs");
    let findings = passes::no_alloc::run(&[bad], &policy);
    assert_all_pass(&findings, "no_alloc");
    // vec!, to_vec, clone, Box::new, collect.
    assert_eq!(findings.len(), 5, "got {findings:?}");
    assert!(findings.iter().all(|f| f.function == "compute_tile"));
}

#[test]
fn unsafe_audit_fixtures() {
    let policy = Policy::parse("[unsafe_audit]\nallow_paths = [\"crates/tensor/\"]\n").unwrap();
    let ok = fixture("unsafe_ok.rs", "crates/tensor/src/kernel.rs");
    let (findings, inventory) = passes::unsafe_audit::run(&[ok], &policy);
    assert!(findings.is_empty(), "got {findings:?}");
    assert_eq!(inventory.len(), 2);
    assert!(inventory.iter().all(|e| !e.justification.is_empty()));

    let bad = fixture("unsafe_bad.rs", "crates/tensor/src/kernel.rs");
    let (findings, inventory) = passes::unsafe_audit::run(&[bad], &policy);
    assert_eq!(findings.len(), 1, "got {findings:?}");
    assert!(findings[0].message.contains("SAFETY"));
    assert!(inventory[0].justification.is_empty());

    // The same justified fixture outside the allowlist still fails.
    let misplaced = fixture("unsafe_ok.rs", "crates/mps/src/kernel.rs");
    let (findings, _) = passes::unsafe_audit::run(&[misplaced], &policy);
    assert_eq!(findings.len(), 2, "both sites flagged: {findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("allowlisted")));
}

#[test]
fn lock_order_fixtures() {
    let policy = Policy::parse("[lock_order]\nroots = [\"crates/serve/src\"]\n").unwrap();
    let ok = fixture("lock_order_ok.rs", "crates/serve/src/server.rs");
    assert!(
        passes::lock_order::run(&[ok], &policy).is_empty(),
        "passing lock-order fixture must be clean"
    );
    let bad = fixture("lock_order_bad.rs", "crates/serve/src/server.rs");
    let findings = passes::lock_order::run(&[bad], &policy);
    assert_all_pass(&findings, "lock_order");
    assert!(
        findings.iter().any(|f| f.message.contains("cycle")),
        "inverted order must report a cycle: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("send") && f.function == "Server::reply"),
        "send-under-guard must be flagged: {findings:?}"
    );
}

#[test]
fn fingerprint_fixtures() {
    let policy = Policy::parse(
        "[[fingerprint.contract]]\nstruct = \"JobSpec\"\nfunction = \"JobSpec::fingerprint\"\n",
    )
    .unwrap();
    let ok = fixture("fingerprint_ok.rs", "crates/gram/src/fingerprint.rs");
    assert!(
        passes::fingerprint_cov::run(&[ok], &policy).is_empty(),
        "fully-hashed fixture must be clean"
    );
    let bad = fixture("fingerprint_bad.rs", "crates/gram/src/fingerprint.rs");
    let findings = passes::fingerprint_cov::run(&[bad], &policy);
    assert_eq!(findings.len(), 1, "got {findings:?}");
    assert!(findings[0].message.contains("JobSpec.seed"));
}

/// The gate behind `--deny` in CI: the live workspace, under the
/// checked-in `analyze.toml`, has zero findings — and the unsafe
/// surface is pinned to exactly the two qk-tensor AVX sites.
#[test]
fn live_workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let (analysis, policy) =
        qk_analyze::analyze_root(&root, &root.join("analyze.toml")).expect("analyze workspace");
    assert!(
        analysis.findings.is_empty(),
        "live workspace must be violation-free:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        analysis.files_scanned > 100,
        "scan should cover the whole workspace, saw {}",
        analysis.files_scanned
    );
    assert_eq!(
        analysis.unsafe_inventory.len(),
        2,
        "unsafe surface is pinned to the AVX micro-kernel: {:?}",
        analysis.unsafe_inventory
    );
    assert!(analysis
        .unsafe_inventory
        .iter()
        .all(|e| e.path.starts_with("crates/tensor/") && !e.justification.is_empty()));
    assert_eq!(policy.contracts.len(), 3, "three fingerprint contracts");
}
