//! Findings, reports, and a tiny deterministic JSON writer.
//!
//! JSON emission is hand-rolled (the workspace has a no-new-deps rule)
//! and deterministic: findings are sorted by (pass, path, line) and all
//! maps used anywhere in the analyzer are `BTreeMap`s — the linter holds
//! itself to the determinism contract it enforces.

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Pass that produced this finding (`determinism`, `no_alloc`,
    /// `unsafe_audit`, `lock_order`, `fingerprint_coverage`).
    pub pass: String,
    /// Workspace-relative file path (`/`-separated).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Function context, when known.
    pub function: String,
    /// What went wrong and why it matters.
    pub message: String,
}

impl Finding {
    /// Builds a finding; `function` may be empty for file-level issues.
    pub fn new(
        pass: &str,
        path: impl Into<String>,
        line: u32,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            pass: pass.to_string(),
            path: path.into(),
            line,
            function: function.into(),
            message: message.into(),
        }
    }

    /// `path:line [pass] (fn) message` — the human-facing form.
    pub fn render(&self) -> String {
        let ctx = if self.function.is_empty() {
            String::new()
        } else {
            format!(" in `{}`", self.function)
        };
        format!(
            "{}:{} [{}]{}: {}",
            self.path, self.line, self.pass, ctx, self.message
        )
    }
}

/// Escapes a string for JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders sorted findings as a deterministic JSON report.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"pass\": \"{}\", \"path\": \"{}\", \"line\": {}, \"function\": \"{}\", \"message\": \"{}\"}}{}",
            json_escape(&f.pass),
            json_escape(&f.path),
            f.line,
            json_escape(&f.function),
            json_escape(&f.message),
            sep
        );
    }
    let _ = write!(out, "  ],\n  \"total\": {}\n}}\n", sorted.len());
    out
}

/// One entry of the unsafe inventory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeEntry {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `"block"`, `"fn"`, or `"impl"`.
    pub kind: String,
    /// Enclosing function, when known.
    pub function: String,
    /// The `// SAFETY:` justification text (sigils stripped), or empty
    /// when missing.
    pub justification: String,
}

/// Renders the unsafe inventory (`results/unsafe_audit.json`),
/// deterministic and diffable PR-over-PR.
pub fn unsafe_inventory_json(entries: &[UnsafeEntry]) -> String {
    let mut sorted: Vec<&UnsafeEntry> = entries.iter().collect();
    sorted.sort();
    let mut out = String::from("{\n  \"unsafe_sites\": [\n");
    for (i, e) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"function\": \"{}\", \"justification\": \"{}\"}}{}",
            json_escape(&e.path),
            e.line,
            json_escape(&e.kind),
            json_escape(&e.function),
            json_escape(&e.justification),
            sep
        );
    }
    let _ = write!(out, "  ],\n  \"total\": {}\n}}\n", sorted.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_json_is_sorted_and_escaped() {
        let findings = vec![
            Finding::new("no_alloc", "b.rs", 9, "g", "second"),
            Finding::new("no_alloc", "a.rs", 3, "f", "uses \"vec!\""),
        ];
        let json = findings_json(&findings);
        let a = json.find("a.rs").unwrap();
        let b = json.find("b.rs").unwrap();
        assert!(a < b, "findings must sort by path");
        assert!(json.contains("\\\"vec!\\\""));
        assert!(json.contains("\"total\": 2"));
    }

    #[test]
    fn empty_reports_are_valid() {
        assert!(findings_json(&[]).contains("\"total\": 0"));
        assert!(unsafe_inventory_json(&[]).contains("\"total\": 0"));
    }
}
