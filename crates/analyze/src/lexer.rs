//! A minimal Rust lexer: just enough token structure for invariant
//! linting, in the spirit of the vendored `serde_derive`'s hand-rolled
//! parser (no proc-macro2/syn, no network deps).
//!
//! The lexer produces a flat token stream with line numbers plus a
//! side-channel of comments (the unsafe-audit pass needs `// SAFETY:`
//! text, which ordinary token streams discard). String/char/comment
//! *contents* never become tokens, so a doc comment mentioning
//! `HashMap` or a format string containing `unsafe` can never trip a
//! lint.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident(String),
    /// Numeric literal (value never interpreted).
    Num,
    /// String / raw-string / byte-string literal.
    Str,
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`) or loop label.
    Life,
    /// Any other single character (`.`, `{`, `<`, ...).
    P(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// `true` when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }

    /// `true` when this token is the punctuation `c`.
    pub fn is_p(&self, c: char) -> bool {
        self.tok == Tok::P(c)
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A comment (line or block) with the line it starts on. Doc comments
/// are included; the leading slashes are preserved in `text`.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// Raw comment text including the `//` / `/*` sigils.
    pub text: String,
}

/// Lexes Rust source into tokens and comments. Unknown bytes are passed
/// through as punctuation — the linter degrades gracefully rather than
/// erroring on exotic syntax.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    // Advances `line` while copying the characters in `lo..hi`.
    let count_lines = |lo: usize, hi: usize, b: &[char]| -> u32 {
        b[lo..hi].iter().filter(|&&c| c == '\n').count() as u32
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: b[start..i].iter().collect(),
                });
            }
            '"' => {
                let (start, start_line) = (i, line);
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                line += count_lines(start, i.min(n), &b);
                toks.push(Token {
                    tok: Tok::Str,
                    line: start_line,
                });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start = i;
                // Skip the prefix (r, b, br, rb).
                while i < n && (b[i] == 'r' || b[i] == 'b') {
                    i += 1;
                }
                if i < n && b[i] == '\'' {
                    // Byte char b'x'.
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 1;
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    continue;
                }
                let mut hashes = 0usize;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                // Opening quote.
                i += 1;
                // Scan for `"` followed by `hashes` hashes.
                let start_line = line;
                while i < n {
                    if b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                line += count_lines(start, i.min(n), &b);
                toks.push(Token {
                    tok: Tok::Str,
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime/label (`'a`) vs char literal (`'x'`, `'\n'`).
                let is_life = i + 1 < n
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < n && b[i + 2] == '\'');
                if is_life {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Life,
                        line,
                    });
                } else {
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 1;
                        // Escapes like \u{1F600} contain braces.
                        if i < n && b[i] == 'u' && i + 1 < n && b[i + 1] == '{' {
                            while i < n && b[i] != '}' {
                                i += 1;
                            }
                        }
                        i += 1;
                    } else {
                        i += 1;
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                // One fractional part, only when followed by a digit
                // (so `0..n` lexes as Num P(.) P(.) Ident).
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            other => {
                toks.push(Token {
                    tok: Tok::P(other),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// `true` when position `i` starts a raw/byte string (or byte char)
/// rather than a plain identifier beginning with `r`/`b`.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    while j < n && j - i < 2 && (b[j] == 'r' || b[j] == 'b') {
        j += 1;
    }
    if j >= n {
        return false;
    }
    let has_r = b[i..j].contains(&'r');
    match b[j] {
        '"' => true,
        '#' => has_r,
        '\'' => b[i] == 'b' && j == i + 1,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // HashMap in a comment
            /* unsafe in a block /* nested */ comment */
            let s = "HashMap unsafe";
            let r = r#"raw "quoted" HashMap"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"let".to_string()));
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_chars_and_ranges() {
        let (toks, _) =
            lex("fn f<'a>(x: &'a str) { let c = 'x'; for i in 0..n {} let y = 1.5e3; }");
        assert!(toks.iter().any(|t| t.tok == Tok::Life));
        assert!(toks.iter().any(|t| t.tok == Tok::Char));
        // `0..n` must produce two dots, not a malformed float.
        let dots = toks.iter().filter(|t| t.is_p('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let (toks, comments) = lex("a\nb\n// c\nd");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(comments[0].line, 3);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let (toks, _) = lex(r"let q = '\''; let after = 1;");
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }
}
