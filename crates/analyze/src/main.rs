//! `qk-analyze` CLI: the workspace invariant gate.
//!
//! ```text
//! qk-analyze [--root DIR] [--policy FILE] [--deny] [--report [FILE]] [--explain LINT]
//! ```
//!
//! - default: human-readable findings + summary, exit 0
//! - `--deny`: exit 1 when any finding exists (the CI gate)
//! - `--report [FILE]`: findings as JSON to FILE (or stdout)
//! - `--explain LINT`: print what a pass guards and how to fix findings
//!
//! Every run (except `--explain`) rewrites the unsafe inventory at the
//! policy's `unsafe_audit.inventory` path so it stays diffable.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use qk_analyze::{analyze_root, explain, report, PASS_NAMES};

struct Args {
    root: PathBuf,
    policy: Option<PathBuf>,
    deny: bool,
    report: bool,
    report_path: Option<PathBuf>,
    explain: Option<String>,
}

fn usage() -> String {
    format!(
        "usage: qk-analyze [--root DIR] [--policy FILE] [--deny] [--report [FILE]] [--explain LINT]\n\
         lints: {}",
        PASS_NAMES.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        policy: None,
        deny: false,
        report: false,
        report_path: None,
        explain: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--policy" => {
                args.policy = Some(PathBuf::from(it.next().ok_or("--policy needs a file")?));
            }
            "--deny" => args.deny = true,
            "--report" => {
                args.report = true;
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        args.report_path = Some(PathBuf::from(it.next().unwrap()));
                    }
                }
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a lint name")?);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(lint) = &args.explain {
        return match explain(lint) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown lint `{lint}`; lints: {}", PASS_NAMES.join(", "));
                ExitCode::from(2)
            }
        };
    }

    let policy_path = args
        .policy
        .clone()
        .unwrap_or_else(|| args.root.join("analyze.toml"));
    let (analysis, policy) = match analyze_root(&args.root, &policy_path) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("qk-analyze: {msg}");
            return ExitCode::from(2);
        }
    };

    // Always refresh the unsafe inventory.
    let inventory_path = args.root.join(&policy.unsafe_inventory);
    if let Some(parent) = inventory_path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let inventory_json = report::unsafe_inventory_json(&analysis.unsafe_inventory);
    if let Err(e) = fs::write(&inventory_path, inventory_json) {
        eprintln!("qk-analyze: cannot write {}: {e}", inventory_path.display());
        return ExitCode::from(2);
    }

    if args.report {
        let json = report::findings_json(&analysis.findings);
        match &args.report_path {
            Some(path) => {
                if let Err(e) = fs::write(path, json) {
                    eprintln!("qk-analyze: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("report written to {}", path.display());
            }
            None => print!("{json}"),
        }
    } else {
        for f in &analysis.findings {
            println!("{}", f.render());
        }
    }

    eprintln!(
        "qk-analyze: {} file(s) scanned, {} finding(s), {} unsafe site(s) inventoried -> {}",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.unsafe_inventory.len(),
        inventory_path.display()
    );

    if args.deny && !analysis.findings.is_empty() {
        eprintln!("qk-analyze: failing (--deny); run `qk-analyze --explain <lint>` for the contract behind each finding");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
