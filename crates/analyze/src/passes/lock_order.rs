//! Lock-order pass: extract `Mutex`/`RwLock` acquisitions per function
//! across the policy's lock roots, build the inter-lock ordering graph,
//! and fail on cycles (potential deadlock) or `send`/`recv` calls made
//! while a guard is held.
//!
//! ## Model
//!
//! - A **lock identity** is `crate::field` — the last field segment of
//!   the receiver chain (`self.cache.lock()` → `serve::cache`),
//!   qualified by the owning crate so same-named fields in different
//!   crates never alias.
//! - **Guard lifetimes** follow Rust 2021 drop rules, lexically
//!   approximated: a `let`-bound guard lives to the end of the
//!   enclosing block (or an explicit `drop(g)`); an `if let`/`while
//!   let`/`match` scrutinee temporary lives through the body; any other
//!   temporary dies at the end of its statement.
//! - **Interprocedural edges** come from per-function lock summaries
//!   closed under a fixpoint: while a guard is held, calling `f(..)` or
//!   `.f(..)` adds edges to every lock any same-named function in the
//!   lock roots may take — excluding the current function itself, so a
//!   method that calls a same-named method on another type does not
//!   fabricate a self-cycle.
//! - Self-edges (`L → L`) are dropped: field-name identity cannot
//!   distinguish two instances of the same type, so a same-name
//!   reacquisition is as likely two mailboxes as a real re-entrancy.
//!
//! The `send`/`recv`-while-locked rule is direct-call only and ignores
//! `try_send`/`try_recv` (non-blocking) and `Condvar::wait` (which
//! *releases* the guard it is given).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, Token};
use crate::policy::Policy;
use crate::report::Finding;
use crate::scan::FileModel;

const PASS: &str = "lock_order";

/// One guard acquisition inside a function body.
#[derive(Debug)]
struct Acq {
    /// Crate-qualified lock identity.
    lock: String,
    /// Token index of the `.lock(`/`.read(`/`.write(` dot.
    tok: usize,
    /// Source line.
    line: u32,
    /// Token index (exclusive) where the guard dies.
    until: usize,
}

/// Everything the pass extracts from one function.
#[derive(Debug, Default)]
struct FnFacts {
    qualified: String,
    bare: String,
    rel: String,
    acqs: Vec<Acq>,
    /// (callee bare name, token index, line).
    calls: Vec<(String, usize, u32)>,
    /// (`send`/`recv`, token index, line).
    sendrecv: Vec<(String, usize, u32)>,
}

/// A lock-ordering edge with one representative location.
#[derive(Debug, Clone)]
struct Edge {
    rel: String,
    line: u32,
    function: String,
    /// `Some(callee)` when the edge came through a call summary.
    via: Option<String>,
}

/// Runs the lock-order pass.
pub fn run(files: &[FileModel], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut facts: Vec<FnFacts> = Vec::new();
    for file in files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        if !Policy::path_under(&rel, &policy.lock_roots) {
            continue;
        }
        let krate = crate_of(&rel);
        for (fi, f) in file.fns.iter().enumerate() {
            let Some((lo, hi)) = f.body else { continue };
            if file.in_test(lo) {
                continue;
            }
            let mut ff = FnFacts {
                qualified: f.qualified(),
                bare: f.name.clone(),
                rel: rel.clone(),
                ..FnFacts::default()
            };
            extract(file, lo, hi, &krate, &mut ff);
            let _ = fi;
            facts.push(ff);
        }
    }

    // Per-function direct lock sets, then the transitive fixpoint over
    // bare-name calls.
    let direct: Vec<BTreeSet<String>> = facts
        .iter()
        .map(|f| f.acqs.iter().map(|a| a.lock.clone()).collect())
        .collect();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in facts.iter().enumerate() {
        by_name.entry(&f.bare).or_default().push(i);
    }
    let mut summary = direct.clone();
    loop {
        let mut changed = false;
        for i in 0..facts.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for (callee, _, _) in &facts[i].calls {
                for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                    if j != i {
                        add.extend(summary[j].iter().cloned());
                    }
                }
            }
            for lock in add {
                changed |= summary[i].insert(lock);
            }
        }
        if !changed {
            break;
        }
    }

    // Edge construction + send/recv-while-locked.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (i, f) in facts.iter().enumerate() {
        for a in &f.acqs {
            // Direct nesting.
            for b in &f.acqs {
                if b.tok > a.tok && b.tok < a.until && b.lock != a.lock {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert(Edge {
                            rel: f.rel.clone(),
                            line: b.line,
                            function: f.qualified.clone(),
                            via: None,
                        });
                }
            }
            // Through calls.
            for (callee, tok, line) in &f.calls {
                if *tok <= a.tok || *tok >= a.until {
                    continue;
                }
                for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                    if j == i {
                        continue;
                    }
                    for lock in &summary[j] {
                        if *lock != a.lock {
                            edges.entry((a.lock.clone(), lock.clone())).or_insert(Edge {
                                rel: f.rel.clone(),
                                line: *line,
                                function: f.qualified.clone(),
                                via: Some(callee.clone()),
                            });
                        }
                    }
                }
            }
            // Blocking channel ops under the guard.
            for (op, tok, line) in &f.sendrecv {
                if *tok > a.tok && *tok < a.until {
                    findings.push(Finding::new(
                        PASS,
                        &f.rel,
                        *line,
                        f.qualified.clone(),
                        format!(
                            "`.{op}(..)` while holding `{}`: a blocking channel op under a \
                             guard can deadlock against the peer needing that lock — scope \
                             the guard to end before the channel call",
                            a.lock
                        ),
                    ));
                }
            }
        }
    }

    findings.extend(report_cycles(&edges));
    findings.sort();
    findings
}

/// `crates/serve/src/server.rs` → `serve`; anything else → `root`.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Extracts acquisitions, calls and send/recv sites from a body range.
fn extract(file: &FileModel, lo: usize, hi: usize, krate: &str, out: &mut FnFacts) {
    let toks = &file.tokens;
    for i in lo..hi {
        // Acquisition: `recv.lock()` / `.read()` / `.write()` with
        // empty parens (Mutex/RwLock take no args; io traits do).
        if let Some(m) = crate::passes::method_call_name(toks, i) {
            let empty = toks.get(i + 3).is_some_and(|t| t.is_p(')'));
            if matches!(m, "lock" | "read" | "write") && empty {
                if let Some(Tok::Ident(field)) = toks.get(i.wrapping_sub(1)).map(|t| &t.tok) {
                    out.acqs.push(Acq {
                        lock: format!("{krate}::{field}"),
                        tok: i,
                        line: toks[i].line,
                        until: guard_until(toks, lo, hi, i),
                    });
                    continue;
                }
            }
            if matches!(m, "send" | "recv") {
                out.sendrecv.push((m.to_string(), i, toks[i].line));
                continue;
            }
            if !matches!(m, "unwrap" | "expect" | "lock" | "read" | "write") {
                out.calls.push((m.to_string(), i, toks[i].line));
            }
        }
        // Bare calls: `name(` not preceded by `.` or `fn`, not a macro.
        if let Some(id) = toks[i].ident() {
            let callish = toks.get(i + 1).is_some_and(|t| t.is_p('('))
                && i > 0
                && !toks[i - 1].is_p('.')
                && !toks[i - 1].is_ident("fn")
                && !toks[i - 1].is_p(':');
            if callish && id != "drop" {
                out.calls.push((id.to_string(), i, toks[i].line));
            }
        }
    }
}

/// Computes the token index (exclusive) at which the guard acquired at
/// `i` dies. See the module docs for the lifetime model.
fn guard_until(toks: &[Token], lo: usize, hi: usize, i: usize) -> usize {
    // Statement start: just past the nearest `;`/`{`/`}` before `i`.
    let mut s = i;
    while s > lo {
        let t = &toks[s - 1];
        if t.is_p(';') || t.is_p('{') || t.is_p('}') {
            break;
        }
        s -= 1;
    }
    let starts_with = |kw: &str| toks.get(s).is_some_and(|t| t.is_ident(kw));
    if starts_with("let") {
        // Bound guard: end of enclosing block, or `drop(name)`.
        let mut j = s + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = toks.get(j).and_then(|t| t.ident()).map(str::to_string);
        let block_end = enclosing_block_end(toks, hi, i);
        if let Some(name) = name {
            let mut k = i;
            while k + 3 < block_end {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_p('(')
                    && toks[k + 2].is_ident(&name)
                    && toks[k + 3].is_p(')')
                {
                    return k;
                }
                k += 1;
            }
        }
        return block_end;
    }
    let scrutinee = (starts_with("if") || starts_with("while"))
        && toks.get(s + 1).is_some_and(|t| t.is_ident("let"))
        || starts_with("match");
    if scrutinee {
        // Lives through the body: find the body `{` at delimiter depth
        // 0 after the acquisition, take its matching close.
        let mut depth = 0i32;
        let mut k = i;
        while k < hi {
            match toks[k].tok {
                Tok::P('(') | Tok::P('[') => depth += 1,
                Tok::P(')') | Tok::P(']') => depth -= 1,
                Tok::P('{') if depth == 0 => {
                    return matching_close(toks, hi, k);
                }
                _ => {}
            }
            k += 1;
        }
        return hi;
    }
    // Temporary: dies at the statement's `;` (or the end of the
    // enclosing block for a tail expression).
    let mut depth = 0i32;
    let mut k = i;
    while k < hi {
        match toks[k].tok {
            Tok::P('(') | Tok::P('[') | Tok::P('{') => depth += 1,
            Tok::P(')') | Tok::P(']') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            Tok::P('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            Tok::P(';') if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    hi
}

/// Token index of the `}` closing the innermost block containing `i`.
fn enclosing_block_end(toks: &[Token], hi: usize, i: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < hi {
        match toks[k].tok {
            Tok::P('{') => depth += 1,
            Tok::P('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    hi
}

/// Matching `}` for the `{` at `open`.
fn matching_close(toks: &[Token], hi: usize, open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(hi).skip(open) {
        if t.is_p('{') {
            depth += 1;
        } else if t.is_p('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    hi
}

/// DFS cycle detection over the lock graph; one finding per distinct
/// cycle (normalized by rotating to the smallest node).
fn report_cycles(edges: &BTreeMap<(String, String), Edge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    for &start in &nodes {
        // Iterative DFS carrying the path.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        while let Some((node, next)) = stack.last_mut() {
            let succs = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if *next >= succs.len() {
                stack.pop();
                path.pop();
                continue;
            }
            let succ = succs[*next];
            *next += 1;
            if let Some(pos) = path.iter().position(|&n| n == succ) {
                let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                let mut norm = cycle.clone();
                let min = norm
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_str())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                norm.rotate_left(min);
                if seen_cycles.insert(norm) {
                    let mut desc: Vec<String> = cycle.clone();
                    desc.push(cycle[0].clone());
                    let edge = edges
                        .get(&(cycle[cycle.len() - 1].clone(), cycle[0].clone()))
                        .or_else(|| edges.iter().next().map(|(_, e)| e))
                        .cloned();
                    let (rel, line, function, via) = edge
                        .map(|e| (e.rel, e.line, e.function, e.via))
                        .unwrap_or_default();
                    let via = via
                        .map(|callee| format!(" (edge via call to `{callee}`)"))
                        .unwrap_or_default();
                    findings.push(Finding::new(
                        PASS,
                        rel,
                        line,
                        function,
                        format!(
                            "lock-order cycle {}: two threads taking these locks in \
                             different orders can deadlock; pick one global order{via}",
                            desc.join(" -> ")
                        ),
                    ));
                }
                continue;
            }
            if path.len() < 64 {
                path.push(succ);
                stack.push((succ, 0));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(src: &str) -> Vec<Finding> {
        let policy = Policy::parse("[lock_order]\nroots = [\"crates/serve/src\"]\n").unwrap();
        let file = FileModel::scan(PathBuf::from("crates/serve/src/x.rs"), src);
        run(&[file], &policy)
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = check(
            "fn a(&self) { let g = self.cache.lock().unwrap(); let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let g = self.cache.lock().unwrap(); let h = self.stats.lock().unwrap(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let f = check(
            "fn a(&self) { let g = self.cache.lock().unwrap(); let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let h = self.stats.lock().unwrap(); let g = self.cache.lock().unwrap(); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cycle"));
    }

    #[test]
    fn drop_ends_the_guard() {
        let f = check(
            "fn a(&self) { let g = self.cache.lock().unwrap(); drop(g); let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let h = self.stats.lock().unwrap(); let g = self.cache.lock().unwrap(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn block_scoping_ends_the_guard() {
        let f = check(
            "fn a(&self) { { let g = self.cache.lock().unwrap(); } let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let h = self.stats.lock().unwrap(); let g = self.cache.lock().unwrap(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn send_under_guard_is_flagged() {
        let f = check("fn a(&self) { let g = self.cache.lock().unwrap(); tx.send(v).unwrap(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("holding `serve::cache`"));
    }

    #[test]
    fn send_after_scoped_guard_is_clean() {
        let f = check(
            "fn a(&self) { let v = { let g = self.cache.lock().unwrap(); g.get() }; tx.send(v).unwrap(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn while_let_scrutinee_lives_through_body() {
        // The queue guard from the while-let temporary is held inside
        // the body, so the nested stats lock makes an edge; the reverse
        // order elsewhere completes the cycle.
        let f = check(
            "fn a(&self) { while let Some(x) = self.queue.lock().unwrap().pop() { let s = self.stats.lock().unwrap(); } }\n\
             fn b(&self) { let s = self.stats.lock().unwrap(); let q = self.queue.lock().unwrap(); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn interprocedural_edge_through_callee() {
        let f = check(
            "impl A { fn outer(&self) { let g = self.cache.lock().unwrap(); self.registry.refresh(); } }\n\
             impl R { fn refresh(&self) { let w = self.current.write().unwrap(); } }\n\
             impl B { fn inv(&self) { let w = self.current.write().unwrap(); let g = self.cache.lock().unwrap(); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("serve::cache"));
        assert!(f[0].message.contains("serve::current"));
    }

    #[test]
    fn same_named_method_on_other_type_is_not_a_self_cycle() {
        // `KernelServer::deploy` calls `Registry::deploy`; matching the
        // callee against the *current* function would fabricate a
        // cache -> cache self-edge.
        let f = check(
            "impl S { fn deploy(&self) { let g = self.cache.lock().unwrap(); self.registry.deploy(); } }\n\
             impl R { fn deploy(&self) { let w = self.current.write().unwrap(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn condvar_wait_is_not_send_recv() {
        let f = check(
            "fn take(&self) { let mut g = self.queue.lock().unwrap(); while g.is_empty() { g = self.arrived.wait(g).unwrap(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
