//! No-alloc pass: policy-declared hot-path functions must not allocate.
//!
//! PR 5 made the zipper inner product and the GEMM micro-kernels
//! allocation-free (workspace buffers are grown once and reused); this
//! pass keeps them that way. Any function listed in
//! `no_alloc.functions` (bare name or `Type::name`) is scanned for the
//! allocating constructs below. Workspace *growth* methods like
//! `ZipperWorkspace::ensure` are deliberately not listed — amortized
//! growth is the designed escape hatch, the per-call path is what must
//! stay clean.

use crate::lexer::Token;
use crate::passes::{is_path2, method_call_name};
use crate::policy::Policy;
use crate::report::Finding;
use crate::scan::{FileModel, FnInfo};

const PASS: &str = "no_alloc";

/// Allocating method calls (`.name(`).
const BANNED_METHODS: &[&str] = &[
    "to_vec",
    "collect",
    "clone",
    "to_owned",
    "to_string",
    "into_vec",
    "into_boxed_slice",
];

/// Allocating `Type::ctor` paths.
const BANNED_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
];

/// Allocating macros (`name!`).
const BANNED_MACROS: &[&str] = &["vec", "format"];

/// Runs the no-alloc pass over all policy-declared functions.
pub fn run(files: &[FileModel], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        for f in &file.fns {
            if !policy.no_alloc_fns.iter().any(|pat| f.matches(pat)) {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            if file.in_test(lo) {
                continue;
            }
            check_body(&file.tokens, lo, hi, f, &rel, &mut findings);
        }
    }
    findings
}

fn check_body(
    toks: &[Token],
    lo: usize,
    hi: usize,
    f: &FnInfo,
    rel: &str,
    findings: &mut Vec<Finding>,
) {
    let qualified = f.qualified();
    let mut report = |line: u32, what: String| {
        findings.push(Finding::new(
            PASS,
            rel,
            line,
            qualified.clone(),
            format!(
                "{what} allocates; `{qualified}` is a declared no-alloc hot path — take a \
                 caller-provided buffer or a workspace instead"
            ),
        ));
    };
    let mut i = lo;
    while i < hi {
        let line = toks[i].line;
        if let Some(m) = method_call_name(toks, i) {
            if BANNED_METHODS.contains(&m) {
                report(line, format!("`.{m}(..)`"));
                i += 3;
                continue;
            }
        }
        for &(ty, ctor) in BANNED_PATHS {
            if is_path2(toks, i, ty, ctor) {
                report(line, format!("`{ty}::{ctor}`"));
            }
        }
        if let Some(id) = toks[i].ident() {
            if BANNED_MACROS.contains(&id) && toks.get(i + 1).is_some_and(|t| t.is_p('!')) {
                report(line, format!("`{id}!`"));
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(src: &str) -> Vec<Finding> {
        let policy =
            Policy::parse("[no_alloc]\nfunctions = [\"Mps::inner_into\", \"compute_tile\"]\n")
                .unwrap();
        let file = FileModel::scan(PathBuf::from("x.rs"), src);
        run(&[file], &policy)
    }

    #[test]
    fn flags_every_banned_construct() {
        let f = check(
            "fn compute_tile() {\n\
             let v = Vec::new();\n\
             let w = vec![0.0; 8];\n\
             let s = x.to_vec();\n\
             let c = y.clone();\n\
             let b = Box::new(z);\n\
             let it: Vec<_> = iter.collect();\n\
             }",
        );
        assert_eq!(f.len(), 6, "{f:?}");
    }

    #[test]
    fn clean_slice_writing_fn_passes() {
        let f = check(
            "impl Mps { fn inner_into(&self, other: &Mps, ws: &mut W) -> C {\n\
             for (o, a) in out.iter_mut().zip(acc.iter()) { *o = *a + *o; }\n\
             zipper::zip_inner(self, other, ws)\n} }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn undeclared_fns_may_allocate() {
        let f = check("fn helper() -> Vec<f64> { vec![0.0; 8] }");
        assert!(f.is_empty());
    }

    #[test]
    fn qualified_policy_name_only_hits_that_impl() {
        let policy = Policy::parse("[no_alloc]\nfunctions = [\"Mps::inner_into\"]\n").unwrap();
        let file = FileModel::scan(
            PathBuf::from("x.rs"),
            "impl Other { fn inner_into(&self) { let v = Vec::new(); } }",
        );
        assert!(run(&[file], &policy).is_empty());
    }
}
