//! Unsafe audit pass: every `unsafe` site needs a `// SAFETY:`
//! justification, unsafe is only permitted under allowlisted paths,
//! and the full inventory is emitted as `results/unsafe_audit.json`
//! so the unsafe surface stays diffable PR-over-PR.
//!
//! A justification counts when a comment containing `SAFETY:` appears
//! in the lines just above the `unsafe` keyword, or (for `unsafe fn`,
//! whose signature may span several lines) in the first lines of the
//! body.

use crate::policy::Policy;
use crate::report::{Finding, UnsafeEntry};
use crate::scan::{FileModel, FnInfo, UnsafeKind};

const PASS: &str = "unsafe_audit";

/// Runs the audit. Returns lint findings plus the full inventory.
pub fn run(files: &[FileModel], policy: &Policy) -> (Vec<Finding>, Vec<UnsafeEntry>) {
    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    for file in files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        for site in &file.unsafes {
            if file.in_test(site.tok) {
                continue;
            }
            let function = site_function(file, site.tok, site.kind);
            let justification = find_safety_comment(file, site.line, site.tok, site.kind);
            let kind = match site.kind {
                UnsafeKind::Block => "block",
                UnsafeKind::Fn => "fn",
                UnsafeKind::ImplOrTrait => "impl",
            };
            if !Policy::path_under(&rel, &policy.unsafe_allow) {
                findings.push(Finding::new(
                    PASS,
                    &rel,
                    site.line,
                    function.clone(),
                    format!(
                        "`unsafe` {kind} outside the allowlisted paths ({}); the audited \
                         unsafe surface is pinned to those crates — prefer safe code or \
                         extend `unsafe_audit.allow_paths` deliberately",
                        policy.unsafe_allow.join(", ")
                    ),
                ));
            }
            match &justification {
                Some(text) => inventory.push(UnsafeEntry {
                    path: rel.clone(),
                    line: site.line,
                    kind: kind.to_string(),
                    function: function.clone(),
                    justification: text.clone(),
                }),
                None => {
                    findings.push(Finding::new(
                        PASS,
                        &rel,
                        site.line,
                        function.clone(),
                        format!(
                            "`unsafe` {kind} without a `// SAFETY:` justification; state the \
                             invariant that makes this sound on the lines above the keyword \
                             (or the first line of an `unsafe fn` body)"
                        ),
                    ));
                    inventory.push(UnsafeEntry {
                        path: rel.clone(),
                        line: site.line,
                        kind: kind.to_string(),
                        function,
                        justification: String::new(),
                    });
                }
            }
        }
    }
    (findings, inventory)
}

/// The function context of an unsafe site: for `unsafe fn` the function
/// itself; for a block, the enclosing function.
fn site_function(file: &FileModel, tok: usize, kind: UnsafeKind) -> String {
    if kind == UnsafeKind::Fn {
        // The fn declared by this keyword starts within a couple of
        // tokens (`unsafe fn`, `unsafe extern "C" fn`, ...).
        if let Some(f) = file
            .fns
            .iter()
            .find(|f| f.is_unsafe && f.line >= file.tokens[tok].line)
        {
            return f.qualified();
        }
    }
    file.enclosing_fn(tok)
        .map(FnInfo::qualified)
        .unwrap_or_default()
}

/// Finds a `SAFETY:` comment justifying the site, returning its text
/// with the comment sigils stripped.
fn find_safety_comment(
    file: &FileModel,
    line: u32,
    tok: usize,
    kind: UnsafeKind,
) -> Option<String> {
    // Window: three lines above through one line below the keyword; for
    // `unsafe fn`, extend to just inside the body's opening lines.
    let lo = line.saturating_sub(3);
    let mut hi = line + 1;
    if kind == UnsafeKind::Fn {
        if let Some(f) = file
            .fns
            .iter()
            .find(|f| f.is_unsafe && f.line >= file.tokens[tok].line)
        {
            if let Some((blo, _)) = f.body {
                hi = hi.max(file.tokens[blo].line + 1);
            }
        }
    }
    file.comments
        .iter()
        .find(|c| c.line >= lo && c.line <= hi && c.text.contains("SAFETY:"))
        .map(|c| {
            c.text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim()
                .to_string()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(path: &str, src: &str) -> (Vec<Finding>, Vec<UnsafeEntry>) {
        let policy = Policy::parse("[unsafe_audit]\nallow_paths = [\"crates/tensor/\"]\n").unwrap();
        let file = FileModel::scan(PathBuf::from(path), src);
        run(&[file], &policy)
    }

    #[test]
    fn justified_block_in_allowed_path_is_clean() {
        let (f, inv) = check(
            "crates/tensor/src/matrix.rs",
            "fn go() {\n// SAFETY: AVX verified at runtime.\nunsafe { kernel() }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(inv.len(), 1);
        assert!(inv[0].justification.contains("AVX verified"));
        assert_eq!(inv[0].kind, "block");
        assert_eq!(inv[0].function, "go");
    }

    #[test]
    fn missing_justification_is_flagged_but_inventoried() {
        let (f, inv) = check(
            "crates/tensor/src/matrix.rs",
            "fn go() {\nunsafe { kernel() }\n}",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));
        assert_eq!(inv.len(), 1);
        assert!(inv[0].justification.is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_body_comment() {
        let (f, inv) = check(
            "crates/tensor/src/matrix.rs",
            "unsafe fn kernel(\n  a: *const f64,\n) {\n// SAFETY: caller upholds the contract.\nwork();\n}",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(inv[0].kind, "fn");
        assert_eq!(inv[0].function, "kernel");
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged_even_with_comment() {
        let (f, _) = check(
            "crates/mps/src/mps.rs",
            "fn go() {\n// SAFETY: looks fine.\nunsafe { kernel() }\n}",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("allowlisted"));
    }

    #[test]
    fn test_module_unsafe_is_skipped() {
        let (f, inv) = check(
            "crates/tensor/src/matrix.rs",
            "#[cfg(test)]\nmod tests { fn t() { unsafe { poke() } } }",
        );
        assert!(f.is_empty());
        assert!(inv.is_empty());
    }
}
