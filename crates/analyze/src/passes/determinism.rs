//! Determinism pass: pinned modules must be bitwise-reproducible.
//!
//! Three rules, each guarding an invariant the Gram pipeline's
//! tile×workers×spill×resume pins depend on:
//!
//! 1. **No FMA contraction.** `f64::mul_add` (and the `_mm256_fmadd_*`
//!    intrinsic family) fuses the multiply-add with a single rounding,
//!    so an FMA kernel and a non-FMA kernel produce different low bits.
//!    The project's `Complex64::mul_add` / `conj_mul_add` are *not*
//!    fused (they expand to separate mul and add ops) and are allowed —
//!    the lint tracks local `f64`/`f32` types to tell the receivers
//!    apart.
//! 2. **No `HashMap`/`HashSet`.** `std`'s hash maps use per-process
//!    `RandomState`, so any iteration order leaking into a fingerprint,
//!    checkpoint, or serialized tile is nondeterministic across runs.
//!    Pinned modules must use `BTreeMap`/`Vec` instead.
//! 3. **No ambient reads.** Wall-clock (`Instant::now`,
//!    `SystemTime`), process/thread identity (`process::id`,
//!    `thread::current`), and randomness must not feed value-producing
//!    paths. Functions that only use the clock for *reporting* (timing
//!    a kernel, naming a temp dir) are declared in
//!    `determinism.allow_clock_in`.

use crate::lexer::{Tok, Token};
use crate::passes::is_path2;
use crate::policy::Policy;
use crate::report::Finding;
use crate::scan::{FileModel, FnInfo};

const PASS: &str = "determinism";

/// Runs the determinism pass over all pinned files.
pub fn run(files: &[FileModel], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        if !Policy::path_under(&rel, &policy.pinned) {
            continue;
        }
        check_file(file, &rel, policy, &mut findings);
    }
    findings
}

fn check_file(file: &FileModel, rel: &str, policy: &Policy, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let fn_name = |i: usize| {
        file.enclosing_fn(i)
            .map(FnInfo::qualified)
            .unwrap_or_default()
    };
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        let line = toks[i].line;
        // Rule 1: FMA.
        if is_path2(toks, i, "f64", "mul_add") || is_path2(toks, i, "f32", "mul_add") {
            findings.push(Finding::new(
                PASS,
                rel,
                line,
                fn_name(i),
                "fully-qualified float `mul_add` fuses the rounding step; pinned kernels must \
                 use separate mul/add (see the non-fused `Complex64::mul_add`)",
            ));
        }
        if let Some(id) = toks[i].ident() {
            if id.contains("fmadd") || id.contains("fmsub") {
                findings.push(Finding::new(
                    PASS,
                    rel,
                    line,
                    fn_name(i),
                    format!(
                        "FMA intrinsic `{id}` contracts mul+add into one rounding; the GEMM \
                         contract pins non-fused vmulpd/vaddpd sequences"
                    ),
                ));
            }
        }
        if let Some(recv) = float_method_receiver(file, toks, i, "mul_add") {
            findings.push(Finding::new(
                PASS,
                rel,
                line,
                fn_name(i),
                format!(
                    "`{recv}.mul_add(..)` on an `f64`/`f32` receiver is a fused \
                     multiply-add; pinned kernels must keep mul and add as separate roundings"
                ),
            ));
        }
        // Rule 2: hash collections.
        if let Some(id) = toks[i].ident() {
            if id == "HashMap" || id == "HashSet" {
                findings.push(Finding::new(
                    PASS,
                    rel,
                    line,
                    fn_name(i),
                    format!(
                        "`{id}` has randomized iteration order; pinned modules feed \
                         fingerprints/checkpoints and must use `BTreeMap`/`Vec`"
                    ),
                ));
            }
        }
        // Rule 3: ambient reads, unless the enclosing fn is allowlisted.
        if let Some(what) = ambient_read(toks, i) {
            let f = fn_name(i);
            let allowed = policy
                .allow_clock_in
                .iter()
                .any(|pat| matches_fn_pattern(&f, pat));
            if !allowed {
                findings.push(Finding::new(
                    PASS,
                    rel,
                    line,
                    f,
                    format!(
                        "{what} is an ambient nondeterministic read; value-producing paths in \
                         pinned modules must be pure (add the fn to `allow_clock_in` only for \
                         timing/temp-naming uses)"
                    ),
                ));
            }
        }
    }
}

/// `f` is `Type::name` or bare `name`; `pat` likewise. Matches when the
/// qualified forms agree, or when a bare pattern matches the bare name.
fn matches_fn_pattern(f: &str, pat: &str) -> bool {
    if f == pat {
        return true;
    }
    if !pat.contains("::") {
        return f.rsplit("::").next() == Some(pat);
    }
    false
}

/// The ambient-read description when `toks[i]` starts one.
fn ambient_read(toks: &[Token], i: usize) -> Option<String> {
    if is_path2(toks, i, "Instant", "now") {
        return Some("`Instant::now()`".to_string());
    }
    if is_path2(toks, i, "SystemTime", "now") || toks[i].is_ident("SystemTime") {
        return Some("`SystemTime`".to_string());
    }
    if is_path2(toks, i, "process", "id") {
        return Some("`process::id()`".to_string());
    }
    if is_path2(toks, i, "thread", "current") {
        return Some("`thread::current()`".to_string());
    }
    // Avoid double-reporting `a::b` forms at both `a` and `b` by only
    // matching these as standalone identifiers.
    let id = toks[i].ident()?;
    let prev_is_path = i >= 2 && toks[i - 1].is_p(':') && toks[i - 2].is_p(':');
    if prev_is_path {
        return None;
    }
    match id {
        "thread_rng" | "SmallRng" | "StdRng" | "OsRng" => Some(format!("`{id}`")),
        _ => None,
    }
}

/// When `toks[i..]` is `recv.mul_add(` with a receiver the type tracker
/// can prove is `f64`/`f32` (a float literal, or a local/param with a
/// float annotation), returns the receiver's rendering. `Complex64`
/// receivers — and anything else unproven — return `None`.
fn float_method_receiver(
    file: &FileModel,
    toks: &[Token],
    i: usize,
    method: &str,
) -> Option<String> {
    if !crate::passes::is_method_call(toks, i, method) {
        return None;
    }
    let recv = toks.get(i.checked_sub(1)?)?;
    match &recv.tok {
        Tok::Num => Some("<float literal>".to_string()),
        Tok::Ident(name) => {
            let f = file.enclosing_fn(i)?;
            let ty = local_float_type(file, f, name)?;
            Some(format!("{name}: {ty}"))
        }
        _ => None,
    }
}

/// Scans a function's params and body for `name: f64` / `let name: f64`
/// style annotations (references and `mut` are skipped). Returns the
/// float type name when found.
fn local_float_type(file: &FileModel, f: &FnInfo, name: &str) -> Option<String> {
    let toks = &file.tokens;
    let (plo, phi) = f.params;
    let (blo, bhi) = f.body.unwrap_or((0, 0));
    let ranges = [(plo, phi), (blo, bhi)];
    for (lo, hi) in ranges {
        let mut i = lo;
        while i + 1 < hi {
            let is_binding = toks[i].is_ident(name)
                && toks[i + 1].is_p(':')
                && !toks.get(i + 2).is_some_and(|t| t.is_p(':'));
            if is_binding {
                let mut j = i + 2;
                while j < hi
                    && (toks[j].is_p('&')
                        || toks[j].is_ident("mut")
                        || matches!(toks[j].tok, Tok::Life))
                {
                    j += 1;
                }
                if let Some(ty) = toks.get(j).and_then(|t| t.ident()) {
                    if ty == "f64" || ty == "f32" {
                        return Some(ty.to_string());
                    }
                }
            }
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn pinned_policy() -> Policy {
        Policy::parse(
            "[determinism]\npinned = [\"pinned.rs\"]\nallow_clock_in = [\"Engine::run\"]\n",
        )
        .unwrap()
    }

    fn check(src: &str) -> Vec<Finding> {
        let file = FileModel::scan(PathBuf::from("pinned.rs"), src);
        run(&[file], &pinned_policy())
    }

    #[test]
    fn flags_f64_mul_add_but_not_complex() {
        let f = check(
            "fn k(acc: f64, a: Complex64, b: Complex64) -> f64 {\n\
             let c = a.mul_add(b, Complex64::ZERO);\n\
             acc.mul_add(2.0, 1.0)\n}",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("acc: f64"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_intrinsics_and_qualified_form() {
        let f = check("fn k() { let x = f64::mul_add(a, b, c); _mm256_fmadd_pd(v, w, z); }");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn flags_hash_collections_outside_tests_only() {
        let f = check(
            "use std::collections::HashMap;\n\
             #[cfg(test)]\nmod tests { use std::collections::HashMap; }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn clock_allowlist_is_honored() {
        let f = check(
            "impl Engine { fn run(&self) { let t = Instant::now(); } }\n\
             impl Engine { fn hash(&self) -> u64 { Instant::now().elapsed().as_nanos() as u64 } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].function, "Engine::hash");
    }

    #[test]
    fn unpinned_files_are_ignored() {
        let file = FileModel::scan(
            PathBuf::from("free.rs"),
            "fn f() { f64::mul_add(a, b, c); }",
        );
        assert!(run(&[file], &pinned_policy()).is_empty());
    }
}
