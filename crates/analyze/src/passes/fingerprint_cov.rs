//! Fingerprint-coverage pass: every field of a policy-named job-config
//! struct must be consumed by its fingerprint function.
//!
//! Checkpoint resume is only sound because the FNV-1a fingerprint binds
//! a checkpoint to the exact job that produced it. Adding a config knob
//! that changes results *without hashing it* lets a resumed run mix
//! tiles computed under different configs — the exact bug class this
//! pass makes a CI failure. Each `[[fingerprint.contract]]` entry names
//! a struct and a function; the pass resolves both across the scanned
//! workspace and requires every named field of the struct to appear as
//! an identifier in the function's body.

use crate::policy::Policy;
use crate::report::Finding;
use crate::scan::FileModel;

const PASS: &str = "fingerprint_coverage";

/// Runs the fingerprint-coverage pass over all contracts.
pub fn run(files: &[FileModel], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    for contract in &policy.contracts {
        // Resolve the struct.
        let strukt = files.iter().find_map(|file| {
            file.structs
                .iter()
                .find(|s| s.name == contract.strukt)
                .map(|s| (file, s))
        });
        let Some((sfile, strukt)) = strukt else {
            findings.push(Finding::new(
                PASS,
                "analyze.toml",
                0,
                "",
                format!(
                    "contract names struct `{}` but no such struct exists in the scanned \
                     workspace — fix the policy or restore the struct",
                    contract.strukt
                ),
            ));
            continue;
        };
        // Resolve the function.
        let func = files.iter().find_map(|file| {
            file.fns
                .iter()
                .find(|f| f.matches(&contract.function) && f.body.is_some())
                .map(|f| (file, f))
        });
        let Some((ffile, func)) = func else {
            findings.push(Finding::new(
                PASS,
                "analyze.toml",
                0,
                "",
                format!(
                    "contract names fingerprint function `{}` but it was not found in the \
                     scanned workspace — fix the policy or restore the function",
                    contract.function
                ),
            ));
            continue;
        };
        let (lo, hi) = func.body.unwrap();
        let body = &ffile.tokens[lo..hi];
        let srel = sfile.path.to_string_lossy().replace('\\', "/");
        for field in &strukt.fields {
            let consumed = body.iter().any(|t| t.is_ident(field));
            if !consumed {
                findings.push(Finding::new(
                    PASS,
                    &srel,
                    strukt.line,
                    func.qualified(),
                    format!(
                        "field `{}.{field}` is not consumed by `{}`; an unhashed config knob \
                         lets checkpoint resume mix results from different jobs — hash the \
                         field (bump the fingerprint version) or move it off the job struct",
                        contract.strukt, contract.function
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(policy_src: &str, src: &str) -> Vec<Finding> {
        let policy = Policy::parse(policy_src).unwrap();
        let file = FileModel::scan(PathBuf::from("x.rs"), src);
        run(&[file], &policy)
    }

    const CONTRACT: &str =
        "[[fingerprint.contract]]\nstruct = \"JobSpec\"\nfunction = \"JobSpec::fingerprint\"\n";

    #[test]
    fn full_coverage_is_clean() {
        let f = check(
            CONTRACT,
            "pub struct JobSpec { rows: usize, cols: usize }\n\
             impl JobSpec { fn fingerprint(&self) -> u64 { h(self.rows); h(self.cols); 0 } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unhashed_field_is_flagged() {
        let f = check(
            CONTRACT,
            "pub struct JobSpec { rows: usize, cols: usize, throttle: u32 }\n\
             impl JobSpec { fn fingerprint(&self) -> u64 { h(self.rows); h(self.cols); 0 } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("JobSpec.throttle"));
    }

    #[test]
    fn missing_struct_or_fn_is_a_policy_error_finding() {
        let f = check(CONTRACT, "fn unrelated() {}");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no such struct"));
        let f = check(CONTRACT, "pub struct JobSpec { rows: usize }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not found"));
    }

    #[test]
    fn free_function_contract_resolves_by_bare_name() {
        let f = check(
            "[[fingerprint.contract]]\nstruct = \"AnsatzConfig\"\nfunction = \"encoding_fingerprint\"\n",
            "pub struct AnsatzConfig { layers: usize, gamma: f64 }\n\
             pub fn encoding_fingerprint(a: &AnsatzConfig) -> u64 { h(a.layers) ^ h(a.gamma) }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
