//! The five lint passes. Each pass is a pure function from
//! `(&[FileModel], &Policy)` to findings — no I/O, no shared state —
//! so the test suite can drive any pass against a fixture file in
//! isolation.

pub mod determinism;
pub mod fingerprint_cov;
pub mod lock_order;
pub mod no_alloc;
pub mod unsafe_audit;

use crate::lexer::Token;

/// `true` when `toks[i..]` is the path call `a::b` (four tokens:
/// ident, `:`, `:`, ident).
pub(crate) fn is_path2(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(a))
        && toks.get(i + 1).is_some_and(|t| t.is_p(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_p(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// `true` when `toks[i..]` is the method call `.name(` (three tokens).
pub(crate) fn is_method_call(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_p('.'))
        && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 2).is_some_and(|t| t.is_p('('))
}

/// The method name when `toks[i..]` is `.name(`.
pub(crate) fn method_call_name(toks: &[Token], i: usize) -> Option<&str> {
    if toks.get(i).is_some_and(|t| t.is_p('.')) && toks.get(i + 2).is_some_and(|t| t.is_p('(')) {
        toks.get(i + 1).and_then(|t| t.ident())
    } else {
        None
    }
}
