//! qk-analyze: the workspace invariant linter.
//!
//! Five project-specific lint passes that clippy cannot express,
//! driven by the checked-in `analyze.toml` policy:
//!
//! | pass | guards |
//! |---|---|
//! | `determinism` | pinned kernels stay bitwise-reproducible (no FMA, no hash-order, no ambient reads) |
//! | `no_alloc` | declared hot-path functions never allocate |
//! | `unsafe_audit` | every `unsafe` carries `// SAFETY:`; inventory pinned to allowlisted crates |
//! | `lock_order` | the inter-lock graph is acyclic; no blocking channel ops under a guard |
//! | `fingerprint_coverage` | every job-config field is hashed into its fingerprint |
//!
//! The crate is self-contained — a hand-rolled lexer and item scanner
//! in the style of the vendored `serde_derive`, a TOML-subset policy
//! parser, and a deterministic JSON writer — so the linter itself obeys
//! the no-new-deps rule it lives under, and dogfoods the determinism
//! contract (sorted walks, `BTreeMap` everywhere, stable output).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod passes;
pub mod policy;
pub mod report;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use policy::Policy;
use report::{Finding, UnsafeEntry};
use scan::FileModel;

/// The result of analyzing a workspace.
#[derive(Debug)]
pub struct Analysis {
    /// All findings across the five passes, sorted.
    pub findings: Vec<Finding>,
    /// The full unsafe inventory (also emitted when clean).
    pub unsafe_inventory: Vec<UnsafeEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Loads and scans every `.rs` file under the policy's scan roots,
/// deterministically (directory entries sorted by name). Paths in the
/// returned models are workspace-relative with `/` separators.
pub fn load_files(root: &Path, policy: &Policy) -> io::Result<Vec<FileModel>> {
    let mut files = Vec::new();
    for scan_root in &policy.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, policy, &mut files)?;
        }
    }
    Ok(files)
}

fn walk(dir: &Path, root: &Path, policy: &Policy, out: &mut Vec<FileModel>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if Policy::path_under(&rel, &policy.scan_exclude) {
            continue;
        }
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, root, policy, out)?;
        } else if rel.ends_with(".rs") {
            let src = fs::read_to_string(&path)?;
            out.push(FileModel::scan(PathBuf::from(rel), &src));
        }
    }
    Ok(())
}

/// Runs all five passes over the scanned files.
pub fn analyze(files: &[FileModel], policy: &Policy) -> Analysis {
    let mut findings = Vec::new();
    findings.extend(passes::determinism::run(files, policy));
    findings.extend(passes::no_alloc::run(files, policy));
    findings.extend(passes::lock_order::run(files, policy));
    findings.extend(passes::fingerprint_cov::run(files, policy));
    let (unsafe_findings, unsafe_inventory) = passes::unsafe_audit::run(files, policy);
    findings.extend(unsafe_findings);
    findings.sort();
    findings.dedup();
    Analysis {
        findings,
        unsafe_inventory,
        files_scanned: files.len(),
    }
}

/// Convenience: load the policy file, scan, and analyze.
pub fn analyze_root(root: &Path, policy_path: &Path) -> Result<(Analysis, Policy), String> {
    let policy_src = fs::read_to_string(policy_path)
        .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
    let policy = Policy::parse(&policy_src).map_err(|e| e.to_string())?;
    let files = load_files(root, &policy).map_err(|e| format!("scan failed: {e}"))?;
    Ok((analyze(&files, &policy), policy))
}

/// The `--explain` text for a lint pass, or `None` for unknown names.
pub fn explain(pass: &str) -> Option<&'static str> {
    match pass {
        "determinism" => Some(
            "determinism — pinned modules must be bitwise-reproducible.\n\
             \n\
             The Gram pipeline pins tile x workers x spill x resume to identical bits\n\
             (see DESIGN.md); a checkpoint is only resumable because recomputing any\n\
             tile yields the same bytes. Three things silently break that:\n\
             \n\
             1. FMA contraction. `f64::mul_add` (and `_mm256_fmadd_*`) rounds once\n\
                where `a * b + c` rounds twice, so an FMA build and a non-FMA build\n\
                disagree in the low bits. The project's `Complex64::mul_add` /\n\
                `conj_mul_add` are NOT fused (they expand to separate mul and add)\n\
                and are allowed; the lint tracks local `f64`/`f32` annotations to\n\
                tell receivers apart.\n\
             2. Hash-order leaks. `std` `HashMap`/`HashSet` iterate in a per-process\n\
                random order; any such order feeding a fingerprint, checkpoint, or\n\
                serialized tile is nondeterministic. Pinned modules must use\n\
                `BTreeMap`/`Vec`.\n\
             3. Ambient reads. `Instant::now`, `SystemTime`, `process::id`,\n\
                `thread::current`, and RNG handles must not feed value-producing\n\
                paths. Functions that only time kernels or name temp dirs are\n\
                declared in `determinism.allow_clock_in`.\n\
             \n\
             Policy: `determinism.pinned` (files), `determinism.allow_clock_in`\n\
             (functions, bare or `Type::name`).",
        ),
        "no_alloc" => Some(
            "no_alloc — declared hot-path functions must not allocate.\n\
             \n\
             The zipper inner product and the GEMM micro-kernels are allocation-free\n\
             by design: workspaces are grown once (amortized) and reused across the\n\
             O(N^2) kernel evaluations of a Gram matrix. One `collect()` in the\n\
             per-pair path turns into millions of allocations at N=64,000.\n\
             \n\
             Functions listed in `no_alloc.functions` may not contain `Vec::new`,\n\
             `vec!`, `to_vec`, `collect`, `clone`, `to_owned`, `Box::new`, `String`\n\
             construction, or `format!`. Growth-path methods (e.g.\n\
             `ZipperWorkspace::ensure`) are deliberately not listed — amortized\n\
             growth is the escape hatch; the per-call path is what stays clean.\n\
             \n\
             Policy: `no_alloc.functions` (bare or `Type::name`).",
        ),
        "unsafe_audit" => Some(
            "unsafe_audit — every `unsafe` is justified, inventoried, and confined.\n\
             \n\
             Each `unsafe` block/fn needs a `// SAFETY:` comment on the lines just\n\
             above the keyword (or the first line of an `unsafe fn` body) stating\n\
             the invariant that makes it sound. The full inventory is written to\n\
             `results/unsafe_audit.json` (sorted, stable) so the unsafe surface is\n\
             diffable PR-over-PR. Files outside `unsafe_audit.allow_paths` may not\n\
             contain unsafe at all — every other crate carries\n\
             `#![forbid(unsafe_code)]`, pinning the surface to the AVX micro-kernel\n\
             in qk-tensor.\n\
             \n\
             Policy: `unsafe_audit.allow_paths`, `unsafe_audit.inventory`.",
        ),
        "lock_order" => Some(
            "lock_order — the inter-lock ordering graph must be acyclic.\n\
             \n\
             Across the lock roots (qk-serve, qk-gram, qk-mpi) the pass extracts\n\
             every `Mutex`/`RwLock` acquisition, models guard lifetimes lexically\n\
             (let-bound guards live to end of block or `drop(g)`; `if let`/`while\n\
             let`/`match` scrutinee temporaries live through the body; other\n\
             temporaries die at the statement), and adds an edge A -> B whenever B\n\
             is taken while A is held — including through calls, via per-function\n\
             lock summaries closed under a fixpoint. A cycle means two threads can\n\
             take the same locks in opposite orders and deadlock.\n\
             \n\
             It also flags blocking `.send(..)`/`.recv(..)` while any guard is\n\
             held (`try_send`/`try_recv` and `Condvar::wait` — which releases its\n\
             guard — are exempt).\n\
             \n\
             Lock identity is `crate::field`, so same-named fields in different\n\
             crates never alias; self-edges are dropped because name identity\n\
             cannot distinguish two instances of one type.\n\
             \n\
             Policy: `lock_order.roots` (path prefixes).",
        ),
        "fingerprint_coverage" => Some(
            "fingerprint_coverage — every job-config field is hashed.\n\
             \n\
             Checkpoint resume is sound only because the FNV-1a fingerprint binds a\n\
             checkpoint to the exact job that produced it. A config knob that\n\
             changes results but is not hashed lets a resumed run silently mix\n\
             tiles computed under different configs — the worst kind of corruption\n\
             because every individual tile checksum still passes.\n\
             \n\
             Each `[[fingerprint.contract]]` entry names a struct and its\n\
             fingerprint function; every named field of the struct must appear in\n\
             the function body. To add a knob: hash it and bump the fingerprint\n\
             format version, or keep it off the job struct (execution-only knobs\n\
             like worker counts belong on the engine config, which is deliberately\n\
             NOT under contract — changing workers must not change results).\n\
             \n\
             Policy: `[[fingerprint.contract]]` with `struct` and `function`.",
        ),
        _ => None,
    }
}

/// The five pass names, for usage text and `--explain` validation.
pub const PASS_NAMES: [&str; 5] = [
    "determinism",
    "no_alloc",
    "unsafe_audit",
    "lock_order",
    "fingerprint_coverage",
];
