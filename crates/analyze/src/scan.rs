//! Lightweight item scanner: turns a token stream into a per-file model
//! of functions (with impl context and body spans), structs (with named
//! fields), `unsafe` sites, and `#[cfg(test)]` regions.
//!
//! This is not a full parser — it is a brace-matching walk that
//! recognizes exactly the item shapes the lint passes need. Anything it
//! does not recognize is simply not modeled, which for a linter is the
//! safe direction: passes only fire on constructs the scanner has
//! positively identified.

use crate::lexer::{lex, Comment, Tok, Token};
use std::path::PathBuf;

/// Whether an `unsafe` keyword introduced a block or a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { ... }`
    Block,
    /// `unsafe fn ...`
    Fn,
    /// `unsafe impl ...` / `unsafe trait ...`
    ImplOrTrait,
}

/// One `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Token index of the `unsafe` keyword.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Block, fn, or impl/trait.
    pub kind: UnsafeKind,
}

/// One function item (free or associated).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, when inside an impl block.
    pub qual: Option<String>,
    /// `true` for `unsafe fn`.
    pub is_unsafe: bool,
    /// Token range (inclusive, exclusive) of the parameter list,
    /// excluding the parentheses.
    pub params: (usize, usize),
    /// Token range of the body, excluding the braces. `None` for
    /// trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Line of the `fn` keyword.
    pub line: u32,
}

impl FnInfo {
    /// `Type::name` when associated, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.qual {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// `true` when `pat` names this function: either the bare name or
    /// the `Type::name` form.
    pub fn matches(&self, pat: &str) -> bool {
        match pat.split_once("::") {
            Some((ty, f)) => self.qual.as_deref() == Some(ty) && self.name == f,
            None => self.name == pat,
        }
    }
}

/// One struct with named fields (tuple structs are not modeled).
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// Named field identifiers, in declaration order.
    pub fields: Vec<String>,
    /// Line of the `struct` keyword.
    pub line: u32,
}

/// The scanned model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comments (for `// SAFETY:` detection).
    pub comments: Vec<Comment>,
    /// Functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Structs with named fields.
    pub structs: Vec<StructInfo>,
    /// `unsafe` sites.
    pub unsafes: Vec<UnsafeSite>,
    /// Token ranges belonging to `#[cfg(test)]` modules.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileModel {
    /// Scans `src` into a model. `path` is kept verbatim for reporting.
    pub fn scan(path: PathBuf, src: &str) -> Self {
        let (tokens, comments) = lex(src);
        let mut model = FileModel {
            path,
            tokens,
            comments,
            fns: Vec::new(),
            structs: Vec::new(),
            unsafes: Vec::new(),
            test_regions: Vec::new(),
        };
        model.walk();
        model
    }

    /// `true` when token index `i` lies inside a `#[cfg(test)]` module.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| lo <= i && i < hi)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(lo, hi)| lo <= i && i < hi))
            .min_by_key(|f| {
                let (lo, hi) = f.body.unwrap();
                hi - lo
            })
    }

    /// Index of the matching close delimiter for the open delimiter at
    /// `open` (which must be `{`, `(` or `[`). Returns `tokens.len()`
    /// when unbalanced.
    pub fn matching(&self, open: usize) -> usize {
        let (o, c) = match self.tokens[open].tok {
            Tok::P('{') => ('{', '}'),
            Tok::P('(') => ('(', ')'),
            Tok::P('[') => ('[', ']'),
            _ => return open,
        };
        let mut depth = 0usize;
        for (j, t) in self.tokens.iter().enumerate().skip(open) {
            if t.is_p(o) {
                depth += 1;
            } else if t.is_p(c) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.tokens.len()
    }

    /// Main walk: builds fns, structs, unsafe sites, impl context and
    /// test regions in one pass over the token stream.
    fn walk(&mut self) {
        // Impl context as a stack of (type name, close-brace index).
        let mut impls: Vec<(String, usize)> = Vec::new();
        let toks = &self.tokens;
        let n = toks.len();
        let mut fns = Vec::new();
        let mut structs = Vec::new();
        let mut unsafes = Vec::new();
        let mut tests = Vec::new();
        let mut i = 0usize;
        while i < n {
            while let Some(&(_, close)) = impls.last() {
                if i > close {
                    impls.pop();
                } else {
                    break;
                }
            }
            let t = &toks[i];
            match &t.tok {
                // `#[cfg(test)]` followed by `mod name {` — record the
                // whole module body as a test region.
                Tok::P('#') if self.is_cfg_test_attr(i) => {
                    let after = self.matching(i + 1) + 1; // past `]`
                    let mut j = after;
                    // Skip further attributes and modifiers up to `mod`.
                    while j < n && !toks[j].is_ident("mod") && j < after + 16 {
                        j += 1;
                    }
                    if j < n && toks[j].is_ident("mod") {
                        let mut k = j + 1;
                        while k < n && !toks[k].is_p('{') && !toks[k].is_p(';') {
                            k += 1;
                        }
                        if k < n && toks[k].is_p('{') {
                            tests.push((k + 1, self.matching(k)));
                            i = self.matching(k) + 1;
                            continue;
                        }
                    }
                    i = after;
                }
                Tok::Ident(id) if id == "unsafe" => {
                    let kind = match toks.get(i + 1).map(|t| &t.tok) {
                        Some(Tok::P('{')) => UnsafeKind::Block,
                        Some(Tok::Ident(k)) if k == "fn" => UnsafeKind::Fn,
                        Some(Tok::Ident(k)) if k == "impl" || k == "trait" => {
                            UnsafeKind::ImplOrTrait
                        }
                        // `unsafe extern "C" fn`, `unsafe async fn`, ...
                        Some(Tok::Ident(_)) => UnsafeKind::Fn,
                        _ => UnsafeKind::Block,
                    };
                    unsafes.push(UnsafeSite {
                        tok: i,
                        line: t.line,
                        kind,
                    });
                    i += 1;
                }
                Tok::Ident(id) if id == "impl" => {
                    if let Some((name, open)) = self.impl_header(i) {
                        impls.push((name, self.matching(open)));
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(id) if id == "fn" => {
                    if let Some(f) = self.fn_item(i, impls.last().map(|(s, _)| s.clone())) {
                        let next = f.body.map(|(_, hi)| hi).unwrap_or(f.params.1) + 1;
                        // Recurse into the body for nested items by NOT
                        // skipping it: only the signature is consumed.
                        let resume = f.params.1 + 1;
                        fns.push(f);
                        i = resume.max(i + 1).min(next);
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(id) if id == "struct" => {
                    if let Some((s, next)) = self.struct_item(i) {
                        structs.push(s);
                        i = next;
                    } else {
                        i += 1;
                    }
                }
                // `mod tests {` without the attribute on rare layouts
                // like `#[cfg(test)]\nmod tests` is handled above; a
                // plain `mod tests {` is treated as test code too.
                Tok::Ident(id) if id == "mod" => {
                    if toks.get(i + 1).and_then(|t| t.ident()) == Some("tests")
                        && toks.get(i + 2).is_some_and(|t| t.is_p('{'))
                    {
                        tests.push((i + 3, self.matching(i + 2)));
                        i = self.matching(i + 2) + 1;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        self.fns = fns;
        self.structs = structs;
        self.unsafes = unsafes;
        self.test_regions = tests;
    }

    /// `true` when token `i` is the `#` of `#[cfg(test)]` (possibly with
    /// extra arms like `#[cfg(all(test, ...))]`).
    fn is_cfg_test_attr(&self, i: usize) -> bool {
        let toks = &self.tokens;
        if !toks.get(i + 1).is_some_and(|t| t.is_p('[')) {
            return false;
        }
        let close = self.matching(i + 1);
        let mut saw_cfg = false;
        let mut saw_test = false;
        for t in &toks[i + 2..close.min(toks.len())] {
            match t.ident() {
                Some("cfg") => saw_cfg = true,
                Some("test") => saw_test = true,
                _ => {}
            }
        }
        saw_cfg && saw_test
    }

    /// Parses an `impl` header starting at the `impl` keyword; returns
    /// the implemented type's name and the index of the opening brace.
    fn impl_header(&self, i: usize) -> Option<(String, usize)> {
        let toks = &self.tokens;
        let n = toks.len();
        let mut j = i + 1;
        let mut after_for: Option<String> = None;
        let mut last_ident: Option<String> = None;
        let mut angle = 0i32;
        while j < n {
            let t = &toks[j];
            if t.is_p('{') && angle == 0 {
                return Some((after_for.or(last_ident)?, j));
            }
            if t.is_p(';') {
                return None;
            }
            if t.is_p('<') {
                angle += 1;
            } else if t.is_p('>') && !(j > 0 && toks[j - 1].is_p('-')) {
                angle -= 1;
            } else if angle == 0 {
                if let Some(id) = t.ident() {
                    match id {
                        "for" => last_ident = None,
                        "where" => {
                            // Type name is settled; scan on for `{`.
                        }
                        _ => {
                            if toks.get(j.wrapping_sub(0)).is_some() {
                                last_ident = Some(id.to_string());
                                if toks[..j]
                                    .iter()
                                    .rev()
                                    .find(|p| matches!(p.tok, Tok::Ident(_)))
                                    .is_some_and(|p| p.is_ident("for"))
                                {
                                    after_for = Some(id.to_string());
                                }
                            }
                        }
                    }
                }
            }
            j += 1;
        }
        None
    }

    /// Parses a `fn` item starting at the `fn` keyword.
    fn fn_item(&self, i: usize, qual: Option<String>) -> Option<FnInfo> {
        let toks = &self.tokens;
        let n = toks.len();
        let name = toks.get(i + 1)?.ident()?.to_string();
        // `unsafe` within the few modifier tokens before `fn`, stopping
        // at item boundaries.
        let mut is_unsafe = false;
        for t in toks[i.saturating_sub(6)..i].iter().rev() {
            if t.is_p(';') || t.is_p('{') || t.is_p('}') {
                break;
            }
            if t.is_ident("unsafe") {
                is_unsafe = true;
            }
        }
        // Skip generics between the name and the parameter list.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_p('<')) {
            let mut angle = 1i32;
            j += 1;
            while j < n && angle > 0 {
                if toks[j].is_p('<') {
                    angle += 1;
                } else if toks[j].is_p('>') && !toks[j - 1].is_p('-') {
                    angle -= 1;
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_p('(')) {
            return None;
        }
        let params_close = self.matching(j);
        let params = (j + 1, params_close);
        // Find the body `{` or a `;` at top nesting after the params.
        let mut k = params_close + 1;
        let mut depth = 0i32;
        let body = loop {
            if k >= n {
                break None;
            }
            let t = &toks[k];
            if depth == 0 && t.is_p('{') {
                break Some((k + 1, self.matching(k)));
            }
            if depth == 0 && t.is_p(';') {
                break None;
            }
            match t.tok {
                Tok::P('(') | Tok::P('[') => depth += 1,
                Tok::P(')') | Tok::P(']') => depth -= 1,
                _ => {}
            }
            k += 1;
        };
        Some(FnInfo {
            name,
            qual,
            is_unsafe,
            params,
            body,
            line: toks[i].line,
        })
    }

    /// Parses a `struct` item with named fields; returns the struct and
    /// the token index to resume scanning at.
    fn struct_item(&self, i: usize) -> Option<(StructInfo, usize)> {
        let toks = &self.tokens;
        let n = toks.len();
        let name = toks.get(i + 1)?.ident()?.to_string();
        let line = toks[i].line;
        // Find `{` (named fields), `(` (tuple struct: skip), or `;`.
        let mut j = i + 2;
        let mut angle = 0i32;
        loop {
            if j >= n {
                return None;
            }
            let t = &toks[j];
            if t.is_p('<') {
                angle += 1;
            } else if t.is_p('>') && !toks[j - 1].is_p('-') {
                angle -= 1;
            } else if angle == 0 {
                if t.is_p('{') {
                    break;
                }
                if t.is_p('(') || t.is_p(';') {
                    // Tuple struct or unit struct: not modeled.
                    return None;
                }
            }
            j += 1;
        }
        let open = j;
        let close = self.matching(open);
        let mut fields = Vec::new();
        let mut k = open + 1;
        while k < close {
            // Skip attributes on the field.
            while k < close && toks[k].is_p('#') {
                k = self.matching(k + 1) + 1;
            }
            // Skip visibility.
            if toks.get(k).is_some_and(|t| t.is_ident("pub")) {
                k += 1;
                if toks.get(k).is_some_and(|t| t.is_p('(')) {
                    k = self.matching(k) + 1;
                }
            }
            // `ident :` is a field.
            let is_field = toks.get(k).and_then(|t| t.ident()).is_some()
                && toks.get(k + 1).is_some_and(|t| t.is_p(':'));
            if is_field {
                fields.push(toks[k].ident().unwrap().to_string());
                // Skip the type up to the next `,` at delimiter depth 0.
                let mut d = 0i32;
                k += 2;
                while k < close {
                    let t = &toks[k];
                    match t.tok {
                        Tok::P('(') | Tok::P('[') | Tok::P('{') => d += 1,
                        Tok::P(')') | Tok::P(']') | Tok::P('}') => d -= 1,
                        Tok::P('<') => d += 1,
                        Tok::P('>') if !toks[k - 1].is_p('-') => {
                            d -= 1;
                        }
                        Tok::P(',') if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                k += 1;
            }
        }
        Some((StructInfo { name, fields, line }, close + 1))
    }
}

#[cfg(test)]
mod scan_tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::scan(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn finds_fns_with_impl_context() {
        let m = model(
            "impl Foo { pub fn a(&self) -> u32 { 1 } }\n\
             impl Display for Bar { fn fmt(&self, f: &mut F) -> R { x } }\n\
             fn free(x: usize) {}",
        );
        let names: Vec<String> = m.fns.iter().map(FnInfo::qualified).collect();
        assert_eq!(names, ["Foo::a", "Bar::fmt", "free"]);
        assert!(m.fns[0].matches("Foo::a"));
        assert!(m.fns[0].matches("a"));
        assert!(!m.fns[0].matches("Bar::a"));
    }

    #[test]
    fn finds_struct_fields_with_generic_types() {
        let m = model(
            "pub struct S { pub a: u64, b: Option<(usize, Vec<M>)>, #[attr] c: f64 }\n\
             struct Tuple(u8, u8);",
        );
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields, ["a", "b", "c"]);
    }

    #[test]
    fn unsafe_sites_and_kinds() {
        let m = model("unsafe fn f() { } fn g() { unsafe { h() } }");
        assert_eq!(m.unsafes.len(), 2);
        assert_eq!(m.unsafes[0].kind, UnsafeKind::Fn);
        assert_eq!(m.unsafes[1].kind, UnsafeKind::Block);
        assert!(m.fns[0].is_unsafe);
        assert!(!m.fns[1].is_unsafe);
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let m = model("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { bad() } }");
        let bad = m.tokens.iter().position(|t| t.is_ident("bad")).unwrap();
        assert!(m.in_test(bad));
        let live = m.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!m.in_test(live));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let m = model("fn outer() { let x = 1; fn inner() { marker(); } }");
        let mk = m.tokens.iter().position(|t| t.is_ident("marker")).unwrap();
        assert_eq!(m.enclosing_fn(mk).unwrap().name, "inner");
    }

    #[test]
    fn fn_with_where_clause_and_generics() {
        let m = model(
            "pub fn run<T, F>(n: usize, body: F) -> Vec<T> where T: Send, F: Fn(&mut P) -> T + Sync { go() }",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "run");
        let (lo, hi) = m.fns[0].body.unwrap();
        assert!(m.tokens[lo..hi].iter().any(|t| t.is_ident("go")));
    }
}
