//! The `analyze.toml` policy: which files are pinned for determinism,
//! which functions are no-alloc, where unsafe is permitted, and which
//! struct/function pairs form fingerprint contracts.
//!
//! Parsed with a hand-rolled TOML subset (tables, arrays-of-tables,
//! string / string-array / integer / boolean values) so the crate stays
//! dependency-free, matching the workspace's vendored-only rule.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Quoted string.
    Str(String),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Homogeneous-enough array.
    Array(Vec<Value>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_str_array(&self) -> Vec<String> {
        match self {
            Value::Array(items) => items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            Value::Str(s) => vec![s.clone()],
            _ => Vec::new(),
        }
    }
}

/// Policy parse error with a line number.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line in the policy file.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze.toml:{}: {}", self.line, self.msg)
    }
}

/// One `[[fingerprint.contract]]` entry: every named field of `strukt`
/// must appear in the body of `function`.
#[derive(Debug, Clone)]
pub struct FingerprintContract {
    /// Struct whose fields form the contract.
    pub strukt: String,
    /// Function (bare or `Type::name`) that must consume every field.
    pub function: String,
}

/// The full policy driving all five passes.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Path prefixes to skip entirely.
    pub scan_exclude: Vec<String>,
    /// Files (workspace-relative) pinned for bitwise determinism.
    pub pinned: Vec<String>,
    /// Functions allowed to read the clock / process id (timing and
    /// temp-naming only — never value-producing).
    pub allow_clock_in: Vec<String>,
    /// Functions (bare or `Type::name`) that must not allocate.
    pub no_alloc_fns: Vec<String>,
    /// Path prefixes whose files participate in lock-order analysis.
    pub lock_roots: Vec<String>,
    /// Path prefixes where `unsafe` is permitted (with `// SAFETY:`).
    pub unsafe_allow: Vec<String>,
    /// Where to write the unsafe inventory.
    pub unsafe_inventory: String,
    /// Fingerprint coverage contracts.
    pub contracts: Vec<FingerprintContract>,
}

impl Policy {
    /// Parses a policy from TOML text.
    pub fn parse(src: &str) -> Result<Policy, PolicyError> {
        let raw = parse_toml(src)?;
        let get = |table: &str, key: &str| -> Vec<String> {
            raw.tables
                .get(table)
                .and_then(|t| t.get(key))
                .map(|v| v.as_str_array())
                .unwrap_or_default()
        };
        let get_str = |table: &str, key: &str, default: &str| -> String {
            raw.tables
                .get(table)
                .and_then(|t| t.get(key))
                .and_then(|v| v.as_str().map(str::to_string))
                .unwrap_or_else(|| default.to_string())
        };
        let mut contracts = Vec::new();
        for entry in raw
            .table_arrays
            .get("fingerprint.contract")
            .into_iter()
            .flatten()
        {
            let strukt = entry.get("struct").and_then(|v| v.as_str());
            let function = entry.get("function").and_then(|v| v.as_str());
            if let (Some(s), Some(f)) = (strukt, function) {
                contracts.push(FingerprintContract {
                    strukt: s.to_string(),
                    function: f.to_string(),
                });
            }
        }
        // Without an explicit `[scan] roots`, fall back to the standard
        // workspace layout rather than silently scanning nothing — an
        // empty scan would make `--deny` pass vacuously.
        let mut scan_roots = get("scan", "roots");
        if scan_roots.is_empty() {
            scan_roots = ["crates", "src", "tests", "examples"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        }
        Ok(Policy {
            scan_roots,
            scan_exclude: get("scan", "exclude"),
            pinned: get("determinism", "pinned"),
            allow_clock_in: get("determinism", "allow_clock_in"),
            no_alloc_fns: get("no_alloc", "functions"),
            lock_roots: get("lock_order", "roots"),
            unsafe_allow: get("unsafe_audit", "allow_paths"),
            unsafe_inventory: get_str("unsafe_audit", "inventory", "results/unsafe_audit.json"),
            contracts,
        })
    }

    /// `true` when `path` (workspace-relative, `/`-separated) is under
    /// any of `prefixes`.
    pub fn path_under(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path == p || path.starts_with(p))
    }
}

/// A flat TOML document: `tables["a.b"]["key"]` and
/// `table_arrays["a.b"]` for `[[a.b]]` entries.
#[derive(Debug, Default)]
struct RawToml {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
    table_arrays: BTreeMap<String, Vec<BTreeMap<String, Value>>>,
}

fn parse_toml(src: &str) -> Result<RawToml, PolicyError> {
    let mut doc = RawToml::default();
    // Current insertion point: either a named table or the newest entry
    // of an array-of-tables.
    enum Cursor {
        Table(String),
        ArrayEntry(String),
    }
    let mut cursor = Cursor::Table(String::new());
    let lines: Vec<&str> = src.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let lineno = idx + 1;
        let mut line = strip_comment(lines[idx]).trim().to_string();
        idx += 1;
        if line.is_empty() {
            continue;
        }
        // Multi-line arrays: keep consuming lines until brackets
        // balance (quotes respected via strip_comment's scanner).
        while line.contains('=') && bracket_balance(&line) > 0 && idx < lines.len() {
            line.push(' ');
            line.push_str(strip_comment(lines[idx]).trim());
            idx += 1;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.table_arrays
                .entry(name.clone())
                .or_default()
                .push(BTreeMap::new());
            cursor = Cursor::ArrayEntry(name);
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            cursor = Cursor::Table(name);
        } else if let Some((key, rest)) = line.split_once('=') {
            let key = key.trim().to_string();
            let value = parse_value(rest.trim(), lineno)?;
            match &cursor {
                Cursor::Table(t) => {
                    doc.tables.entry(t.clone()).or_default().insert(key, value);
                }
                Cursor::ArrayEntry(t) => {
                    doc.table_arrays
                        .get_mut(t)
                        .and_then(|v| v.last_mut())
                        .ok_or_else(|| PolicyError {
                            line: lineno,
                            msg: "array-of-tables entry vanished".to_string(),
                        })?
                        .insert(key, value);
                }
            }
        } else {
            return Err(PolicyError {
                line: lineno,
                msg: format!("unrecognized line: {line}"),
            });
        }
    }
    Ok(doc)
}

/// Net `[` minus `]` count outside quoted strings.
fn bracket_balance(line: &str) -> i32 {
    let mut bal = 0i32;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in line.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    bal
}

/// Removes a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(s: &str, line: usize) -> Result<Value, PolicyError> {
    let err = |msg: String| PolicyError { line, msg };
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err("unterminated array".to_string()))?;
        let mut items = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, line)?);
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| err("unterminated string".to_string()))?;
        return Ok(Value::Str(unescape(inner)));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(format!("unsupported value: {s}")))
}

/// Splits an array body on commas outside quotes.
fn split_array(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_policy_shape() {
        let src = r#"
# workspace policy
[scan]
roots = ["crates", "src"]
exclude = ["crates/analyze/tests/fixtures"] # fixture corpus

[determinism]
pinned = ["crates/tensor/src/matrix.rs"]
allow_clock_in = ["GramEngine::run"]

[no_alloc]
functions = ["Mps::inner_into", "compute_tile"]

[lock_order]
roots = ["crates/serve/src"]

[unsafe_audit]
allow_paths = ["crates/tensor/"]
inventory = "results/unsafe_audit.json"

[[fingerprint.contract]]
struct = "JobSpec"
function = "JobSpec::fingerprint"

[[fingerprint.contract]]
struct = "AnsatzConfig"
function = "encoding_fingerprint"
"#;
        let p = Policy::parse(src).unwrap();
        assert_eq!(p.scan_roots, ["crates", "src"]);
        assert_eq!(p.pinned, ["crates/tensor/src/matrix.rs"]);
        assert_eq!(p.no_alloc_fns, ["Mps::inner_into", "compute_tile"]);
        assert_eq!(p.contracts.len(), 2);
        assert_eq!(p.contracts[0].strukt, "JobSpec");
        assert_eq!(p.contracts[1].function, "encoding_fingerprint");
        assert_eq!(p.unsafe_inventory, "results/unsafe_audit.json");
    }

    #[test]
    fn multiline_arrays_parse() {
        let p = Policy::parse(
            "[determinism]\npinned = [\n  \"a.rs\", # kernel\n  \"b.rs\",\n]\n[no_alloc]\nfunctions = [\"f\"]\n",
        )
        .unwrap();
        assert_eq!(p.pinned, ["a.rs", "b.rs"]);
        assert_eq!(p.no_alloc_fns, ["f"]);
    }

    #[test]
    fn missing_scan_roots_default_to_workspace_layout() {
        let p = Policy::parse("[determinism]\npinned = [\"src/kernel.rs\"]\n").unwrap();
        assert_eq!(p.scan_roots, ["crates", "src", "tests", "examples"]);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = Policy::parse("[scan]\nroots oops").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn path_prefix_matching() {
        let allow = vec!["crates/tensor/".to_string()];
        assert!(Policy::path_under("crates/tensor/src/matrix.rs", &allow));
        assert!(!Policy::path_under("crates/mps/src/mps.rs", &allow));
    }
}
