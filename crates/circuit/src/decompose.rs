//! Single-qubit unitary decomposition.
//!
//! Any `U in U(2)` factors as `U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)`
//! (the ZYZ Euler decomposition). This is how opaque fused gates
//! ([`crate::Gate::Unitary1`], produced by the optimizer) are lowered back
//! to the named rotation set — for QASM interchange, for hardware-style
//! gate counting, and for any backend that only accepts rotations.

use crate::gate::Gate;
use qk_tensor::complex::Complex64;
use qk_tensor::tensor::Tensor;

/// ZYZ Euler angles of a single-qubit unitary:
/// `U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zyz {
    /// Global phase.
    pub alpha: f64,
    /// First (leftmost) Z rotation angle.
    pub beta: f64,
    /// Middle Y rotation angle, in `[0, pi]`.
    pub gamma: f64,
    /// Last (rightmost) Z rotation angle.
    pub delta: f64,
}

impl Zyz {
    /// Reconstructs the unitary `e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)`
    /// as a 2x2 tensor.
    pub fn matrix(&self) -> Tensor {
        let phase = Complex64::cis(self.alpha);
        let rz_b = Gate::Rz(self.beta).matrix();
        let ry_g = Gate::Ry(self.gamma).matrix();
        let rz_d = Gate::Rz(self.delta).matrix();
        let mut prod = qk_tensor::contract(&rz_b, &[1], &ry_g, &[0]);
        prod = qk_tensor::contract(&prod, &[1], &rz_d, &[0]);
        prod.scale_inplace(phase);
        prod
    }

    /// The rotation sequence as gates, omitting rotations with negligible
    /// angle. Global phase is *not* representable as a gate; callers that
    /// need it must track `alpha` separately.
    pub fn to_gates(&self) -> Vec<Gate> {
        let mut gates = Vec::new();
        // Emission order is application order: Rz(delta) first.
        if self.delta.abs() > 1e-15 {
            gates.push(Gate::Rz(self.delta));
        }
        if self.gamma.abs() > 1e-15 {
            gates.push(Gate::Ry(self.gamma));
        }
        if self.beta.abs() > 1e-15 {
            gates.push(Gate::Rz(self.beta));
        }
        gates
    }
}

/// Computes the ZYZ decomposition of a 2x2 unitary given as a row-major
/// 4-entry buffer `[u00, u01, u10, u11]`.
///
/// # Panics
/// Panics if the matrix is not unitary within `1e-9`.
pub fn zyz_decompose(u: &[Complex64; 4]) -> Zyz {
    let t = Tensor::from_data(&[2, 2], u.to_vec());
    assert!(
        crate::gate::is_unitary(&t, 1e-9),
        "zyz_decompose requires a unitary matrix"
    );
    let [u00, u01, u10, u11] = *u;

    // Writing U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta) entrywise:
    //   u00 = e^{i(alpha - beta/2 - delta/2)} cos(gamma/2)
    //   u01 = -e^{i(alpha - beta/2 + delta/2)} sin(gamma/2)
    //   u10 = e^{i(alpha + beta/2 - delta/2)} sin(gamma/2)
    //   u11 = e^{i(alpha + beta/2 + delta/2)} cos(gamma/2)
    let cos_half = u00.norm().min(1.0);
    let sin_half = u10.norm().min(1.0);
    // atan2 is robust at both poles (gamma = 0 and gamma = pi).
    let gamma = 2.0 * sin_half.atan2(cos_half);

    let (alpha, beta, delta);
    if cos_half >= sin_half {
        // u00, u11 carry reliable phases.
        let p00 = u00.arg();
        let p11 = u11.arg();
        alpha = 0.5 * (p00 + p11);
        if sin_half > 1e-12 {
            let p10 = u10.arg();
            // (beta - delta)/2 from u10's phase, (beta + delta)/2 from u11's.
            let beta_minus_delta_half = p10 - alpha;
            let beta_plus_delta_half = p11 - alpha;
            let b = beta_minus_delta_half + beta_plus_delta_half;
            let d = beta_plus_delta_half - beta_minus_delta_half;
            return canonical(Zyz {
                alpha,
                beta: b,
                gamma,
                delta: d,
            });
        }
        // gamma ~ 0: only beta + delta is determined; put it all in delta.
        let sum = p11 - p00; // (beta + delta)
        beta = 0.0;
        delta = sum;
    } else {
        // Near gamma = pi: u01, u10 carry reliable phases.
        let p10 = u10.arg();
        // -u01 = e^{i(alpha - beta/2 + delta/2)} sin(gamma/2)
        let p01 = (-u01).arg();
        alpha = 0.5 * (p10 + p01);
        if cos_half > 1e-12 {
            let p00 = u00.arg();
            let beta_minus_delta_half = p10 - alpha;
            let minus_beta_minus_delta_half = p00 - alpha;
            let b = beta_minus_delta_half - minus_beta_minus_delta_half;
            let d = -(beta_minus_delta_half + minus_beta_minus_delta_half);
            return canonical(Zyz {
                alpha,
                beta: b,
                gamma,
                delta: d,
            });
        }
        // gamma ~ pi: only beta - delta is determined; put it in beta.
        let diff = p10 - p01; // (beta - delta)
        beta = diff;
        delta = 0.0;
    }
    canonical(Zyz {
        alpha,
        beta,
        gamma,
        delta,
    })
}

/// Wraps angles into `(-2pi, 2pi]`-ish canonical ranges for stable
/// round-trips; the matrix is unchanged.
fn canonical(z: Zyz) -> Zyz {
    use std::f64::consts::PI;
    let wrap = |t: f64| {
        let mut t = t % (4.0 * PI);
        if t > 2.0 * PI {
            t -= 4.0 * PI;
        } else if t <= -2.0 * PI {
            t += 4.0 * PI;
        }
        t
    };
    Zyz {
        alpha: z.alpha,
        beta: wrap(z.beta),
        gamma: z.gamma,
        delta: wrap(z.delta),
    }
}

/// Decomposes a single-qubit [`Gate`] into ZYZ form via its matrix.
pub fn decompose_gate(gate: &Gate) -> Zyz {
    assert_eq!(
        gate.arity(),
        1,
        "ZYZ decomposition is for single-qubit gates"
    );
    let m = gate.matrix();
    let mut u = [Complex64::ZERO; 4];
    u.copy_from_slice(m.data());
    zyz_decompose(&u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_tensor::complex::c64;

    fn assert_reconstructs(u: &[Complex64; 4], tol: f64) {
        let z = zyz_decompose(u);
        let back = z.matrix();
        let orig = Tensor::from_data(&[2, 2], u.to_vec());
        assert!(
            back.l1_distance(&orig) < tol,
            "zyz {z:?} reconstructed {:?} vs {:?}",
            back.data(),
            orig.data()
        );
    }

    fn gate_entries(g: &Gate) -> [Complex64; 4] {
        let m = g.matrix();
        let mut u = [Complex64::ZERO; 4];
        u.copy_from_slice(m.data());
        u
    }

    #[test]
    fn identity_decomposes_trivially() {
        let u = [
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ];
        let z = zyz_decompose(&u);
        assert!(z.gamma.abs() < 1e-12);
        assert_reconstructs(&u, 1e-12);
        assert!(z.to_gates().is_empty());
    }

    #[test]
    fn named_gates_reconstruct() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.9),
            Gate::Rx(3.8),
        ] {
            let u = gate_entries(&g);
            assert_reconstructs(&u, 1e-10);
        }
    }

    #[test]
    fn pure_rz_keeps_zero_gamma() {
        let z = decompose_gate(&Gate::Rz(1.1));
        assert!(z.gamma.abs() < 1e-12);
        let back = z.matrix();
        assert!(back.l1_distance(&Gate::Rz(1.1).matrix()) < 1e-12);
    }

    #[test]
    fn x_gate_is_gamma_pi() {
        let z = decompose_gate(&Gate::X);
        assert!((z.gamma - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn random_unitaries_reconstruct() {
        // Haar-ish random unitaries from random rotation products.
        let angles = [
            (0.3, 1.7, -2.1),
            (2.9, 0.1, 0.4),
            (-1.3, 2.2, 3.0),
            (0.01, -0.02, 0.03),
            (3.1, 3.1, -3.1),
        ];
        for (a, b, c) in angles {
            let m1 = Gate::Rz(a).matrix();
            let m2 = Gate::Ry(b).matrix();
            let m3 = Gate::Rz(c).matrix();
            let mut prod = qk_tensor::contract(&m1, &[1], &m2, &[0]);
            prod = qk_tensor::contract(&prod, &[1], &m3, &[0]);
            // Add a global phase to exercise alpha.
            prod.scale_inplace(Complex64::cis(0.6));
            let mut u = [Complex64::ZERO; 4];
            u.copy_from_slice(prod.data());
            assert_reconstructs(&u, 1e-9);
        }
    }

    #[test]
    fn to_gates_matches_matrix_up_to_phase() {
        let z = decompose_gate(&Gate::H);
        let mut acc = Tensor::identity(2);
        for g in z.to_gates() {
            acc = qk_tensor::contract(&g.matrix(), &[1], &acc, &[0]);
        }
        acc.scale_inplace(Complex64::cis(z.alpha));
        assert!(acc.l1_distance(&Gate::H.matrix()) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn rejects_non_unitary() {
        let u = [
            c64(2.0, 0.0),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ];
        let _ = zyz_decompose(&u);
    }
}
