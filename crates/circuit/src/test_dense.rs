//! Minimal dense simulator for in-crate equivalence tests.
//!
//! `qk-statevector` depends on this crate, so using it as a
//! dev-dependency would create a second instance of `qk-circuit` in the
//! graph with incompatible types. The handful of lines below is the
//! price of keeping the dependency graph acyclic; the full-featured
//! ground-truth simulator lives in `qk-statevector`.

use crate::circuit::Circuit;
use qk_tensor::complex::Complex64;

/// Applies `circuit` to `|0...0>` and returns the dense amplitude vector
/// (qubit 0 is the most significant bit, matching `qk-statevector`).
pub(crate) fn simulate_dense(circuit: &Circuit) -> Vec<Complex64> {
    let m = circuit.num_qubits();
    assert!(m <= 16, "test helper caps at 16 qubits");
    let dim = 1usize << m;
    let mut amps = vec![Complex64::ZERO; dim];
    amps[0] = Complex64::ONE;
    for op in circuit.ops() {
        let u = op.gate.matrix();
        let ud = u.data();
        match op.qubits.as_slice() {
            [q] => {
                let shift = m - 1 - q;
                for idx in 0..dim {
                    if (idx >> shift) & 1 == 0 {
                        let j = idx | (1 << shift);
                        let (a0, a1) = (amps[idx], amps[j]);
                        amps[idx] = ud[0] * a0 + ud[1] * a1;
                        amps[j] = ud[2] * a0 + ud[3] * a1;
                    }
                }
            }
            [a, b] => {
                let (sa, sb) = (m - 1 - a, m - 1 - b);
                for idx in 0..dim {
                    if (idx >> sa) & 1 == 0 && (idx >> sb) & 1 == 0 {
                        let i00 = idx;
                        let i01 = idx | (1 << sb);
                        let i10 = idx | (1 << sa);
                        let i11 = idx | (1 << sa) | (1 << sb);
                        let v = [amps[i00], amps[i01], amps[i10], amps[i11]];
                        for (r, &target) in [i00, i01, i10, i11].iter().enumerate() {
                            let mut acc = Complex64::ZERO;
                            for (c, &vc) in v.iter().enumerate() {
                                acc += ud[r * 4 + c] * vc;
                            }
                            amps[target] = acc;
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    amps
}
