//! The paper's feature-map circuit ansatz (Section II-A / II-C).
//!
//! A data vector `x` (rescaled to the `(0, 2)` interval) on `m` features is
//! encoded as `|psi(x)> = U(x) |+>^m` with
//!
//! ```text
//! U(x) = ( e^{-i H_XX(x)} e^{-i H_Z(x)} )^r
//! H_Z(x)  = gamma       * sum_i          x_i            Z_i          (eq. 4)
//! H_XX(x) = gamma^2 pi/2 * sum_{(i,j) in G} (1-x_i)(1-x_j) X_i X_j   (eq. 5)
//! ```
//!
//! where `G` is a linear chain with interaction distance `d`. With the
//! convention `RZ(t) = e^{-i t/2 Z}` the `H_Z` factor is `RZ(2 gamma x_i)`
//! per qubit and the `H_XX` factor is `RXX(pi gamma^2 (1-x_i)(1-x_j))` per
//! edge.
//!
//! The RXX gates within one `e^{-i H_XX}` block commute, so they are emitted
//! in a schedule of at most `2d` full layers (the paper's footnote 3),
//! produced by [`xx_layers`].

use crate::circuit::Circuit;
use crate::gate::Gate;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Hyperparameters of the feature-map ansatz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnsatzConfig {
    /// Number of `e^{-i H_XX} e^{-i H_Z}` repetitions (`r` in the paper).
    pub layers: usize,
    /// Qubit interaction distance on the linear chain (`d`).
    pub interaction_distance: usize,
    /// Kernel bandwidth coefficient (`gamma`).
    pub gamma: f64,
}

impl AnsatzConfig {
    /// The configuration used for the paper's large-scale QML runs
    /// (Figs. 8-10): `r = 2`, `d = 1`, `gamma = 0.1`.
    pub fn qml_default() -> Self {
        AnsatzConfig {
            layers: 2,
            interaction_distance: 1,
            gamma: 0.1,
        }
    }

    /// New configuration.
    pub fn new(layers: usize, interaction_distance: usize, gamma: f64) -> Self {
        AnsatzConfig {
            layers,
            interaction_distance,
            gamma,
        }
    }
}

/// Edges of a linear chain of `m` qubits with interaction distance `d`:
/// all pairs `(i, j)` with `0 < j - i <= d`, in `(distance, i)` order.
pub fn linear_chain_edges(m: usize, d: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for k in 1..=d {
        for i in 0..m.saturating_sub(k) {
            edges.push((i, i + k));
        }
    }
    edges
}

/// Partitions the chain edges into layers of pairwise-disjoint edges.
///
/// Edges at distance `k` form `k` disjoint paths; 2-coloring each path by
/// the parity of `floor(i / k)` yields two layers per distance, hence at
/// most `2d` layers total — the construction behind the paper's claim that
/// `e^{-i H_XX}` realizes in `2d` layers.
pub fn xx_layers(m: usize, d: usize) -> Vec<Vec<(usize, usize)>> {
    let mut layers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 2 * d];
    for k in 1..=d {
        for i in 0..m.saturating_sub(k) {
            let parity = (i / k) % 2;
            layers[2 * (k - 1) + parity].push((i, i + k));
        }
    }
    layers.retain(|layer| !layer.is_empty());
    layers
}

/// Rotation angle of the `RZ` gate on qubit `i`: `2 gamma x_i` (eq. 4).
#[inline]
pub fn rz_angle(gamma: f64, xi: f64) -> f64 {
    2.0 * gamma * xi
}

/// Rotation angle of the `RXX` gate on edge `(i, j)`:
/// `pi gamma^2 (1 - x_i)(1 - x_j)` (eq. 5).
#[inline]
pub fn rxx_angle(gamma: f64, xi: f64, xj: f64) -> f64 {
    PI * gamma * gamma * (1.0 - xi) * (1.0 - xj)
}

/// Builds the full feature-map circuit `U(x) |+>^m` for one data point.
///
/// The number of qubits equals `features.len()`. Features are expected to
/// be rescaled to the `(0, 2)` interval (see `qk-data`); values outside
/// merely change angles, nothing panics.
///
/// # Panics
/// Panics if `features` is empty or any feature is non-finite.
pub fn feature_map_circuit(features: &[f64], cfg: &AnsatzConfig) -> Circuit {
    assert!(!features.is_empty(), "feature vector must be non-empty");
    assert!(
        features.iter().all(|x| x.is_finite()),
        "features must be finite"
    );
    let m = features.len();
    let mut circuit = Circuit::new(m);

    // |+>^m preparation.
    for q in 0..m {
        circuit.push1(Gate::H, q);
    }

    let layers = xx_layers(m, cfg.interaction_distance);
    for _rep in 0..cfg.layers {
        // e^{-i H_Z(x)}: one RZ per qubit.
        for (q, &x) in features.iter().enumerate() {
            circuit.push1(Gate::Rz(rz_angle(cfg.gamma, x)), q);
        }
        // e^{-i H_XX(x)}: RXX per edge, emitted layer by layer.
        for layer in &layers {
            for &(i, j) in layer {
                circuit.push2(
                    Gate::Rxx(rxx_angle(cfg.gamma, features[i], features[j])),
                    i,
                    j,
                );
            }
        }
    }
    circuit
}

/// Expected number of RXX gates in one `e^{-i H_XX}` block.
pub fn xx_gate_count(m: usize, d: usize) -> usize {
    (1..=d).map(|k| m.saturating_sub(k)).sum()
}

/// Expected number of SWAP gates the MPS router inserts for one
/// `e^{-i H_XX}` block: `2(k-1)` per distance-`k` edge.
pub fn swap_overhead(m: usize, d: usize) -> usize {
    (1..=d).map(|k| m.saturating_sub(k) * 2 * (k - 1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_edges_distance_one() {
        assert_eq!(linear_chain_edges(4, 1), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn chain_edges_distance_two() {
        let edges = linear_chain_edges(5, 2);
        assert_eq!(
            edges,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3), (2, 4)]
        );
    }

    #[test]
    fn chain_edge_count_formula() {
        for m in [2usize, 5, 10, 33] {
            for d in 1..m {
                assert_eq!(linear_chain_edges(m, d).len(), xx_gate_count(m, d));
            }
        }
    }

    #[test]
    fn xx_layers_are_disjoint_and_cover() {
        for (m, d) in [(8usize, 1usize), (10, 3), (12, 5), (5, 4)] {
            let layers = xx_layers(m, d);
            assert!(layers.len() <= 2 * d, "more than 2d layers for m={m} d={d}");
            let mut all: Vec<(usize, usize)> = Vec::new();
            for layer in &layers {
                let mut used = std::collections::HashSet::new();
                for &(i, j) in layer {
                    assert!(used.insert(i), "qubit {i} reused within a layer");
                    assert!(used.insert(j), "qubit {j} reused within a layer");
                }
                all.extend_from_slice(layer);
            }
            all.sort_unstable();
            let mut expect = linear_chain_edges(m, d);
            expect.sort_unstable();
            assert_eq!(all, expect, "layers do not cover chain edges");
        }
    }

    #[test]
    fn angles_follow_equations() {
        assert!((rz_angle(0.5, 1.2) - 1.2).abs() < 1e-15);
        let g = 0.7f64;
        let (xi, xj) = (0.3, 1.5);
        let expect = PI * g * g * (1.0 - xi) * (1.0 - xj);
        assert!((rxx_angle(g, xi, xj) - expect).abs() < 1e-15);
    }

    #[test]
    fn circuit_structure_counts() {
        let features = [0.5, 1.0, 1.5, 0.2];
        let cfg = AnsatzConfig::new(3, 2, 1.0);
        let c = feature_map_circuit(&features, &cfg);
        let m = features.len();
        // H on every qubit + r * (m RZ).
        assert_eq!(c.one_qubit_count(), m + cfg.layers * m);
        // r * edges RXX, no SWAPs before routing.
        assert_eq!(c.two_qubit_count(), cfg.layers * xx_gate_count(m, 2));
        assert_eq!(c.swap_count(), 0);
        assert_eq!(c.num_qubits(), m);
    }

    #[test]
    fn d1_circuit_is_mps_local() {
        let features = [0.5, 1.0, 1.5];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 1, 0.5));
        assert!(c.is_mps_local());
    }

    #[test]
    fn d2_circuit_is_not_local() {
        let features = [0.5, 1.0, 1.5];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(1, 2, 0.5));
        assert!(!c.is_mps_local());
    }

    #[test]
    fn gamma_zero_gives_trivial_rotations() {
        // gamma = 0: all RZ and RXX angles vanish -> state stays |+>^m.
        let features = [0.4, 0.9];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(1, 1, 0.0));
        for op in c.ops() {
            match &op.gate {
                Gate::Rz(t) | Gate::Rxx(t) => assert_eq!(*t, 0.0),
                Gate::H => {}
                g => panic!("unexpected gate {}", g.name()),
            }
        }
    }

    #[test]
    fn swap_overhead_formula() {
        // m=5, d=3: distance-1 edges need 0 swaps, distance-2 edges (3 of
        // them) need 2 each, distance-3 edges (2) need 4 each.
        assert_eq!(swap_overhead(5, 3), 3 * 2 + 2 * 4);
        assert_eq!(swap_overhead(10, 1), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_features_panics() {
        feature_map_circuit(&[], &AnsatzConfig::qml_default());
    }
}
