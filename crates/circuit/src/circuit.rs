//! Circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of gate applications on a register of
//! `m` qubits. Qubit indices are positions on the linear chain; the MPS
//! simulator requires two-qubit gates on *adjacent* positions, which
//! [`crate::routing`] guarantees by SWAP insertion.

use crate::gate::Gate;

/// A gate applied to specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// The gate.
    pub gate: Gate,
    /// Target qubits; length 1 or 2 matching the gate arity. For two-qubit
    /// gates the order is significant (first entry is the gate's first
    /// qubit).
    pub qubits: Vec<usize>,
}

impl Operation {
    /// Single-qubit operation.
    pub fn one(gate: Gate, q: usize) -> Self {
        debug_assert_eq!(gate.arity(), 1);
        Operation {
            gate,
            qubits: vec![q],
        }
    }

    /// Two-qubit operation.
    pub fn two(gate: Gate, q0: usize, q1: usize) -> Self {
        debug_assert_eq!(gate.arity(), 2);
        debug_assert_ne!(q0, q1);
        Operation {
            gate,
            qubits: vec![q0, q1],
        }
    }

    /// `true` when the operation acts on adjacent chain positions.
    pub fn is_local(&self) -> bool {
        match self.qubits.as_slice() {
            [_] => true,
            [a, b] => a.abs_diff(*b) == 1,
            _ => false,
        }
    }
}

/// An ordered quantum circuit on `m` qubits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// An empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The operations in application order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a single-qubit gate.
    ///
    /// # Panics
    /// Panics if `q` is out of range or the gate is not single-qubit.
    pub fn push1(&mut self, gate: Gate, q: usize) -> &mut Self {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        assert_eq!(gate.arity(), 1, "push1 requires a single-qubit gate");
        self.ops.push(Operation::one(gate, q));
        self
    }

    /// Appends a two-qubit gate.
    ///
    /// # Panics
    /// Panics if qubits are out of range, equal, or the gate arity is wrong.
    pub fn push2(&mut self, gate: Gate, q0: usize, q1: usize) -> &mut Self {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q0, q1, "two-qubit gate needs distinct qubits");
        assert_eq!(gate.arity(), 2, "push2 requires a two-qubit gate");
        self.ops.push(Operation::two(gate, q0, q1));
        self
    }

    /// Appends all operations of another circuit.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.num_qubits, other.num_qubits, "register size mismatch");
        self.ops.extend_from_slice(&other.ops);
        self
    }

    /// Count of two-qubit gates — the cost driver of MPS simulation.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|op| op.gate.is_two_qubit()).count()
    }

    /// Count of single-qubit gates.
    pub fn one_qubit_count(&self) -> usize {
        self.ops.len() - self.two_qubit_count()
    }

    /// Count of SWAP gates (routing overhead).
    pub fn swap_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op.gate, Gate::Swap))
            .count()
    }

    /// `true` when every two-qubit gate acts on adjacent chain positions,
    /// i.e. the circuit is directly simulable by the MPS engine.
    pub fn is_mps_local(&self) -> bool {
        self.ops.iter().all(Operation::is_local)
    }

    /// Circuit depth: the number of layers when each qubit participates in
    /// at most one gate per layer (greedy ASAP schedule).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = op.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in &op.qubits {
                level[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0)
            .push1(Gate::H, 1)
            .push2(Gate::Rxx(0.5), 0, 1)
            .push2(Gate::Swap, 1, 2)
            .push1(Gate::Rz(1.0), 2);
        assert_eq!(c.len(), 5);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.one_qubit_count(), 3);
        assert_eq!(c.swap_count(), 1);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn locality_detection() {
        let mut c = Circuit::new(4);
        c.push2(Gate::Rxx(0.1), 0, 1);
        assert!(c.is_mps_local());
        c.push2(Gate::Rxx(0.1), 0, 3);
        assert!(!c.is_mps_local());
    }

    #[test]
    fn depth_greedy_schedule() {
        let mut c = Circuit::new(4);
        // Two disjoint gates: depth 1.
        c.push2(Gate::Rxx(0.1), 0, 1);
        c.push2(Gate::Rxx(0.1), 2, 3);
        assert_eq!(c.depth(), 1);
        // Overlapping gate: depth 2.
        c.push2(Gate::Rxx(0.1), 1, 2);
        assert_eq!(c.depth(), 2);
        // Single-qubit gate on an idle wire does not raise depth.
        let mut c2 = Circuit::new(2);
        c2.push1(Gate::H, 0);
        c2.push1(Gate::H, 1);
        assert_eq!(c2.depth(), 1);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push1(Gate::H, 0);
        let mut b = Circuit::new(2);
        b.push1(Gate::H, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Circuit::new(2).push1(Gate::H, 2);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn equal_qubits_panic() {
        Circuit::new(2).push2(Gate::Cx, 1, 1);
    }
}
