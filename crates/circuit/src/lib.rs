//! # qk-circuit
//!
//! Quantum circuit intermediate representation and the paper's
//! data-encoding ansatz:
//!
//! * [`gate`] — the gate set with explicit unitary matrices.
//! * [`circuit`] — ordered gate lists with depth/cost accounting.
//! * [`ansatz`] — the spin-Hamiltonian feature map of eqs. (3)-(5),
//!   including the `<= 2d`-layer commuting-RXX schedule.
//! * [`routing`] — SWAP insertion so every two-qubit gate is
//!   nearest-neighbour, as required by the MPS simulator.
//! * [`mod@optimize`] — peephole passes (rotation merging, self-inverse
//!   cancellation, 1q fusion) that cut MPS simulation cost directly.
//! * [`decompose`] — ZYZ Euler decomposition of single-qubit unitaries.
//! * [`qasm`] — OpenQASM 2.0 export/import for toolchain interchange.
//!
//! ## Example: build and route the paper's feature map
//!
//! ```
//! use qk_circuit::{feature_map_circuit, route_for_mps, AnsatzConfig};
//!
//! // r = 2 layers, interaction distance d = 2, bandwidth gamma = 0.5.
//! let config = AnsatzConfig::new(2, 2, 0.5);
//! let circuit = feature_map_circuit(&[0.3, 1.2, 0.7, 1.8], &config);
//! let routed = route_for_mps(&circuit);
//! // Routing adds the 2(k-1) SWAPs per long-range RXX the paper counts.
//! assert!(routed.ops().len() >= circuit.ops().len());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
pub(crate) mod test_dense;

pub mod ansatz;
pub mod circuit;
pub mod decompose;
pub mod gate;
pub mod optimize;
pub mod qasm;
pub mod routing;

pub use ansatz::{feature_map_circuit, linear_chain_edges, xx_layers, AnsatzConfig};
pub use circuit::{Circuit, Operation};
pub use decompose::{decompose_gate, zyz_decompose, Zyz};
pub use gate::Gate;
pub use optimize::{gate_histogram, optimize, OptimizeReport};
pub use qasm::{from_qasm, to_qasm, QasmError};
pub use routing::{route_for_mps, route_with_report, RoutingReport};
