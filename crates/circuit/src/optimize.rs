//! Peephole circuit optimization.
//!
//! The MPS cost model makes the motivation concrete: every two-qubit gate
//! multiplies a virtual bond, so removing a cancelling SWAP pair or
//! merging consecutive RXX rotations cuts simulation cost directly, and
//! fusing runs of single-qubit gates reduces constant-factor overhead
//! (each 1q gate is an `O(chi^2)` pass over a site tensor).
//!
//! All rewrites are *exactly* unitary-preserving — including global phase —
//! so optimized circuits are interchangeable with their originals in
//! kernel computations, where `|<psi|phi>|^2` would forgive a phase but
//! the tests do not have to.

use crate::circuit::{Circuit, Operation};
use crate::gate::Gate;
use qk_tensor::complex::Complex64;
use qk_tensor::contract::contract;
use qk_tensor::tensor::Tensor;
use std::collections::BTreeMap;

/// Angle below which a rotation is treated as the identity.
const ANGLE_EPS: f64 = 1e-15;
/// Matrix distance below which a fused 1q product is dropped as identity.
const IDENTITY_TOL: f64 = 1e-12;

/// What each pass of [`optimize`] removed or rewrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Runs of single-qubit gates fused into one gate.
    pub fused_1q: usize,
    /// Pairs of adjacent same-axis rotations merged into one.
    pub merged_rotations: usize,
    /// Self-inverse pairs (SWAP/CX/CZ/H/X/Y/Z) cancelled outright.
    pub cancelled_pairs: usize,
    /// Identity gates (zero-angle rotations, fused-to-identity products)
    /// dropped.
    pub dropped_identities: usize,
    /// Operation count before optimization.
    pub ops_before: usize,
    /// Operation count after optimization.
    pub ops_after: usize,
}

impl OptimizeReport {
    /// Total operations eliminated.
    pub fn ops_removed(&self) -> usize {
        self.ops_before - self.ops_after
    }
}

/// Histogram of gate mnemonics, for circuit inspection and logging.
pub fn gate_histogram(circuit: &Circuit) -> BTreeMap<&'static str, usize> {
    let mut hist = BTreeMap::new();
    for op in circuit.ops() {
        *hist.entry(op.gate.name()).or_insert(0) += 1;
    }
    hist
}

/// `true` when the gate is a rotation with angle below [`ANGLE_EPS`].
fn is_zero_rotation(gate: &Gate) -> bool {
    match gate {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Rxx(t) | Gate::Ryy(t) | Gate::Rzz(t) => {
            t.abs() < ANGLE_EPS
        }
        _ => false,
    }
}

/// `true` for gates that square to the identity (exactly, including
/// phase).
fn is_self_inverse(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cx | Gate::Cz | Gate::Swap
    )
}

/// Merges two same-axis rotations into one; `None` when the gates are not
/// a mergeable pair.
fn merge_rotation(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::Rx(s), Gate::Rx(t)) => Some(Gate::Rx(s + t)),
        (Gate::Ry(s), Gate::Ry(t)) => Some(Gate::Ry(s + t)),
        (Gate::Rz(s), Gate::Rz(t)) => Some(Gate::Rz(s + t)),
        (Gate::Rxx(s), Gate::Rxx(t)) => Some(Gate::Rxx(s + t)),
        (Gate::Ryy(s), Gate::Ryy(t)) => Some(Gate::Ryy(s + t)),
        (Gate::Rzz(s), Gate::Rzz(t)) => Some(Gate::Rzz(s + t)),
        _ => None,
    }
}

/// Matrix product `second * first` of two single-qubit gates as a fused
/// [`Gate::Unitary1`], or `None` if the product is the identity.
fn fuse_1q(first: &Gate, second: &Gate) -> Option<Gate> {
    let prod = contract(&second.matrix(), &[1], &first.matrix(), &[0]);
    if prod.l1_distance(&Tensor::identity(2)) < IDENTITY_TOL {
        return None;
    }
    let mut entries = [Complex64::ZERO; 4];
    entries.copy_from_slice(prod.data());
    Some(Gate::Unitary1(entries))
}

/// `true` when two operations act on the same *unordered* qubit pair and
/// the gate is symmetric under qubit exchange (so order is irrelevant).
fn same_symmetric_pair(a: &Operation, b: &Operation) -> bool {
    let sym = matches!(
        a.gate,
        Gate::Rxx(_) | Gate::Ryy(_) | Gate::Rzz(_) | Gate::Swap | Gate::Cz
    );
    let mut qa = [a.qubits[0], a.qubits[1]];
    let mut qb = [b.qubits[0], b.qubits[1]];
    qa.sort_unstable();
    qb.sort_unstable();
    sym && qa == qb
}

/// One peephole sweep. Returns the rewritten operation list and whether
/// anything changed.
fn sweep(
    num_qubits: usize,
    ops: &[Operation],
    report: &mut OptimizeReport,
) -> (Vec<Operation>, bool) {
    // out holds accepted operations; tombstones (None) mark removals.
    let mut out: Vec<Option<Operation>> = Vec::with_capacity(ops.len());
    // Index in `out` of the latest live op touching each qubit.
    let mut last: Vec<Option<usize>> = vec![None; num_qubits];
    let mut changed = false;

    for op in ops {
        // Zero rotations disappear without disturbing the peephole chain.
        if is_zero_rotation(&op.gate) {
            report.dropped_identities += 1;
            changed = true;
            continue;
        }

        match op.qubits.as_slice() {
            [q] => {
                let q = *q;
                if let Some(i) = last[q] {
                    if let Some(prev) = out[i].clone() {
                        if prev.qubits.len() == 1 {
                            // Structured merge first, generic fusion second.
                            if let Some(merged) = merge_rotation(&prev.gate, &op.gate) {
                                changed = true;
                                if is_zero_rotation(&merged) {
                                    out[i] = None;
                                    last[q] = None;
                                    report.dropped_identities += 1;
                                } else {
                                    out[i] = Some(Operation::one(merged, q));
                                    report.merged_rotations += 1;
                                }
                                continue;
                            }
                            if is_self_inverse(&prev.gate) && prev.gate == op.gate {
                                out[i] = None;
                                last[q] = None;
                                report.cancelled_pairs += 1;
                                changed = true;
                                continue;
                            }
                            changed = true;
                            match fuse_1q(&prev.gate, &op.gate) {
                                Some(fused) => {
                                    out[i] = Some(Operation::one(fused, q));
                                    report.fused_1q += 1;
                                }
                                None => {
                                    out[i] = None;
                                    last[q] = None;
                                    report.cancelled_pairs += 1;
                                }
                            }
                            continue;
                        }
                    }
                }
                last[q] = Some(out.len());
                out.push(Some(op.clone()));
            }
            [a, b] => {
                let (a, b) = (*a, *b);
                let prev_idx = match (last[a], last[b]) {
                    (Some(i), Some(j)) if i == j => Some(i),
                    _ => None,
                };
                if let Some(i) = prev_idx {
                    if let Some(prev) = out[i].clone() {
                        if prev.qubits.len() == 2 {
                            let exact_pair = prev.qubits == op.qubits;
                            // Same-axis rotations merge whenever the
                            // unordered pair matches (they are exchange
                            // symmetric).
                            if same_symmetric_pair(&prev, op) || exact_pair {
                                if let Some(merged) = merge_rotation(&prev.gate, &op.gate) {
                                    changed = true;
                                    if is_zero_rotation(&merged) {
                                        out[i] = None;
                                        last[a] = None;
                                        last[b] = None;
                                        report.dropped_identities += 1;
                                    } else {
                                        out[i] = Some(Operation::two(
                                            merged,
                                            prev.qubits[0],
                                            prev.qubits[1],
                                        ));
                                        report.merged_rotations += 1;
                                    }
                                    continue;
                                }
                                if is_self_inverse(&prev.gate)
                                    && prev.gate == op.gate
                                    && (exact_pair || same_symmetric_pair(&prev, op))
                                {
                                    out[i] = None;
                                    last[a] = None;
                                    last[b] = None;
                                    report.cancelled_pairs += 1;
                                    changed = true;
                                    continue;
                                }
                            }
                            // CX is self-inverse only on the *ordered* pair.
                            if exact_pair && is_self_inverse(&prev.gate) && prev.gate == op.gate {
                                out[i] = None;
                                last[a] = None;
                                last[b] = None;
                                report.cancelled_pairs += 1;
                                changed = true;
                                continue;
                            }
                        }
                    }
                }
                last[a] = Some(out.len());
                last[b] = Some(out.len());
                out.push(Some(op.clone()));
            }
            _ => unreachable!("operations are 1- or 2-qubit"),
        }
    }
    (out.into_iter().flatten().collect(), changed)
}

/// Optimizes a circuit to a fixpoint of the peephole rules:
///
/// * zero-angle rotations are dropped;
/// * adjacent same-axis rotations on the same wire(s) merge;
/// * adjacent self-inverse pairs (H, X, Y, Z, SWAP, CX, CZ) cancel;
/// * remaining runs of single-qubit gates fuse into one `Unitary1`.
///
/// Returns the optimized circuit and a report of what each rule removed.
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeReport) {
    let mut report = OptimizeReport {
        ops_before: circuit.len(),
        ..OptimizeReport::default()
    };
    let mut ops: Vec<Operation> = circuit.ops().to_vec();
    loop {
        let (next, changed) = sweep(circuit.num_qubits(), &ops, &mut report);
        ops = next;
        if !changed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for op in &ops {
        match op.qubits.as_slice() {
            [q] => {
                out.push1(op.gate.clone(), *q);
            }
            [a, b] => {
                out.push2(op.gate.clone(), *a, *b);
            }
            _ => unreachable!(),
        }
    }
    report.ops_after = out.len();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rotations_are_dropped() {
        let mut c = Circuit::new(2);
        c.push1(Gate::Rz(0.0), 0)
            .push2(Gate::Rxx(0.0), 0, 1)
            .push1(Gate::H, 1);
        let (opt, rep) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(rep.dropped_identities, 2);
    }

    #[test]
    fn adjacent_rz_merge() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rz(0.4), 0).push1(Gate::Rz(0.5), 0);
        let (opt, rep) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(rep.merged_rotations, 1);
        assert_eq!(opt.ops()[0].gate, Gate::Rz(0.9));
    }

    #[test]
    fn opposite_rotations_cancel() {
        let mut c = Circuit::new(1);
        c.push1(Gate::Rx(1.3), 0).push1(Gate::Rx(-1.3), 0);
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn hh_cancels() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).push1(Gate::H, 0).push1(Gate::H, 1);
        let (opt, rep) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(rep.cancelled_pairs, 1);
    }

    #[test]
    fn swap_pair_cancels_in_either_order() {
        let mut c = Circuit::new(3);
        c.push2(Gate::Swap, 0, 1).push2(Gate::Swap, 1, 0);
        let (opt, rep) = optimize(&c);
        assert!(opt.is_empty());
        assert_eq!(rep.cancelled_pairs, 1);
    }

    #[test]
    fn cx_cancels_only_on_ordered_pair() {
        let mut same = Circuit::new(2);
        same.push2(Gate::Cx, 0, 1).push2(Gate::Cx, 0, 1);
        assert!(optimize(&same).0.is_empty());

        let mut flipped = Circuit::new(2);
        flipped.push2(Gate::Cx, 0, 1).push2(Gate::Cx, 1, 0);
        assert_eq!(optimize(&flipped).0.len(), 2);
    }

    #[test]
    fn rxx_merges_across_qubit_order() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Rxx(0.3), 0, 1).push2(Gate::Rxx(0.4), 1, 0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.ops()[0].gate, Gate::Rxx(0.7));
    }

    #[test]
    fn intervening_gate_blocks_merge() {
        let mut c = Circuit::new(2);
        c.push1(Gate::Rz(0.4), 0)
            .push2(Gate::Rxx(0.2), 0, 1)
            .push1(Gate::Rz(0.5), 0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn gate_on_other_wire_does_not_block() {
        let mut c = Circuit::new(2);
        c.push1(Gate::Rz(0.4), 0)
            .push1(Gate::H, 1)
            .push1(Gate::Rz(0.5), 0);
        let (opt, _) = optimize(&c);
        // Rz's merge; H stays.
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn mixed_run_fuses_to_unitary1() {
        let mut c = Circuit::new(1);
        c.push1(Gate::H, 0).push1(Gate::Rz(0.7), 0);
        let (opt, rep) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(rep.fused_1q, 1);
        assert!(matches!(opt.ops()[0].gate, Gate::Unitary1(_)));
        // The fused matrix equals Rz(0.7) * H.
        let expect = contract(&Gate::Rz(0.7).matrix(), &[1], &Gate::H.matrix(), &[0]);
        assert!(opt.ops()[0].gate.matrix().l1_distance(&expect) < 1e-12);
    }

    #[test]
    fn fixpoint_cascades_cancellations() {
        // X H H X: inner HH cancels, then outer XX cancels — needs two
        // sweeps.
        let mut c = Circuit::new(1);
        c.push1(Gate::X, 0)
            .push1(Gate::H, 0)
            .push1(Gate::H, 0)
            .push1(Gate::X, 0);
        let (opt, rep) = optimize(&c);
        assert!(opt.is_empty(), "left {:?}", opt.ops());
        assert_eq!(rep.ops_removed(), 4);
        assert!(rep.cancelled_pairs >= 1);
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push1(Gate::H, q);
        }
        c.push2(Gate::Rxx(0.5), 0, 1)
            .push2(Gate::Rxx(-0.5), 0, 1)
            .push1(Gate::Rz(0.3), 2);
        let (opt, rep) = optimize(&c);
        assert_eq!(rep.ops_before, 6);
        assert_eq!(rep.ops_after, opt.len());
        assert!(rep.ops_after < rep.ops_before);
    }

    #[test]
    fn histogram_counts_names() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0)
            .push1(Gate::H, 1)
            .push2(Gate::Rxx(0.1), 0, 1);
        let h = gate_histogram(&c);
        assert_eq!(h["H"], 2);
        assert_eq!(h["Rxx"], 1);
    }

    #[test]
    fn optimized_circuit_is_statevector_equivalent() {
        use crate::test_dense::simulate_dense;
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0)
            .push1(Gate::Rz(0.8), 0)
            .push1(Gate::Rz(-0.2), 0)
            .push2(Gate::Rxx(0.6), 0, 1)
            .push2(Gate::Rxx(0.3), 1, 0)
            .push1(Gate::H, 2)
            .push1(Gate::H, 2)
            .push2(Gate::Swap, 1, 2)
            .push2(Gate::Swap, 1, 2)
            .push1(Gate::X, 1)
            .push1(Gate::Y, 1);
        let (opt, _) = optimize(&c);
        assert!(opt.len() < c.len());
        let a = simulate_dense(&c);
        let b = simulate_dense(&opt);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).norm() < 1e-12);
        }
    }
}
