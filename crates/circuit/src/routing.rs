//! SWAP routing for MPS locality (Section II-C).
//!
//! The MPS simulator only applies two-qubit gates to adjacent chain
//! positions. A gate on positions `(p, p+k)` is routed by swapping the
//! left qubit rightward `k-1` times, applying the gate on `(p+k-1, p+k)`,
//! and swapping back — `2(k-1)` SWAPs, exactly the paper's accounting.
//! Because every long-range gate restores positions afterwards, no
//! permanent qubit permutation needs tracking.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Rewrites a circuit so that every two-qubit gate acts on adjacent
/// positions, inserting SWAP pairs around long-range gates.
///
/// Single-qubit gates and already-local gates pass through unchanged. The
/// gate's qubit orientation is preserved (relevant for non-symmetric gates
/// such as CX).
pub fn route_for_mps(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.ops() {
        match op.qubits.as_slice() {
            [q] => {
                out.push1(op.gate.clone(), *q);
            }
            [a, b] => route_two_qubit(&mut out, op.gate.clone(), *a, *b),
            _ => unreachable!("operations act on 1 or 2 qubits"),
        }
    }
    out
}

/// Emits one possibly-long-range two-qubit gate with SWAP conjugation.
fn route_two_qubit(out: &mut Circuit, gate: Gate, a: usize, b: usize) {
    let (lo, hi) = (a.min(b), a.max(b));
    let k = hi - lo;
    if k == 1 {
        out.push2(gate, a, b);
        return;
    }
    // Move the qubit at `lo` right until it sits at `hi - 1`.
    for p in lo..hi - 1 {
        out.push2(Gate::Swap, p, p + 1);
    }
    // The logical qubit originally at `lo` now sits at `hi - 1`; keep the
    // original orientation.
    if a < b {
        out.push2(gate, hi - 1, hi);
    } else {
        out.push2(gate, hi, hi - 1);
    }
    for p in (lo..hi - 1).rev() {
        out.push2(Gate::Swap, p, p + 1);
    }
}

/// Number of SWAPs [`route_for_mps`] inserts for a single gate spanning
/// distance `k`.
pub fn swaps_for_distance(k: usize) -> usize {
    2 * k.saturating_sub(1)
}

/// Summary of a routing pass, for resource accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingReport {
    /// Two-qubit gates in the input circuit.
    pub input_two_qubit: usize,
    /// Two-qubit gates after routing (gates + SWAPs).
    pub output_two_qubit: usize,
    /// SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Routes and reports the SWAP overhead in one pass.
pub fn route_with_report(circuit: &Circuit) -> (Circuit, RoutingReport) {
    let routed = route_for_mps(circuit);
    let report = RoutingReport {
        input_two_qubit: circuit.two_qubit_count(),
        output_two_qubit: routed.two_qubit_count(),
        swaps_inserted: routed.swap_count() - circuit.swap_count(),
    };
    (routed, report)
}

/// Checks that an operation sequence leaves qubit positions unpermuted,
/// assuming SWAPs are the only position-changing gates. Used in tests and
/// debug assertions: the router's SWAP conjugation must be self-inverse.
pub fn net_permutation(circuit: &Circuit) -> Vec<usize> {
    let mut pos: Vec<usize> = (0..circuit.num_qubits()).collect();
    for op in circuit.ops() {
        if let (Gate::Swap, [a, b]) = (&op.gate, op.qubits.as_slice()) {
            pos.swap(*a, *b);
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{feature_map_circuit, swap_overhead, AnsatzConfig};
    use crate::circuit::Operation as _Op;

    #[test]
    fn local_circuit_unchanged() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0)
            .push2(Gate::Rxx(0.5), 0, 1)
            .push2(Gate::Cx, 2, 1);
        let routed = route_for_mps(&c);
        assert_eq!(routed, c);
    }

    #[test]
    fn distance_two_inserts_two_swaps() {
        let mut c = Circuit::new(3);
        c.push2(Gate::Rxx(0.3), 0, 2);
        let routed = route_for_mps(&c);
        assert_eq!(routed.swap_count(), 2);
        assert_eq!(routed.two_qubit_count(), 3);
        assert!(routed.is_mps_local());
        // SWAP(0,1) RXX(1,2) SWAP(0,1)
        assert_eq!(routed.ops()[0], _Op::two(Gate::Swap, 0, 1));
        assert_eq!(routed.ops()[1], _Op::two(Gate::Rxx(0.3), 1, 2));
        assert_eq!(routed.ops()[2], _Op::two(Gate::Swap, 0, 1));
    }

    #[test]
    fn swap_count_matches_formula() {
        for k in 1..6 {
            let mut c = Circuit::new(k + 1);
            c.push2(Gate::Rxx(0.1), 0, k);
            let routed = route_for_mps(&c);
            assert_eq!(routed.swap_count(), swaps_for_distance(k), "k = {k}");
            assert!(routed.is_mps_local());
        }
    }

    #[test]
    fn orientation_preserved_for_cx() {
        // CX with control above target and reversed.
        let mut c = Circuit::new(4);
        c.push2(Gate::Cx, 0, 3);
        let routed = route_for_mps(&c);
        let gate_op = routed
            .ops()
            .iter()
            .find(|op| matches!(op.gate, Gate::Cx))
            .unwrap();
        assert_eq!(gate_op.qubits, vec![2, 3], "control moved to position 2");

        let mut c2 = Circuit::new(4);
        c2.push2(Gate::Cx, 3, 0);
        let routed2 = route_for_mps(&c2);
        let gate_op2 = routed2
            .ops()
            .iter()
            .find(|op| matches!(op.gate, Gate::Cx))
            .unwrap();
        assert_eq!(gate_op2.qubits, vec![3, 2], "control stays on the right");
    }

    #[test]
    fn routing_restores_positions() {
        let features = [0.1, 0.7, 1.3, 1.9, 0.5];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 3, 0.8));
        let routed = route_for_mps(&c);
        assert!(routed.is_mps_local());
        assert_eq!(net_permutation(&routed), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ansatz_swap_overhead_matches_closed_form() {
        let m = 7;
        for d in 1..5 {
            let features: Vec<f64> = (0..m).map(|i| 0.1 + 0.2 * i as f64).collect();
            let cfg = AnsatzConfig::new(1, d, 0.5);
            let c = feature_map_circuit(&features, &cfg);
            let (_, report) = route_with_report(&c);
            assert_eq!(report.swaps_inserted, swap_overhead(m, d), "d = {d}");
            assert_eq!(
                report.output_two_qubit,
                report.input_two_qubit + report.swaps_inserted
            );
        }
    }

    #[test]
    fn report_counts_consistent() {
        let mut c = Circuit::new(5);
        c.push2(Gate::Rxx(0.2), 0, 4).push2(Gate::Rxx(0.2), 1, 2);
        let (routed, report) = route_with_report(&c);
        assert_eq!(report.input_two_qubit, 2);
        assert_eq!(report.swaps_inserted, 6);
        assert_eq!(routed.two_qubit_count(), 8);
    }
}
