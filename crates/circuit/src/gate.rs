//! Gate set for the quantum-kernel circuits.
//!
//! Conventions (matching pytket / standard circuit notation):
//!
//! * `RZ(theta) = exp(-i theta/2 Z)` — so the paper's `exp(-i gamma x_i Z)`
//!   is `RZ(2 gamma x_i)`.
//! * `RXX(theta) = exp(-i theta/2 X (x) X)` — so the paper's
//!   `exp(-i gamma^2 (pi/2)(1-x_i)(1-x_j) XX)` is
//!   `RXX(pi gamma^2 (1-x_i)(1-x_j))`.
//!
//! Two-qubit matrices are given in the computational basis ordered
//! `|q_a q_b> = |00>, |01>, |10>, |11>` where `q_a` is the first qubit the
//! gate is applied to.

use qk_tensor::complex::{c64, Complex64};
use qk_tensor::tensor::Tensor;
use std::f64::consts::FRAC_1_SQRT_2;

/// A quantum gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// `exp(-i theta/2 X)`.
    Rx(f64),
    /// `exp(-i theta/2 Y)`.
    Ry(f64),
    /// `exp(-i theta/2 Z)`.
    Rz(f64),
    /// Arbitrary single-qubit unitary (row-major 2x2).
    Unitary1([Complex64; 4]),
    /// Controlled-X (first qubit is control).
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// `exp(-i theta/2 X (x) X)`.
    Rxx(f64),
    /// `exp(-i theta/2 Y (x) Y)`.
    Ryy(f64),
    /// `exp(-i theta/2 Z (x) Z)`.
    Rzz(f64),
    /// Arbitrary two-qubit unitary (row-major 4x4).
    Unitary2(Box<[Complex64; 16]>),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Unitary1(_) => 1,
            _ => 2,
        }
    }

    /// `true` for two-qubit gates; the MPS cost metric of the paper.
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// The gate's unitary matrix as a rank-2 tensor (`2x2` or `4x4`).
    // Matrix entries are written as `row * 4 + col` even when row is 0/1
    // so the layout stays visually aligned.
    #[allow(clippy::identity_op, clippy::erasing_op)]
    pub fn matrix(&self) -> Tensor {
        match self {
            Gate::H => {
                let s = FRAC_1_SQRT_2;
                mat2([c64(s, 0.0), c64(s, 0.0), c64(s, 0.0), c64(-s, 0.0)])
            }
            Gate::X => mat2([
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ZERO,
            ]),
            Gate::Y => mat2([
                Complex64::ZERO,
                c64(0.0, -1.0),
                c64(0.0, 1.0),
                Complex64::ZERO,
            ]),
            Gate::Z => mat2([
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                c64(-1.0, 0.0),
            ]),
            Gate::Rx(theta) => {
                let (s, c) = (theta / 2.0).sin_cos();
                mat2([c64(c, 0.0), c64(0.0, -s), c64(0.0, -s), c64(c, 0.0)])
            }
            Gate::Ry(theta) => {
                let (s, c) = (theta / 2.0).sin_cos();
                mat2([c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0)])
            }
            Gate::Rz(theta) => {
                let half = theta / 2.0;
                mat2([
                    Complex64::cis(-half),
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::cis(half),
                ])
            }
            Gate::Unitary1(u) => mat2(*u),
            Gate::Cx => {
                let mut u = ident4();
                u[2 * 4 + 2] = Complex64::ZERO;
                u[2 * 4 + 3] = Complex64::ONE;
                u[3 * 4 + 3] = Complex64::ZERO;
                u[3 * 4 + 2] = Complex64::ONE;
                mat4(u)
            }
            Gate::Cz => {
                let mut u = ident4();
                u[3 * 4 + 3] = c64(-1.0, 0.0);
                mat4(u)
            }
            Gate::Swap => {
                let mut u = [Complex64::ZERO; 16];
                u[0] = Complex64::ONE;
                u[1 * 4 + 2] = Complex64::ONE;
                u[2 * 4 + 1] = Complex64::ONE;
                u[3 * 4 + 3] = Complex64::ONE;
                mat4(u)
            }
            Gate::Rxx(theta) => {
                let (s, c) = (theta / 2.0).sin_cos();
                let ct = c64(c, 0.0);
                let st = c64(0.0, -s);
                let mut u = [Complex64::ZERO; 16];
                u[0] = ct;
                u[5] = ct;
                u[10] = ct;
                u[15] = ct;
                u[3] = st;
                u[6] = st;
                u[9] = st;
                u[12] = st;
                mat4(u)
            }
            Gate::Ryy(theta) => {
                let (s, c) = (theta / 2.0).sin_cos();
                let ct = c64(c, 0.0);
                let mut u = [Complex64::ZERO; 16];
                u[0] = ct;
                u[5] = ct;
                u[10] = ct;
                u[15] = ct;
                u[3] = c64(0.0, s);
                u[12] = c64(0.0, s);
                u[6] = c64(0.0, -s);
                u[9] = c64(0.0, -s);
                mat4(u)
            }
            Gate::Rzz(theta) => {
                let half = theta / 2.0;
                let mut u = [Complex64::ZERO; 16];
                u[0] = Complex64::cis(-half);
                u[5] = Complex64::cis(half);
                u[10] = Complex64::cis(half);
                u[15] = Complex64::cis(-half);
                mat4(u)
            }
            Gate::Unitary2(u) => mat4(**u),
        }
    }

    /// Short mnemonic for display and logging.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H => "H",
            Gate::X => "X",
            Gate::Y => "Y",
            Gate::Z => "Z",
            Gate::Rx(_) => "Rx",
            Gate::Ry(_) => "Ry",
            Gate::Rz(_) => "Rz",
            Gate::Unitary1(_) => "U1q",
            Gate::Cx => "CX",
            Gate::Cz => "CZ",
            Gate::Swap => "SWAP",
            Gate::Rxx(_) => "Rxx",
            Gate::Ryy(_) => "Ryy",
            Gate::Rzz(_) => "Rzz",
            Gate::Unitary2(_) => "U2q",
        }
    }
}

fn mat2(entries: [Complex64; 4]) -> Tensor {
    Tensor::from_data(&[2, 2], entries.to_vec())
}

fn mat4(entries: [Complex64; 16]) -> Tensor {
    Tensor::from_data(&[4, 4], entries.to_vec())
}

fn ident4() -> [Complex64; 16] {
    let mut u = [Complex64::ZERO; 16];
    for i in 0..4 {
        u[i * 4 + i] = Complex64::ONE;
    }
    u
}

/// Checks unitarity of a gate matrix: `U^H U = I` within `tol`.
pub fn is_unitary(t: &Tensor, tol: f64) -> bool {
    let n = t.shape()[0];
    if t.shape() != [n, n] {
        return false;
    }
    let d = t.data();
    for i in 0..n {
        for j in 0..n {
            let mut acc = Complex64::ZERO;
            for p in 0..n {
                acc = acc.conj_mul_add(d[p * n + i], d[p * n + j]);
            }
            let expect = if i == j {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            if (acc - expect).norm() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_tensor::complex::approx_eq;

    fn all_gates() -> Vec<Gate> {
        vec![
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Rx(0.3),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Rxx(0.7),
            Gate::Ryy(1.1),
            Gate::Rzz(-0.4),
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        for g in all_gates() {
            assert!(is_unitary(&g.matrix(), 1e-12), "{} not unitary", g.name());
        }
    }

    #[test]
    fn arities() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Rz(1.0).arity(), 1);
        assert_eq!(Gate::Rxx(1.0).arity(), 2);
        assert_eq!(Gate::Swap.arity(), 2);
        assert!(Gate::Cx.is_two_qubit());
        assert!(!Gate::X.is_two_qubit());
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let theta = 0.9;
        let u = Gate::Rz(theta).matrix();
        assert!(approx_eq(
            u.get(&[0, 0]),
            Complex64::cis(-theta / 2.0),
            1e-12
        ));
        assert!(approx_eq(
            u.get(&[1, 1]),
            Complex64::cis(theta / 2.0),
            1e-12
        ));
        assert_eq!(u.get(&[0, 1]), Complex64::ZERO);
    }

    #[test]
    fn rxx_at_zero_is_identity() {
        let u = Gate::Rxx(0.0).matrix();
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(u.get(&[i, j]), expect, 1e-12));
            }
        }
    }

    #[test]
    fn rxx_at_pi_is_minus_i_xx() {
        // RXX(pi) = -i X(x)X: anti-diagonal of -i.
        let u = Gate::Rxx(std::f64::consts::PI).matrix();
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i + j == 3 {
                    c64(0.0, -1.0)
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(u.get(&[i, j]), expect, 1e-12), "[{i}][{j}]");
            }
        }
    }

    #[test]
    fn swap_exchanges_basis_states() {
        let u = Gate::Swap.matrix();
        assert_eq!(u.get(&[1, 2]), Complex64::ONE); // |01> <- |10>
        assert_eq!(u.get(&[2, 1]), Complex64::ONE);
        assert_eq!(u.get(&[1, 1]), Complex64::ZERO);
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let u = Gate::Cx.matrix();
        assert_eq!(u.get(&[2, 3]), Complex64::ONE); // |10> <- |11>
        assert_eq!(u.get(&[3, 2]), Complex64::ONE);
        assert_eq!(u.get(&[0, 0]), Complex64::ONE);
        assert_eq!(u.get(&[1, 1]), Complex64::ONE);
    }

    #[test]
    fn h_squares_to_identity() {
        let h = Gate::H.matrix();
        let prod = qk_tensor::contract(&h, &[1], &h, &[0]);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq(prod.get(&[i, j]), expect, 1e-12));
            }
        }
    }

    #[test]
    fn rotation_composition_adds_angles() {
        // RZ(a) RZ(b) = RZ(a + b) up to nothing (exact).
        let a = 0.4;
        let b = 1.3;
        let ua = Gate::Rz(a).matrix();
        let ub = Gate::Rz(b).matrix();
        let uc = Gate::Rz(a + b).matrix();
        let prod = qk_tensor::contract(&ua, &[1], &ub, &[0]);
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(prod.get(&[i, j]), uc.get(&[i, j]), 1e-12));
            }
        }
    }

    #[test]
    fn rxx_equals_rzz_conjugated_by_hadamards() {
        // (H(x)H) RZZ(t) (H(x)H) = RXX(t).
        let t = 0.8;
        let h = Gate::H.matrix();
        let hh = {
            // Kron product H (x) H as a 4x4 tensor.
            let mut u = Tensor::zeros(&[4, 4]);
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        for d in 0..2 {
                            u.set(&[a * 2 + b, c * 2 + d], h.get(&[a, c]) * h.get(&[b, d]));
                        }
                    }
                }
            }
            u
        };
        let rzz = Gate::Rzz(t).matrix();
        let tmp = qk_tensor::contract(&hh, &[1], &rzz, &[0]);
        let conj = qk_tensor::contract(&tmp, &[1], &hh, &[0]);
        let rxx = Gate::Rxx(t).matrix();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    approx_eq(conj.get(&[i, j]), rxx.get(&[i, j]), 1e-12),
                    "[{i}][{j}]"
                );
            }
        }
    }
}
