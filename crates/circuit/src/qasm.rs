//! OpenQASM 2.0 interchange.
//!
//! Exports circuits in the dialect understood by mainstream toolchains
//! (qiskit, pytket — the paper's framework is pytket-based) and imports
//! the same dialect back. The supported gate vocabulary is the library's
//! own gate set: `h x y z rx ry rz cx cz swap rxx ryy rzz`. Opaque
//! [`Gate::Unitary1`] gates are lowered through the ZYZ decomposition on
//! export (global phase dropped — irrelevant to kernel values);
//! [`Gate::Unitary2`] has no QASM spelling and is rejected.
//!
//! The parser accepts the angle grammar QASM files use in practice:
//! literals, `pi`, unary minus, `*`, `/`, and parentheses.

use crate::circuit::Circuit;
use crate::decompose::zyz_decompose;
use crate::gate::Gate;
use std::fmt;

/// Errors produced by QASM export or import.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A gate with no QASM spelling (e.g. a generic two-qubit unitary).
    Unsupported(String),
    /// Syntactic problem at import, with the offending statement.
    Parse(String),
    /// Semantic problem at import (bad qubit index, missing register...).
    Invalid(String),
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
            QasmError::Parse(s) => write!(f, "parse error: {s}"),
            QasmError::Invalid(s) => write!(f, "invalid program: {s}"),
        }
    }
}

impl std::error::Error for QasmError {}

/// Serializes a circuit as an OpenQASM 2.0 program.
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let mut out = String::with_capacity(64 + circuit.len() * 24);
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for op in circuit.ops() {
        match (&op.gate, op.qubits.as_slice()) {
            (Gate::H, [q]) => out.push_str(&format!("h q[{q}];\n")),
            (Gate::X, [q]) => out.push_str(&format!("x q[{q}];\n")),
            (Gate::Y, [q]) => out.push_str(&format!("y q[{q}];\n")),
            (Gate::Z, [q]) => out.push_str(&format!("z q[{q}];\n")),
            (Gate::Rx(t), [q]) => out.push_str(&format!("rx({}) q[{q}];\n", fmt_angle(*t))),
            (Gate::Ry(t), [q]) => out.push_str(&format!("ry({}) q[{q}];\n", fmt_angle(*t))),
            (Gate::Rz(t), [q]) => out.push_str(&format!("rz({}) q[{q}];\n", fmt_angle(*t))),
            (Gate::Unitary1(u), [q]) => {
                // Lower through ZYZ; emission order = application order.
                let z = zyz_decompose(u);
                for g in z.to_gates() {
                    match g {
                        Gate::Rz(t) => out.push_str(&format!("rz({}) q[{q}];\n", fmt_angle(t))),
                        Gate::Ry(t) => out.push_str(&format!("ry({}) q[{q}];\n", fmt_angle(t))),
                        _ => unreachable!("ZYZ emits only Rz/Ry"),
                    }
                }
            }
            (Gate::Cx, [a, b]) => out.push_str(&format!("cx q[{a}],q[{b}];\n")),
            (Gate::Cz, [a, b]) => out.push_str(&format!("cz q[{a}],q[{b}];\n")),
            (Gate::Swap, [a, b]) => out.push_str(&format!("swap q[{a}],q[{b}];\n")),
            (Gate::Rxx(t), [a, b]) => {
                out.push_str(&format!("rxx({}) q[{a}],q[{b}];\n", fmt_angle(*t)))
            }
            (Gate::Ryy(t), [a, b]) => {
                out.push_str(&format!("ryy({}) q[{a}],q[{b}];\n", fmt_angle(*t)))
            }
            (Gate::Rzz(t), [a, b]) => {
                out.push_str(&format!("rzz({}) q[{a}],q[{b}];\n", fmt_angle(*t)))
            }
            (Gate::Unitary2(_), _) => {
                return Err(QasmError::Unsupported(
                    "generic two-qubit unitary has no QASM 2.0 spelling".into(),
                ))
            }
            (g, qs) => {
                return Err(QasmError::Unsupported(format!(
                    "gate {} on {qs:?}",
                    g.name()
                )))
            }
        }
    }
    Ok(out)
}

/// Round-trip-exact angle formatting (17 significant digits).
fn fmt_angle(t: f64) -> String {
    format!("{t:.17e}")
}

/// Parses an OpenQASM 2.0 program emitted by [`to_qasm`] (or any program
/// restricted to the same vocabulary) back into a [`Circuit`].
pub fn from_qasm(src: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut saw_header = false;

    for raw in src.split(';') {
        // Strip comments and whitespace.
        let stmt = raw
            .lines()
            .map(|l| l.split("//").next().unwrap_or(""))
            .collect::<Vec<_>>()
            .join(" ");
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(version) = stmt.strip_prefix("OPENQASM") {
            let version = version.trim();
            if version != "2.0" {
                return Err(QasmError::Unsupported(format!("OPENQASM {version}")));
            }
            saw_header = true;
            continue;
        }
        if stmt.starts_with("include") {
            continue;
        }
        if let Some(decl) = stmt.strip_prefix("qreg") {
            if circuit.is_some() {
                return Err(QasmError::Invalid("multiple qreg declarations".into()));
            }
            let decl = decl.trim();
            let (name, size) = parse_indexed(decl)
                .ok_or_else(|| QasmError::Parse(format!("bad qreg declaration: {decl}")))?;
            if name != "q" {
                return Err(QasmError::Unsupported(format!("register name {name:?}")));
            }
            if size == 0 {
                return Err(QasmError::Invalid("empty quantum register".into()));
            }
            circuit = Some(Circuit::new(size));
            continue;
        }
        if stmt.starts_with("creg") || stmt.starts_with("barrier") {
            continue; // Harmless in this context.
        }
        if stmt.starts_with("measure") {
            return Err(QasmError::Unsupported("measurement".into()));
        }

        // Gate application: name[(params)] operands.
        let circuit = circuit
            .as_mut()
            .ok_or_else(|| QasmError::Invalid("gate before qreg declaration".into()))?;
        let (head, operands) = split_gate_statement(stmt)?;
        let (name, params) = split_params(head)?;
        let qubits = parse_operands(operands, circuit.num_qubits())?;
        apply_parsed(circuit, name, &params, &qubits, stmt)?;
    }

    if !saw_header {
        return Err(QasmError::Parse("missing OPENQASM 2.0 header".into()));
    }
    circuit.ok_or_else(|| QasmError::Invalid("no qreg declaration".into()))
}

/// Splits `name(params) q[i],q[j]` into head (`name(params)`) and the
/// operand text.
fn split_gate_statement(stmt: &str) -> Result<(&str, &str), QasmError> {
    // The operand list starts at the first whitespace outside parentheses.
    let mut depth = 0usize;
    for (i, ch) in stmt.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c.is_whitespace() && depth == 0 => {
                return Ok((stmt[..i].trim(), stmt[i..].trim()));
            }
            _ => {}
        }
    }
    Err(QasmError::Parse(format!("gate without operands: {stmt}")))
}

/// Splits `name(p1,p2)` into the name and evaluated parameters.
fn split_params(head: &str) -> Result<(&str, Vec<f64>), QasmError> {
    match head.find('(') {
        None => Ok((head, Vec::new())),
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| QasmError::Parse(format!("unbalanced parens: {head}")))?;
            let name = head[..open].trim();
            let params = head[open + 1..close]
                .split(',')
                .map(|p| eval_angle(p.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((name, params))
        }
    }
}

/// Parses `q[i],q[j]` into qubit indices, validating the register bound.
fn parse_operands(text: &str, num_qubits: usize) -> Result<Vec<usize>, QasmError> {
    let mut qubits = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        let (name, idx) =
            parse_indexed(part).ok_or_else(|| QasmError::Parse(format!("bad operand: {part}")))?;
        if name != "q" {
            return Err(QasmError::Invalid(format!("unknown register {name:?}")));
        }
        if idx >= num_qubits {
            return Err(QasmError::Invalid(format!(
                "qubit index {idx} out of range (register has {num_qubits})"
            )));
        }
        qubits.push(idx);
    }
    Ok(qubits)
}

/// Parses `name[index]`.
fn parse_indexed(text: &str) -> Option<(&str, usize)> {
    let open = text.find('[')?;
    let close = text.rfind(']')?;
    if close < open {
        return None;
    }
    let name = text[..open].trim();
    let idx = text[open + 1..close].trim().parse().ok()?;
    Some((name, idx))
}

fn apply_parsed(
    circuit: &mut Circuit,
    name: &str,
    params: &[f64],
    qubits: &[usize],
    stmt: &str,
) -> Result<(), QasmError> {
    let expect = |n_params: usize, n_qubits: usize| -> Result<(), QasmError> {
        if params.len() != n_params || qubits.len() != n_qubits {
            Err(QasmError::Parse(format!(
                "gate {name} expects {n_params} parameter(s) and {n_qubits} operand(s): {stmt}"
            )))
        } else {
            Ok(())
        }
    };
    match name {
        "h" => {
            expect(0, 1)?;
            circuit.push1(Gate::H, qubits[0]);
        }
        "x" => {
            expect(0, 1)?;
            circuit.push1(Gate::X, qubits[0]);
        }
        "y" => {
            expect(0, 1)?;
            circuit.push1(Gate::Y, qubits[0]);
        }
        "z" => {
            expect(0, 1)?;
            circuit.push1(Gate::Z, qubits[0]);
        }
        "rx" => {
            expect(1, 1)?;
            circuit.push1(Gate::Rx(params[0]), qubits[0]);
        }
        "ry" => {
            expect(1, 1)?;
            circuit.push1(Gate::Ry(params[0]), qubits[0]);
        }
        "rz" => {
            expect(1, 1)?;
            circuit.push1(Gate::Rz(params[0]), qubits[0]);
        }
        "u1" => {
            // u1(t) = diag(1, e^{it}) = Rz(t) up to global phase; kernel
            // values are phase-insensitive, so accept the alias.
            expect(1, 1)?;
            circuit.push1(Gate::Rz(params[0]), qubits[0]);
        }
        "cx" => {
            expect(0, 2)?;
            circuit.push2(Gate::Cx, qubits[0], qubits[1]);
        }
        "cz" => {
            expect(0, 2)?;
            circuit.push2(Gate::Cz, qubits[0], qubits[1]);
        }
        "swap" => {
            expect(0, 2)?;
            circuit.push2(Gate::Swap, qubits[0], qubits[1]);
        }
        "rxx" => {
            expect(1, 2)?;
            circuit.push2(Gate::Rxx(params[0]), qubits[0], qubits[1]);
        }
        "ryy" => {
            expect(1, 2)?;
            circuit.push2(Gate::Ryy(params[0]), qubits[0], qubits[1]);
        }
        "rzz" => {
            expect(1, 2)?;
            circuit.push2(Gate::Rzz(params[0]), qubits[0], qubits[1]);
        }
        other => return Err(QasmError::Unsupported(format!("gate {other:?}"))),
    }
    Ok(())
}

/// Evaluates the QASM angle expression grammar: float literals, `pi`,
/// unary `+`/`-`, binary `*`, `/`, `+`, `-`, and parentheses.
pub fn eval_angle(expr: &str) -> Result<f64, QasmError> {
    let tokens = tokenize(expr)?;
    let mut parser = ExprParser {
        tokens: &tokens,
        pos: 0,
    };
    let value = parser.sum()?;
    if parser.pos != tokens.len() {
        return Err(QasmError::Parse(format!(
            "trailing tokens in expression: {expr}"
        )));
    }
    Ok(value)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Pi,
    Plus,
    Minus,
    Star,
    Slash,
    Open,
    Close,
}

fn tokenize(expr: &str) -> Result<Vec<Token>, QasmError> {
    let bytes = expr.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '(' => {
                tokens.push(Token::Open);
                i += 1;
            }
            ')' => {
                tokens.push(Token::Close);
                i += 1;
            }
            'p' | 'P' => {
                if expr[i..].len() >= 2 && expr[i..i + 2].eq_ignore_ascii_case("pi") {
                    tokens.push(Token::Pi);
                    i += 2;
                } else {
                    return Err(QasmError::Parse(format!("bad token in: {expr}")));
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_digit() || ch == '.' {
                        i += 1;
                    } else if (ch == 'e' || ch == 'E') && i + 1 < bytes.len() {
                        // Exponent, possibly signed.
                        let next = bytes[i + 1] as char;
                        if next.is_ascii_digit() || next == '+' || next == '-' {
                            i += 2;
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let lit = &expr[start..i];
                let v: f64 = lit
                    .parse()
                    .map_err(|_| QasmError::Parse(format!("bad number {lit:?}")))?;
                tokens.push(Token::Number(v));
            }
            _ => return Err(QasmError::Parse(format!("bad character {c:?} in: {expr}"))),
        }
    }
    Ok(tokens)
}

struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn sum(&mut self) -> Result<f64, QasmError> {
        let mut acc = self.product()?;
        while let Some(tok) = self.peek() {
            match tok {
                Token::Plus => {
                    self.pos += 1;
                    acc += self.product()?;
                }
                Token::Minus => {
                    self.pos += 1;
                    acc -= self.product()?;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn product(&mut self) -> Result<f64, QasmError> {
        let mut acc = self.atom()?;
        while let Some(tok) = self.peek() {
            match tok {
                Token::Star => {
                    self.pos += 1;
                    acc *= self.atom()?;
                }
                Token::Slash => {
                    self.pos += 1;
                    let rhs = self.atom()?;
                    if rhs == 0.0 {
                        return Err(QasmError::Parse("division by zero".into()));
                    }
                    acc /= rhs;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn atom(&mut self) -> Result<f64, QasmError> {
        match self.peek().cloned() {
            Some(Token::Number(v)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(Token::Pi) => {
                self.pos += 1;
                Ok(std::f64::consts::PI)
            }
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(-self.atom()?)
            }
            Some(Token::Plus) => {
                self.pos += 1;
                self.atom()
            }
            Some(Token::Open) => {
                self.pos += 1;
                let v = self.sum()?;
                match self.peek() {
                    Some(Token::Close) => {
                        self.pos += 1;
                        Ok(v)
                    }
                    _ => Err(QasmError::Parse("missing closing paren".into())),
                }
            }
            _ => Err(QasmError::Parse("expected a value".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn angle_expressions() {
        assert_eq!(eval_angle("1.5").unwrap(), 1.5);
        assert!((eval_angle("pi").unwrap() - PI).abs() < 1e-15);
        assert!((eval_angle("pi/2").unwrap() - PI / 2.0).abs() < 1e-15);
        assert!((eval_angle("-pi/4").unwrap() + PI / 4.0).abs() < 1e-15);
        assert!((eval_angle("2*pi").unwrap() - 2.0 * PI).abs() < 1e-15);
        assert!((eval_angle("3.5e-2").unwrap() - 0.035).abs() < 1e-15);
        assert!((eval_angle("(1+2)*pi/3").unwrap() - PI).abs() < 1e-12);
        assert!((eval_angle("1 - 2 - 3").unwrap() + 4.0).abs() < 1e-15);
        assert!(eval_angle("pie").is_err());
        assert!(eval_angle("1/0").is_err());
        assert!(eval_angle("(1").is_err());
        assert!(eval_angle("1 2").is_err());
    }

    #[test]
    fn export_has_header_and_register() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0);
        let q = to_qasm(&c).unwrap();
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
        assert!(q.contains("h q[0];"));
    }

    #[test]
    fn roundtrip_named_gates() {
        let mut c = Circuit::new(4);
        c.push1(Gate::H, 0)
            .push1(Gate::X, 1)
            .push1(Gate::Y, 2)
            .push1(Gate::Z, 3)
            .push1(Gate::Rx(0.7), 0)
            .push1(Gate::Ry(-1.1), 1)
            .push1(Gate::Rz(2.9), 2)
            .push2(Gate::Cx, 0, 1)
            .push2(Gate::Cz, 1, 2)
            .push2(Gate::Swap, 2, 3)
            .push2(Gate::Rxx(0.123456789012345), 0, 1)
            .push2(Gate::Ryy(1.5), 1, 2)
            .push2(Gate::Rzz(-0.25), 2, 3);
        let q = to_qasm(&c).unwrap();
        let back = from_qasm(&q).unwrap();
        assert_eq!(back.num_qubits(), 4);
        assert_eq!(back.ops(), c.ops());
    }

    #[test]
    fn roundtrip_ansatz_circuit() {
        use crate::ansatz::{feature_map_circuit, AnsatzConfig};
        let features = [0.3, 1.2, 0.8, 1.9, 0.1];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 2, 0.7));
        let routed = crate::route_for_mps(&c);
        let back = from_qasm(&to_qasm(&routed).unwrap()).unwrap();
        assert_eq!(back.ops(), routed.ops());
    }

    #[test]
    fn unitary1_lowers_through_zyz() {
        use crate::test_dense::simulate_dense;
        let mut raw = Circuit::new(1);
        raw.push1(Gate::H, 0).push1(Gate::Rz(0.9), 0);
        let (fused, _) = crate::optimize::optimize(&raw);
        assert!(matches!(fused.ops()[0].gate, Gate::Unitary1(_)));
        let q = to_qasm(&fused).unwrap();
        let back = from_qasm(&q).unwrap();
        // Equivalent up to global phase: compare |<a|b>|.
        let a = simulate_dense(&fused);
        let b = simulate_dense(&back);
        let mut dot = qk_tensor::complex::Complex64::ZERO;
        for (x, y) in a.iter().zip(&b) {
            dot = dot.conj_mul_add(*x, *y);
        }
        assert!((dot.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unitary2_is_rejected() {
        let mut entries = [qk_tensor::complex::Complex64::ZERO; 16];
        for i in 0..4 {
            entries[i * 4 + i] = qk_tensor::complex::Complex64::ONE;
        }
        let mut c = Circuit::new(2);
        c.push2(Gate::Unitary2(Box::new(entries)), 0, 1);
        assert!(matches!(to_qasm(&c), Err(QasmError::Unsupported(_))));
    }

    #[test]
    fn import_accepts_comments_and_whitespace() {
        let src = r#"
            OPENQASM 2.0; // header
            include "qelib1.inc";
            qreg q[2]; // two qubits
            h q[0]; // superpose
            rz(pi/2) q[1];
            cx q[0], q[1];
        "#;
        let c = from_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 3);
        assert_eq!(c.ops()[1].gate, Gate::Rz(PI / 2.0));
    }

    #[test]
    fn import_rejects_malformed_programs() {
        assert!(matches!(
            from_qasm("qreg q[2]; h q[0];"),
            Err(QasmError::Parse(_))
        ));
        assert!(from_qasm("OPENQASM 2.0;").is_err());
        assert!(matches!(
            from_qasm("OPENQASM 2.0; qreg q[2]; h q[5];"),
            Err(QasmError::Invalid(_))
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0; qreg q[2]; qreg q[3];"),
            Err(QasmError::Invalid(_))
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0; qreg q[2]; ccx q[0],q[1];"),
            Err(QasmError::Unsupported(_))
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0; qreg q[1]; measure q[0];"),
            Err(QasmError::Unsupported(_))
        ));
        assert!(matches!(
            from_qasm("OPENQASM 3.0; qreg q[1];"),
            Err(QasmError::Unsupported(_))
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0; h q[0]; qreg q[1];"),
            Err(QasmError::Invalid(_))
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0; qreg q[2]; rx() q[0];"),
            Err(QasmError::Parse(_))
        ));
    }

    #[test]
    fn u1_alias_maps_to_rz() {
        let c = from_qasm("OPENQASM 2.0; qreg q[1]; u1(0.5) q[0];").unwrap();
        assert_eq!(c.ops()[0].gate, Gate::Rz(0.5));
    }
}
