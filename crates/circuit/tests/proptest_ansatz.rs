//! Property-based tests of the ansatz builder and SWAP router.

use proptest::prelude::*;
use qk_circuit::ansatz::{
    feature_map_circuit, linear_chain_edges, swap_overhead, xx_gate_count, xx_layers, AnsatzConfig,
};
use qk_circuit::gate::is_unitary;
use qk_circuit::routing::{net_permutation, route_with_report};
use qk_circuit::Gate;

fn features() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..2.0, 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ansatz gate counts follow the closed forms for every (m, d, r).
    #[test]
    fn gate_counts_match_formulas(
        features in features(),
        layers in 1usize..5,
        d in 1usize..6,
        gamma in 0.0f64..2.0,
    ) {
        let m = features.len();
        let d = d.min(m - 1).max(1);
        let cfg = AnsatzConfig::new(layers, d, gamma);
        let c = feature_map_circuit(&features, &cfg);
        prop_assert_eq!(c.one_qubit_count(), m + layers * m);
        prop_assert_eq!(c.two_qubit_count(), layers * xx_gate_count(m, d));
    }

    /// Routing inserts exactly the paper's 2(k-1)-per-edge SWAP overhead,
    /// keeps everything nearest-neighbour and restores positions.
    #[test]
    fn routing_invariants(
        features in features(),
        layers in 1usize..4,
        d in 1usize..6,
    ) {
        let m = features.len();
        let d = d.min(m - 1).max(1);
        let cfg = AnsatzConfig::new(layers, d, 0.8);
        let c = feature_map_circuit(&features, &cfg);
        let (routed, report) = route_with_report(&c);
        prop_assert!(routed.is_mps_local());
        prop_assert_eq!(report.swaps_inserted, layers * swap_overhead(m, d));
        let identity: Vec<usize> = (0..m).collect();
        prop_assert_eq!(net_permutation(&routed), identity);
    }

    /// The commuting-RXX schedule is a partition of the chain edges into
    /// at most 2d matchings, for every (m, d).
    #[test]
    fn xx_layers_partition(m in 2usize..20, d in 1usize..8) {
        let d = d.min(m - 1);
        let layers = xx_layers(m, d);
        prop_assert!(layers.len() <= 2 * d);
        let mut all: Vec<(usize, usize)> = layers.iter().flatten().copied().collect();
        for layer in &layers {
            let mut used = std::collections::HashSet::new();
            for &(i, j) in layer {
                prop_assert!(used.insert(i));
                prop_assert!(used.insert(j));
            }
        }
        all.sort_unstable();
        let mut expect = linear_chain_edges(m, d);
        expect.sort_unstable();
        prop_assert_eq!(all, expect);
    }

    /// Every rotation gate is unitary for any angle.
    #[test]
    fn rotations_are_unitary(theta in -10.0f64..10.0) {
        for g in [Gate::Rx(theta), Gate::Ry(theta), Gate::Rz(theta),
                  Gate::Rxx(theta), Gate::Ryy(theta), Gate::Rzz(theta)] {
            prop_assert!(is_unitary(&g.matrix(), 1e-10), "{} not unitary at {theta}", g.name());
        }
    }

    /// Circuit depth is bounded by the op count and at least the
    /// per-qubit op count.
    #[test]
    fn depth_bounds(features in features(), layers in 1usize..4) {
        // Distance 1 is valid for every generated width (m >= 2).
        let cfg = AnsatzConfig::new(layers, 1, 0.5);
        let c = feature_map_circuit(&features, &cfg);
        let depth = c.depth();
        prop_assert!(depth <= c.len());
        // Every qubit sees at least 1 + layers gates (H + RZ per layer).
        prop_assert!(depth > layers);
    }
}
