//! Local observables on MPS states.
//!
//! Implements single-site expectation values and reduced density matrices
//! via the standard environment contraction. This powers the *projected
//! quantum kernel* alternative the paper's introduction points to (Huang
//! et al., "Power of data in quantum machine learning"): instead of state
//! overlaps, measure a set of local observables per data point and build
//! a classical kernel over them.

use crate::mps::Mps;
use qk_tensor::complex::Complex64;
use qk_tensor::tensor::Tensor;

/// The three Pauli matrices as 2x2 tensors.
pub fn pauli_x() -> Tensor {
    Tensor::from_data(
        &[2, 2],
        vec![
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ONE,
            Complex64::ZERO,
        ],
    )
}

/// Pauli Y.
pub fn pauli_y() -> Tensor {
    Tensor::from_data(
        &[2, 2],
        vec![
            Complex64::ZERO,
            Complex64::new(0.0, -1.0),
            Complex64::new(0.0, 1.0),
            Complex64::ZERO,
        ],
    )
}

/// Pauli Z.
pub fn pauli_z() -> Tensor {
    Tensor::from_data(
        &[2, 2],
        vec![
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::new(-1.0, 0.0),
        ],
    )
}

impl Mps {
    /// Reduced density matrix of qubit `q` as a row-major 2x2 buffer
    /// `rho[p_out][p_in]`.
    ///
    /// Moves the orthogonality center to `q` (gauge-only operation), after
    /// which `rho = sum_{l,r} A[l, p_out, r] conj(A[l, p_in, r])` over the
    /// center tensor alone.
    pub fn reduced_density_matrix(&mut self, q: usize) -> [Complex64; 4] {
        assert!(q < self.num_qubits(), "qubit {q} out of range");
        self.canonicalize_to(q);
        let site = &self.sites()[q];
        let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
        let data = site.data();
        let mut rho = [Complex64::ZERO; 4];
        for l in 0..chi_l {
            for r in 0..chi_r {
                let a0 = data[(l * 2) * chi_r + r];
                let a1 = data[(l * 2 + 1) * chi_r + r];
                rho[0] = rho[0].conj_mul_add(a0, a0); // rho[0][0] += a0 conj(a0)
                rho[1] = rho[1].conj_mul_add(a1, a0); // rho[0][1] += a0 conj(a1)
                rho[2] = rho[2].conj_mul_add(a0, a1); // rho[1][0] += a1 conj(a0)
                rho[3] = rho[3].conj_mul_add(a1, a1);
            }
        }
        rho
    }

    /// Expectation value `<psi| O_q |psi>` of a single-qubit observable on
    /// qubit `q`. Hermitian `O` yields a real value; the real part is
    /// returned.
    pub fn expectation_1q(&mut self, observable: &Tensor, q: usize) -> f64 {
        assert_eq!(observable.shape(), &[2, 2], "observable must be 2x2");
        let rho = self.reduced_density_matrix(q);
        // tr(rho O) with rho[p_out][p_in]: sum_{a,b} rho[a][b] O[b][a].
        let o = observable.data();
        let tr = rho[0] * o[0] + rho[1] * o[2] + rho[2] * o[1] + rho[3] * o[3];
        tr.re
    }

    /// The projected-feature vector of the state: `(<X_q>, <Y_q>, <Z_q>)`
    /// for every qubit, concatenated — `3m` real numbers.
    ///
    /// This is the "observable set for each data point" of the projected
    /// quantum kernel method.
    pub fn projected_features(&mut self) -> Vec<f64> {
        let m = self.num_qubits();
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        let mut out = Vec::with_capacity(3 * m);
        for q in 0..m {
            // One density matrix per qubit, reused for all three Paulis.
            let rho = self.reduced_density_matrix(q);
            let tr = |o: &Tensor| {
                let o = o.data();
                (rho[0] * o[0] + rho[1] * o[2] + rho[2] * o[1] + rho[3] * o[3]).re
            };
            out.push(tr(&x));
            out.push(tr(&y));
            out.push(tr(&z));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mps::TruncationConfig;
    use qk_circuit::Gate;
    use qk_tensor::backend::CpuBackend;

    const TOL: f64 = 1e-10;

    #[test]
    fn zero_state_expectations() {
        let mut mps = Mps::basis_state(&[0, 0, 0]);
        for q in 0..3 {
            assert!((mps.expectation_1q(&pauli_z(), q) - 1.0).abs() < TOL);
            assert!(mps.expectation_1q(&pauli_x(), q).abs() < TOL);
            assert!(mps.expectation_1q(&pauli_y(), q).abs() < TOL);
        }
    }

    #[test]
    fn one_state_flips_z() {
        let mut mps = Mps::basis_state(&[1, 0]);
        assert!((mps.expectation_1q(&pauli_z(), 0) + 1.0).abs() < TOL);
        assert!((mps.expectation_1q(&pauli_z(), 1) - 1.0).abs() < TOL);
    }

    #[test]
    fn plus_state_aligns_with_x() {
        let mut mps = Mps::plus_state(4);
        for q in 0..4 {
            assert!((mps.expectation_1q(&pauli_x(), q) - 1.0).abs() < TOL);
            assert!(mps.expectation_1q(&pauli_z(), q).abs() < TOL);
        }
    }

    #[test]
    fn density_matrix_is_hermitian_unit_trace() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::basis_state(&[0, 0, 0]);
        let g = Gate::Rxx(0.9).matrix();
        mps.apply_gate1(&Gate::H.matrix(), 0);
        mps.apply_gate2(&be, &g, 0, &cfg);
        mps.apply_gate2(&be, &g, 1, &cfg);
        for q in 0..3 {
            let rho = mps.reduced_density_matrix(q);
            // Trace 1.
            assert!(((rho[0] + rho[3]).re - 1.0).abs() < TOL);
            assert!((rho[0] + rho[3]).im.abs() < TOL);
            // Hermitian: rho[0][1] = conj(rho[1][0]).
            assert!((rho[1] - rho[2].conj()).norm() < TOL);
            // Diagonal entries are probabilities.
            assert!(rho[0].re >= -TOL && rho[0].re <= 1.0 + TOL);
        }
    }

    #[test]
    fn bell_state_is_maximally_mixed_locally() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::basis_state(&[0, 0]);
        mps.apply_gate1(&Gate::H.matrix(), 0);
        mps.apply_gate2(&be, &Gate::Cx.matrix(), 0, &cfg);
        for q in 0..2 {
            let rho = mps.reduced_density_matrix(q);
            assert!((rho[0].re - 0.5).abs() < TOL, "rho00 {:?}", rho[0]);
            assert!((rho[3].re - 0.5).abs() < TOL);
            assert!(rho[1].norm() < TOL);
            // All local Pauli expectations vanish on a Bell pair.
            for o in [pauli_x(), pauli_y(), pauli_z()] {
                assert!(mps.expectation_1q(&o, q).abs() < TOL);
            }
        }
    }

    #[test]
    fn projected_features_shape_and_range() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::basis_state(&[0, 1, 0, 1]);
        mps.apply_gate1(&Gate::H.matrix(), 1);
        mps.apply_gate2(&be, &Gate::Rxx(0.6).matrix(), 1, &cfg);
        let f = mps.projected_features();
        assert_eq!(f.len(), 12);
        // Bloch-vector components are bounded by 1.
        assert!(f.iter().all(|v| v.abs() <= 1.0 + TOL));
        // Per-qubit Bloch norm <= 1 (purity bound).
        for q in 0..4 {
            let norm2: f64 = f[3 * q..3 * q + 3].iter().map(|v| v * v).sum();
            assert!(norm2 <= 1.0 + 1e-9, "qubit {q} bloch norm^2 {norm2}");
        }
    }

    #[test]
    fn expectations_match_statevector() {
        use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
        use qk_statevector::StateVector;
        let features = [0.4, 1.3, 0.9];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 2, 0.8));
        let be = CpuBackend::new();
        let (mut mps, _) = crate::sim::MpsSimulator::new(&be).simulate(&c);
        let sv = StateVector::simulate(&qk_circuit::route_for_mps(&c));
        // <Z_q> from the dense vector.
        for q in 0..3 {
            let mut expect = 0.0;
            for (idx, amp) in sv.amplitudes().iter().enumerate() {
                let bit = (idx >> (3 - 1 - q)) & 1;
                let sign = if bit == 0 { 1.0 } else { -1.0 };
                expect += sign * amp.norm_sqr();
            }
            let got = mps.expectation_1q(&pauli_z(), q);
            assert!((got - expect).abs() < 1e-9, "qubit {q}: {got} vs {expect}");
        }
    }
}
