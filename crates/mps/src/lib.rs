//! # qk-mps
//!
//! Matrix Product State simulation of quantum circuits — the substrate the
//! paper's quantum-kernel framework is built on:
//!
//! * [`mps`] — the MPS state type: mixed canonical form, 1q/2q gate
//!   application with SVD truncation (Fig. 1), zipper inner products
//!   (Fig. 2), serialization for inter-process shipping.
//! * [`sim`] — the circuit-walking simulator with the resource telemetry
//!   used by the paper's evaluation (memory traces, peak bond, truncation
//!   error budget).
//! * [`compress`] — MPS addition/scaling and full-sweep bond compression
//!   with eq.-(8) error accounting.
//! * [`sample`] — amplitude queries and perfect (Born-rule) sampling,
//!   plus a shot-noise model for hardware-style kernel estimation.
//! * [`mpo`] — Matrix Product Operators: Pauli-sum Hamiltonians (the
//!   paper's encoding generators, eqs. 4-5), expectation values, operator
//!   application.
//! * [`observe`] — single-site observables and the projected-feature
//!   vectors used by the projected quantum kernel.
//!
//! The cost of simulation scales with the number of two-qubit gates and
//! the entanglement they generate (bond dimension chi), not with the
//! number of qubits: `O(m chi^3)` per gate/inner product and `O(m chi^2)`
//! memory.
//!
//! ## Example: simulate a feature-map circuit and take an overlap
//!
//! ```
//! use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
//! use qk_mps::{MpsSimulator, TruncationConfig};
//! use qk_tensor::backend::CpuBackend;
//!
//! let backend = CpuBackend::new();
//! let sim = MpsSimulator::new(&backend)
//!     .with_truncation(TruncationConfig::paper_default());
//! let config = AnsatzConfig::new(2, 1, 0.5);
//! let (a, _) = sim.simulate(&feature_map_circuit(&[0.3, 1.2, 0.7], &config));
//! let (b, _) = sim.simulate(&feature_map_circuit(&[0.4, 1.0, 0.9], &config));
//! let kernel_entry = a.overlap_sqr(&b); // |<psi(x)|psi(x')>|^2
//! assert!((0.0..=1.0).contains(&kernel_entry));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod mpo;
pub mod mps;
pub mod observe;
pub mod sample;
pub mod sim;
pub mod zipper;

pub use mpo::{encoding_hamiltonian, hxx_mpo, hz_mpo, Mpo, Pauli, PauliString};
pub use mps::{Mps, MpsDecodeError, TruncationConfig, TruncationStats};
pub use observe::{pauli_x, pauli_y, pauli_z};
pub use sample::shot_estimate_overlap;
pub use sim::{MpsSimulator, SimRecord, TracePoint};
pub use zipper::ZipperWorkspace;
