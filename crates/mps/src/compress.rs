//! MPS arithmetic and bond compression.
//!
//! Two-qubit gate application truncates locally, but several operations —
//! adding states, applying an MPO, deserializing a state built elsewhere —
//! produce an MPS whose bonds are larger than the entanglement warrants.
//! [`Mps::compress`] restores the minimal bond dimension with a full
//! right-to-left SVD sweep in canonical form, which makes every local
//! truncation globally optimal and lets the discarded weight be accounted
//! against the same eq.-(8) budget the simulator uses.

use crate::mps::{decide_rank, Mps, TruncationConfig, TruncationStats};
use qk_tensor::backend::ExecutionBackend;
use qk_tensor::complex::Complex64;
use qk_tensor::tensor::Tensor;

impl Mps {
    /// Multiplies the state by a complex scalar (applied at the center
    /// tensor, so the canonical structure is untouched).
    pub fn scale(&mut self, k: Complex64) {
        let center = self.center();
        self.sites_mut()[center].scale_inplace(k);
    }

    /// Returns the direct-sum superposition `|self> + |other>` (not
    /// normalized). Interior bonds add; boundary bonds stay 1 by summing
    /// (left edge) and stacking (right edge is handled by the same block
    /// embedding because chi_r = 1 collapses the column block).
    ///
    /// The result's bonds are the *sum* of the operands' bonds, which is
    /// in general far from minimal — follow with [`Mps::compress`].
    pub fn add(&self, other: &Mps) -> Mps {
        let m = self.num_qubits();
        assert_eq!(
            m,
            other.num_qubits(),
            "MPS addition requires equal qubit counts"
        );
        if m == 1 {
            let mut data = self.sites()[0].data().to_vec();
            for (z, w) in data.iter_mut().zip(other.sites()[0].data()) {
                *z += *w;
            }
            return Mps::from_sites(vec![Tensor::from_data(&[1, 2, 1], data)]);
        }
        let mut sites = Vec::with_capacity(m);
        for q in 0..m {
            let a = &self.sites()[q];
            let b = &other.sites()[q];
            let (al, ar) = (a.shape()[0], a.shape()[2]);
            let (bl, br) = (b.shape()[0], b.shape()[2]);
            let (nl, nr) = if q == 0 {
                (1, ar + br)
            } else if q == m - 1 {
                (al + bl, 1)
            } else {
                (al + bl, ar + br)
            };
            let mut data = vec![Complex64::ZERO; nl * 2 * nr];
            // Block-embed A at the top-left and B at the bottom-right of
            // every physical slice. Boundary sites place the blocks side
            // by side along the non-trivial bond.
            let mut write = |src: &Tensor, l_off: usize, r_off: usize| {
                let (sl, sr) = (src.shape()[0], src.shape()[2]);
                let sd = src.data();
                for l in 0..sl {
                    for p in 0..2 {
                        for r in 0..sr {
                            data[((l + l_off) * 2 + p) * nr + (r + r_off)] =
                                sd[(l * 2 + p) * sr + r];
                        }
                    }
                }
            };
            if q == 0 {
                write(a, 0, 0);
                write(b, 0, ar);
            } else if q == m - 1 {
                write(a, 0, 0);
                write(b, al, 0);
            } else {
                write(a, 0, 0);
                write(b, al, ar);
            }
            sites.push(Tensor::from_data(&[nl, 2, nr], data));
        }
        Mps::from_sites(sites)
    }

    /// Compresses every virtual bond with a right-to-left SVD sweep under
    /// `config`, returning the truncation record of the sweep (also merged
    /// into the state's cumulative stats).
    ///
    /// The state is first canonicalized to the last site so each SVD is
    /// optimal. The sweep leaves the center at site 0. Norm is preserved
    /// by the same kept-spectrum renormalization the gate path uses.
    pub fn compress(
        &mut self,
        backend: &dyn ExecutionBackend,
        config: &TruncationConfig,
    ) -> TruncationStats {
        let m = self.num_qubits();
        let mut sweep = TruncationStats::default();
        if m == 1 {
            return sweep;
        }
        self.canonicalize_to(m - 1);
        // Sweep q = m-1 .. 1: SVD the center site as (chi_l, 2 * chi_r),
        // keep the dominant right factor, absorb U * diag(s) leftwards.
        for q in (1..m).rev() {
            let site = &self.sites()[q];
            let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
            let f = backend.svd(chi_l, 2 * chi_r, site.data());
            let (kept, discarded, count) = decide_rank(&f.s, config);

            sweep.truncations += 1;
            sweep.total_discarded_weight += discarded;
            sweep.max_discarded_weight = sweep.max_discarded_weight.max(discarded);
            sweep.values_discarded += count;

            let total_weight: f64 = f.s.iter().map(|s| s * s).sum();
            let kept_weight = total_weight - discarded;
            let renorm = if kept_weight > 0.0 {
                (total_weight / kept_weight).sqrt()
            } else {
                1.0
            };

            // New site q: top `kept` rows of Vh, shape (kept, 2, chi_r);
            // right-orthogonal by construction.
            let mut vh = vec![Complex64::ZERO; kept * 2 * chi_r];
            vh.copy_from_slice(&f.vh[..kept * 2 * chi_r]);
            self.sites_mut()[q] = Tensor::from_data(&[kept, 2, chi_r], vh);

            // Carry = U[:, :kept] * diag(s * renorm), absorbed into site q-1.
            let mut carry = vec![Complex64::ZERO; chi_l * kept];
            for row in 0..chi_l {
                for c in 0..kept {
                    carry[row * kept + c] = f.u[row * f.k + c].scale(f.s[c] * renorm);
                }
            }
            let prev = &self.sites()[q - 1];
            let (pl, pr) = (prev.shape()[0], prev.shape()[2]);
            debug_assert_eq!(pr, chi_l);
            let mut merged = vec![Complex64::ZERO; pl * 2 * kept];
            qk_tensor::matrix::gemm_auto(pl * 2, chi_l, kept, prev.data(), &carry, &mut merged);
            self.sites_mut()[q - 1] = Tensor::from_data(&[pl, 2, kept], merged);
        }
        self.set_center(0);
        self.merge_stats(&sweep);
        sweep
    }

    /// Fidelity `|<self|other>|^2 / (|self|^2 |other|^2)` between two
    /// states of equal qubit count; tolerant of unnormalized operands.
    pub fn fidelity(&self, other: &Mps) -> f64 {
        let na = self.norm();
        let nb = other.norm();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        self.inner(other).norm_sqr() / (na * na * nb * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::Gate;
    use qk_tensor::backend::CpuBackend;
    use qk_tensor::complex::{approx_eq, c64};

    fn backend() -> CpuBackend {
        CpuBackend::new()
    }

    fn entangled_state(m: usize, theta: f64) -> Mps {
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(m);
        for q in 0..m - 1 {
            mps.apply_gate2(&be, &Gate::Rxx(theta).matrix(), q, &cfg);
            mps.apply_gate1(&Gate::Rz(0.3 + 0.1 * q as f64).matrix(), q);
        }
        mps
    }

    #[test]
    fn scale_multiplies_every_amplitude() {
        let mut mps = Mps::plus_state(3);
        mps.scale(c64(0.0, 2.0));
        let sv = mps.to_statevector();
        let expect = c64(0.0, 2.0 / 8f64.sqrt());
        for z in sv {
            assert!(approx_eq(z, expect, 1e-12));
        }
    }

    #[test]
    fn add_superposes_basis_states() {
        let a = Mps::basis_state(&[0, 0, 0]);
        let b = Mps::basis_state(&[1, 1, 1]);
        let sum = a.add(&b);
        // Unnormalized GHZ: amplitude 1 on both extremes.
        assert!(approx_eq(sum.amplitude(&[0, 0, 0]), Complex64::ONE, 1e-10));
        assert!(approx_eq(sum.amplitude(&[1, 1, 1]), Complex64::ONE, 1e-10));
        assert!(approx_eq(sum.amplitude(&[0, 1, 0]), Complex64::ZERO, 1e-10));
        assert!((sum.norm() - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn add_matches_statevector_sum() {
        let a = entangled_state(4, 0.8);
        let b = entangled_state(4, 1.3);
        let sum = a.add(&b);
        let sva = a.to_statevector();
        let svb = b.to_statevector();
        let svs = sum.to_statevector();
        for i in 0..16 {
            assert!(approx_eq(svs[i], sva[i] + svb[i], 1e-10), "index {i}");
        }
    }

    #[test]
    fn add_single_qubit() {
        let a = Mps::basis_state(&[0]);
        let b = Mps::basis_state(&[1]);
        let mut sum = a.add(&b);
        sum.normalize();
        let sv = sum.to_statevector();
        let amp = std::f64::consts::FRAC_1_SQRT_2;
        assert!(approx_eq(sv[0], c64(amp, 0.0), 1e-12));
        assert!(approx_eq(sv[1], c64(amp, 0.0), 1e-12));
    }

    #[test]
    fn compress_restores_minimal_bond_after_addition() {
        // |psi> + |psi| has the same entanglement as |psi>: bonds double
        // under addition and must return to the original after compression.
        let be = backend();
        let psi = entangled_state(5, 0.9);
        let doubled = psi.add(&psi);
        assert!(doubled.max_bond() >= psi.max_bond());
        let mut compressed = doubled.clone();
        let sweep = compressed.compress(&be, &TruncationConfig::default());
        assert!(compressed.max_bond() <= psi.max_bond());
        assert!(sweep.total_discarded_weight < 1e-12);
        // State unchanged up to normalization: fidelity 1 against psi.
        assert!((compressed.fidelity(&psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn compress_is_identity_on_already_minimal_states() {
        let be = backend();
        let mut psi = entangled_state(4, 1.1);
        let before = psi.to_statevector();
        let chi = psi.max_bond();
        psi.compress(&be, &TruncationConfig::default());
        assert_eq!(psi.max_bond(), chi);
        let after = psi.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    fn lossy_compress_reports_discard_and_keeps_norm() {
        let be = backend();
        let mut psi = entangled_state(6, 1.4);
        let cfg = TruncationConfig::capped(1e-16, 2);
        let sweep = psi.compress(&be, &cfg);
        assert!(psi.max_bond() <= 2);
        assert!(sweep.truncations == 5);
        assert!((psi.norm() - 1.0).abs() < 1e-10);
        // The cumulative stats picked up the sweep.
        assert!(psi.stats().total_discarded_weight >= sweep.total_discarded_weight);
    }

    #[test]
    fn lossy_compress_fidelity_respects_error_budget() {
        let be = backend();
        let psi = entangled_state(6, 1.2);
        let mut lossy = psi.clone();
        let sweep = lossy.compress(&be, &TruncationConfig::capped(1e-16, 3));
        let f = lossy.fidelity(&psi);
        // Eq. (8): fidelity >= 1 - total discarded weight.
        assert!(
            f >= 1.0 - sweep.total_discarded_weight - 1e-10,
            "fidelity {f} vs budget {}",
            sweep.total_discarded_weight
        );
    }

    #[test]
    fn compress_leaves_center_at_zero() {
        let be = backend();
        let mut psi = entangled_state(5, 0.7);
        psi.compress(&be, &TruncationConfig::default());
        assert_eq!(psi.center(), 0);
        // Canonical invariant: norm still reads correctly at the center.
        assert!((psi.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = Mps::basis_state(&[0, 0]);
        let b = Mps::basis_state(&[1, 1]);
        assert!(a.fidelity(&b) < 1e-12);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_sites_roundtrip_preserves_state() {
        let psi = entangled_state(4, 1.0);
        let rebuilt = Mps::from_sites(psi.sites().to_vec());
        assert!((rebuilt.fidelity(&psi) - 1.0).abs() < 1e-10);
        assert!((rebuilt.norm() - 1.0).abs() < 1e-10);
    }
}
