//! Amplitude queries and perfect sampling from an MPS.
//!
//! Tensor-network states admit *perfect sampling* (Ferris & Vidal, 2012):
//! bitstrings are drawn from the exact Born distribution by sweeping the
//! chain once per shot and sampling each qubit conditioned on the prefix,
//! at cost `O(m chi^2)` per shot and with no autocorrelation between
//! shots. This is how a simulator stands in for the measurement phase of
//! a real device run, and it is the primitive a shot-based estimate of
//! the kernel entry `|<psi(x_i)|psi(x_j)>|^2` would be built on.

use crate::mps::Mps;
use qk_tensor::complex::Complex64;
use rand::Rng;
use std::collections::HashMap;

impl Mps {
    /// Amplitude `<b_0 b_1 ... b_{m-1}|psi>` of a computational basis
    /// state, via a single `O(m chi^2)` sweep selecting the physical index
    /// at every site.
    pub fn amplitude(&self, bits: &[u8]) -> Complex64 {
        assert_eq!(
            bits.len(),
            self.num_qubits(),
            "bitstring length must match qubit count"
        );
        // Row vector over the running bond, starting at the trivial
        // boundary.
        let mut env = vec![Complex64::ONE];
        for (site, &b) in self.sites().iter().zip(bits) {
            assert!(b <= 1, "bits must be 0 or 1");
            let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
            debug_assert_eq!(chi_l, env.len(), "environment width must match left bond");
            let data = site.data();
            let mut next = vec![Complex64::ZERO; chi_r];
            for (l, &e) in env.iter().enumerate() {
                let row = &data[(l * 2 + b as usize) * chi_r..(l * 2 + b as usize + 1) * chi_r];
                for (n, &a) in next.iter_mut().zip(row) {
                    *n += e * a;
                }
            }
            env = next;
        }
        env[0]
    }

    /// Born probability `|<b|psi>|^2` of a basis state.
    pub fn probability(&self, bits: &[u8]) -> f64 {
        self.amplitude(bits).norm_sqr()
    }

    /// Draws one bitstring from the Born distribution.
    ///
    /// Requires the orthogonality center at site 0 (the canonical form
    /// makes every site to the right right-orthogonal, so the right
    /// environment is the identity and the conditional distribution of
    /// each qubit is available from the prefix environment alone). The
    /// method canonicalizes if needed, which is why it takes `&mut self`;
    /// repeated calls after the first are pure sweeps.
    pub fn sample_one<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<u8> {
        self.canonicalize_to(0);
        let m = self.num_qubits();
        let mut bits = Vec::with_capacity(m);
        // Conditional prefix environment, renormalized after every site so
        // that p0 + p1 = 1 exactly (up to float error).
        let mut env = vec![Complex64::ONE];
        for site in self.sites() {
            let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
            debug_assert_eq!(chi_l, env.len());
            let data = site.data();
            let mut w0 = vec![Complex64::ZERO; chi_r];
            let mut w1 = vec![Complex64::ZERO; chi_r];
            for (l, &e) in env.iter().enumerate() {
                let row0 = &data[(l * 2) * chi_r..(l * 2 + 1) * chi_r];
                let row1 = &data[(l * 2 + 1) * chi_r..(l * 2 + 2) * chi_r];
                for r in 0..chi_r {
                    w0[r] += e * row0[r];
                    w1[r] += e * row1[r];
                }
            }
            let p0: f64 = w0.iter().map(|z| z.norm_sqr()).sum();
            let p1: f64 = w1.iter().map(|z| z.norm_sqr()).sum();
            let total = p0 + p1;
            // total can drift from 1 through accumulated float error; the
            // draw is normalized so the sweep never panics on drift.
            // Zero total (fully truncated branch) defaults to bit 0.
            let bit = usize::from(total > 0.0 && rng.gen::<f64>() * total >= p0);
            bits.push(bit as u8);
            let (mut w, p) = if bit == 0 { (w0, p0) } else { (w1, p1) };
            if p > 0.0 {
                let inv = 1.0 / p.sqrt();
                for z in &mut w {
                    *z = z.scale(inv);
                }
            }
            env = w;
        }
        bits
    }

    /// Draws `shots` independent bitstrings from the Born distribution.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, shots: usize) -> Vec<Vec<u8>> {
        self.canonicalize_to(0);
        (0..shots).map(|_| self.sample_one(rng)).collect()
    }

    /// Draws `shots` bitstrings and tallies them into a histogram.
    pub fn sample_counts<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        shots: usize,
    ) -> HashMap<Vec<u8>, usize> {
        let mut counts = HashMap::new();
        for bits in self.sample(rng, shots) {
            *counts.entry(bits).or_insert(0) += 1;
        }
        counts
    }
}

/// Shot-based estimate of the kernel entry `|<a|b>|^2` via the standard
/// compute-uncompute trick a hardware run would use: the probability of
/// the all-zeros outcome after preparing `U(x_j)` and un-preparing
/// `U(x_i)` equals the squared overlap. With MPS states available, the
/// estimator draws from the exact overlap `p = |<a|b>|^2` and returns the
/// binomial sample mean — this models *shot noise only*, which is exactly
/// the error source hardware adds on top of the exact kernel the paper's
/// simulator computes.
pub fn shot_estimate_overlap<R: Rng + ?Sized>(a: &Mps, b: &Mps, shots: usize, rng: &mut R) -> f64 {
    assert!(shots > 0, "need at least one shot");
    let p = a.overlap_sqr(b).clamp(0.0, 1.0);
    let hits = (0..shots).filter(|_| rng.gen::<f64>() < p).count();
    hits as f64 / shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mps::TruncationConfig;
    use qk_circuit::Gate;
    use qk_tensor::backend::CpuBackend;
    use qk_tensor::complex::{approx_eq, c64};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn amplitude_of_basis_state() {
        let mps = Mps::basis_state(&[1, 0, 1]);
        assert!(approx_eq(mps.amplitude(&[1, 0, 1]), Complex64::ONE, 1e-12));
        assert!(approx_eq(mps.amplitude(&[0, 0, 1]), Complex64::ZERO, 1e-12));
        assert!(approx_eq(mps.amplitude(&[1, 0, 0]), Complex64::ZERO, 1e-12));
    }

    #[test]
    fn amplitude_of_plus_state() {
        let mps = Mps::plus_state(4);
        let expect = c64(0.25, 0.0);
        for idx in 0..16u32 {
            let bits: Vec<u8> = (0..4).map(|q| ((idx >> (3 - q)) & 1) as u8).collect();
            assert!(approx_eq(mps.amplitude(&bits), expect, 1e-12));
        }
    }

    #[test]
    fn amplitudes_match_statevector_after_circuit() {
        use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
        let features = [0.3, 1.7, 0.8, 1.1];
        let circuit = feature_map_circuit(&features, &AnsatzConfig::new(2, 2, 0.7));
        let be = CpuBackend::new();
        let (mps, _) = crate::sim::MpsSimulator::new(&be).simulate(&circuit);
        let sv = mps.to_statevector();
        for (idx, &amp) in sv.iter().enumerate() {
            let bits: Vec<u8> = (0..4).map(|q| ((idx >> (3 - q)) & 1) as u8).collect();
            assert!(approx_eq(mps.amplitude(&bits), amp, 1e-10), "index {idx}");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(5);
        for q in 0..4 {
            mps.apply_gate2(&be, &Gate::Rxx(0.9).matrix(), q, &cfg);
        }
        let total: f64 = (0..32usize)
            .map(|idx| {
                let bits: Vec<u8> = (0..5).map(|q| ((idx >> (4 - q)) & 1) as u8).collect();
                mps.probability(&bits)
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let mut mps = Mps::basis_state(&[1, 0, 1, 1]);
        let mut r = rng(1);
        for _ in 0..20 {
            assert_eq!(mps.sample_one(&mut r), vec![1, 0, 1, 1]);
        }
    }

    #[test]
    fn sampling_ghz_state_yields_only_extremes() {
        // H on qubit 0, then a CX chain: (|000...> + |111...>)/sqrt(2).
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let m = 6;
        let mut mps = Mps::basis_state(&vec![0; m]);
        mps.apply_gate1(&Gate::H.matrix(), 0);
        for q in 0..m - 1 {
            mps.apply_gate2(&be, &Gate::Cx.matrix(), q, &cfg);
        }
        let mut r = rng(7);
        let counts = mps.sample_counts(&mut r, 400);
        assert_eq!(counts.len(), 2, "GHZ sampling must produce two outcomes");
        let zeros = counts.get(&vec![0u8; m]).copied().unwrap_or(0);
        let ones = counts.get(&vec![1u8; m]).copied().unwrap_or(0);
        assert_eq!(zeros + ones, 400);
        // Both outcomes appear with probability 1/2; 400 shots put each
        // count within ~5 sigma of 200.
        assert!(zeros > 120 && zeros < 280, "zeros = {zeros}");
    }

    #[test]
    fn sample_frequencies_match_born_probabilities() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(3);
        mps.apply_gate2(&be, &Gate::Rxx(1.1).matrix(), 0, &cfg);
        mps.apply_gate1(&Gate::Rz(0.6).matrix(), 1);
        mps.apply_gate2(&be, &Gate::Rxx(0.4).matrix(), 1, &cfg);
        let shots = 20_000;
        let mut r = rng(42);
        let counts = mps.sample_counts(&mut r, shots);
        for idx in 0..8usize {
            let bits: Vec<u8> = (0..3).map(|q| ((idx >> (2 - q)) & 1) as u8).collect();
            let p = mps.probability(&bits);
            let freq = counts.get(&bits).copied().unwrap_or(0) as f64 / shots as f64;
            // Binomial std dev ~ sqrt(p/shots) <= 0.0036; allow 5 sigma.
            assert!(
                (freq - p).abs() < 0.02,
                "bits {bits:?}: freq {freq} vs p {p}"
            );
        }
    }

    #[test]
    fn sampling_preserves_the_state() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(4);
        mps.apply_gate2(&be, &Gate::Rxx(0.8).matrix(), 1, &cfg);
        let before = mps.to_statevector();
        let mut r = rng(3);
        let _ = mps.sample(&mut r, 50);
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    fn shot_estimator_converges_to_overlap() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let a = Mps::plus_state(4);
        let mut b = Mps::plus_state(4);
        b.apply_gate2(&be, &Gate::Rxx(0.9).matrix(), 0, &cfg);
        b.apply_gate1(&Gate::Rz(0.4).matrix(), 2);
        let exact = a.overlap_sqr(&b);
        let mut r = rng(11);
        let est = shot_estimate_overlap(&a, &b, 40_000, &mut r);
        assert!((est - exact).abs() < 0.015, "est {est} vs exact {exact}");
    }

    #[test]
    #[should_panic(expected = "bitstring length")]
    fn amplitude_rejects_wrong_length() {
        let mps = Mps::plus_state(3);
        let _ = mps.amplitude(&[0, 1]);
    }
}
