//! Zero-allocation zipper inner products (the paper's Fig. 2).
//!
//! The generic contraction path (`Tensor::conj` + two `contract_with`
//! calls per site) allocates a conjugated copy of every site tensor,
//! permute-copies both operands and heap-allocates the environment at
//! each of the `m` sites. This module walks the site slices directly:
//! per site, exactly two GEMM calls into preallocated buffers —
//!
//! 1. transfer: `T[l_a, (p, r_b)] = E[l_a, l_b] · B[l_b, (p, r_b)]`
//!    (no permute needed: the contracted bond of `E` and of `B` already
//!    sit at the matrix boundary in row-major layout);
//! 2. fused-conjugate absorb:
//!    `E'[r_a, r_b] = Σ_{l_a, p} conj(A[(l_a, p), r_a]) · T[(l_a, p), r_b]`,
//!    which is `A^H · T` with `A` read as an `(l_a·2) x r_a` matrix —
//!    conjugation happens inside [`ExecutionBackend::gemm_conj_a`], so
//!    `conj(A)` is never materialized.
//!
//! A [`ZipperWorkspace`] holds two ping-pong environment buffers and one
//! transfer panel, sized once from the largest bond product and reused
//! across calls; after warm-up an inner product performs **zero** heap
//! allocation. `core::gram`'s fast path, `qk-gram`'s tile workers and
//! `qk-serve`'s batch workers each hold one workspace per worker, which
//! amortizes the buffers across whole Gram tiles and kernel rows.
//!
//! **Determinism.** The per-element accumulation order of both GEMMs is
//! fixed by `qk-tensor`'s kernels independent of blocking, backend or
//! thread count, so every caller of [`crate::Mps::inner_with`] /
//! [`crate::Mps::inner_into`] sees bitwise-identical values for the same
//! operands — the property `qk-gram`'s tile × workers × spill × resume
//! reproducibility pins rely on.

use qk_tensor::backend::ExecutionBackend;
use qk_tensor::complex::Complex64;
use qk_tensor::tensor::Tensor;

/// Reusable buffers for the zipper contraction: two ping-pong
/// environments plus one transfer panel. Construct once per worker (or
/// let [`crate::Mps::inner_with`] use its thread-local instance) and
/// pass to [`crate::Mps::inner_into`]; buffers grow to the largest bond
/// dimension seen and are never shrunk.
#[derive(Debug, Default)]
pub struct ZipperWorkspace {
    /// Current environment `E[l_a, l_b]` (row-major).
    env: Vec<Complex64>,
    /// Next environment, swapped in after each site.
    env_next: Vec<Complex64>,
    /// Transfer panel `T[l_a, (p, r_b)]`.
    panel: Vec<Complex64>,
}

impl ZipperWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for states of bond dimension up to `chi`,
    /// so even the first call allocates nothing.
    pub fn with_bond_capacity(chi: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(chi * chi, chi * 2 * chi);
        ws
    }

    /// Grows the buffers to hold `env_len` environment entries and
    /// `panel_len` panel entries.
    fn ensure(&mut self, env_len: usize, panel_len: usize) {
        if self.env.len() < env_len {
            self.env.resize(env_len, Complex64::ZERO);
            self.env_next.resize(env_len, Complex64::ZERO);
        }
        if self.panel.len() < panel_len {
            self.panel.resize(panel_len, Complex64::ZERO);
        }
    }

    /// Current heap footprint of the buffers, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        (self.env.len() + self.env_next.len() + self.panel.len()) * std::mem::size_of::<Complex64>()
    }
}

/// Runs the zipper over two site chains. Both chains must have equal
/// length (checked by the caller) and valid MPS bond structure.
pub(crate) fn zip_inner(
    ws: &mut ZipperWorkspace,
    a_sites: &[Tensor],
    b_sites: &[Tensor],
    backend: &dyn ExecutionBackend,
) -> Complex64 {
    // Size pass (no allocation: reads shapes only), so the walk below
    // never reallocates mid-chain.
    let mut env_len = 1usize;
    let mut panel_len = 2usize;
    for (a, b) in a_sites.iter().zip(b_sites) {
        let (la, ra) = (a.shape()[0], a.shape()[2]);
        let (lb, rb) = (b.shape()[0], b.shape()[2]);
        env_len = env_len.max(la * lb).max(ra * rb);
        panel_len = panel_len.max(la * 2 * rb);
    }
    ws.ensure(env_len, panel_len);

    // Trivial 1x1 boundary environment.
    ws.env[0] = Complex64::ONE;
    for (a, b) in a_sites.iter().zip(b_sites) {
        let (la, ra) = (a.shape()[0], a.shape()[2]);
        let (lb, rb) = (b.shape()[0], b.shape()[2]);
        // T[l_a, (p, r_b)] = E · B, with B read as an (l_b x 2 r_b) matrix.
        backend.gemm(
            la,
            lb,
            2 * rb,
            &ws.env[..la * lb],
            b.data(),
            &mut ws.panel[..la * 2 * rb],
        );
        // E'[r_a, r_b] = A^H · T, with A read as an (l_a·2 x r_a) matrix;
        // conjugation is fused into the kernel.
        backend.gemm_conj_a(
            ra,
            la * 2,
            rb,
            a.data(),
            &ws.panel[..la * 2 * rb],
            &mut ws.env_next[..ra * rb],
        );
        std::mem::swap(&mut ws.env, &mut ws.env_next);
    }
    ws.env[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_grows_and_reports_capacity() {
        let mut ws = ZipperWorkspace::new();
        assert_eq!(ws.capacity_bytes(), 0);
        ws.ensure(16, 32);
        let bytes = ws.capacity_bytes();
        assert_eq!(bytes, (16 + 16 + 32) * 16);
        // Never shrinks.
        ws.ensure(4, 4);
        assert_eq!(ws.capacity_bytes(), bytes);
        let pre = ZipperWorkspace::with_bond_capacity(8);
        assert_eq!(pre.capacity_bytes(), (64 + 64 + 128) * 16);
    }
}
