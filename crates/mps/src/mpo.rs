//! Matrix Product Operators: Hamiltonians and channels in chain form.
//!
//! The paper's feature map is a Trotterized evolution under the Ising-type
//! Hamiltonians of eqs. (4) and (5). An MPO represents such an operator in
//! the same chain layout as the state, which gives the library direct
//! access to `<psi(x)| H |psi(x)>` energies (an encoding diagnostic) and to
//! operator application with controlled truncation. Site tensors have
//! shape `(w_l, 2, 2, w_r)` with legs ordered `(bond, out, in, bond)`.

use crate::mps::{decide_rank, Mps, TruncationConfig, TruncationStats};
use qk_tensor::backend::ExecutionBackend;
use qk_tensor::complex::{c64, Complex64};
use qk_tensor::contract::contract;
use qk_tensor::tensor::Tensor;

/// A single-qubit Pauli operator label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The 2x2 matrix of the operator.
    pub fn matrix(self) -> [Complex64; 4] {
        let (zero, one) = (Complex64::ZERO, Complex64::ONE);
        match self {
            Pauli::I => [one, zero, zero, one],
            Pauli::X => [zero, one, one, zero],
            Pauli::Y => [zero, c64(0.0, -1.0), c64(0.0, 1.0), zero],
            Pauli::Z => [one, zero, zero, -one],
        }
    }
}

/// A weighted Pauli string: `coeff * P_{q_1} P_{q_2} ...` with identities
/// on every unlisted qubit.
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString {
    /// Real coefficient (Hamiltonian terms are Hermitian).
    pub coeff: f64,
    /// `(qubit, operator)` pairs; qubits must be distinct.
    pub ops: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// Convenience constructor.
    pub fn new(coeff: f64, ops: Vec<(usize, Pauli)>) -> Self {
        PauliString { coeff, ops }
    }
}

/// A Matrix Product Operator on `m` qubits.
#[derive(Debug, Clone)]
pub struct Mpo {
    sites: Vec<Tensor>,
}

impl Mpo {
    /// The identity operator (all bonds trivial).
    pub fn identity(num_qubits: usize) -> Self {
        assert!(num_qubits >= 1, "need at least one qubit");
        let mut data = vec![Complex64::ZERO; 4];
        data[0] = Complex64::ONE;
        data[3] = Complex64::ONE;
        let site = Tensor::from_data(&[1, 2, 2, 1], data);
        Mpo {
            sites: vec![site; num_qubits],
        }
    }

    /// A single weighted Pauli string as a bond-dimension-1 MPO. The
    /// coefficient is absorbed into the first site.
    pub fn from_pauli_string(num_qubits: usize, term: &PauliString) -> Self {
        assert!(num_qubits >= 1, "need at least one qubit");
        let mut paulis = vec![Pauli::I; num_qubits];
        for &(q, p) in &term.ops {
            assert!(q < num_qubits, "qubit {q} out of range");
            assert_eq!(paulis[q], Pauli::I, "duplicate qubit {q} in Pauli string");
            paulis[q] = p;
        }
        let sites = paulis
            .iter()
            .enumerate()
            .map(|(q, p)| {
                let mut data = p.matrix().to_vec();
                if q == 0 {
                    for z in &mut data {
                        *z = z.scale(term.coeff);
                    }
                }
                Tensor::from_data(&[1, 2, 2, 1], data)
            })
            .collect();
        Mpo { sites }
    }

    /// The sum of weighted Pauli strings, built by direct-sum addition and
    /// compressed to (near-)minimal bond dimension.
    pub fn from_pauli_sum(num_qubits: usize, terms: &[PauliString]) -> Self {
        assert!(!terms.is_empty(), "need at least one term");
        let mut acc = Mpo::from_pauli_string(num_qubits, &terms[0]);
        for term in &terms[1..] {
            acc = acc.add(&Mpo::from_pauli_string(num_qubits, term));
            // Compress as we go so intermediate bonds stay proportional to
            // the operator's true rank rather than the term count.
            acc.compress(1e-14);
        }
        acc
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.sites.len()
    }

    /// The site tensors, each `(w_l, 2, 2, w_r)`.
    pub fn sites(&self) -> &[Tensor] {
        &self.sites
    }

    /// Operator bond dimensions (`m - 1` interior bonds).
    pub fn bond_dims(&self) -> Vec<usize> {
        self.sites[..self.sites.len() - 1]
            .iter()
            .map(|s| s.shape()[3])
            .collect()
    }

    /// Largest operator bond dimension.
    pub fn max_bond(&self) -> usize {
        self.bond_dims().into_iter().max().unwrap_or(1)
    }

    /// Direct-sum addition `self + other` (bonds add; boundaries stay 1).
    pub fn add(&self, other: &Mpo) -> Mpo {
        let m = self.num_qubits();
        assert_eq!(
            m,
            other.num_qubits(),
            "MPO addition requires equal qubit counts"
        );
        if m == 1 {
            let mut data = self.sites[0].data().to_vec();
            for (z, w) in data.iter_mut().zip(other.sites[0].data()) {
                *z += *w;
            }
            return Mpo {
                sites: vec![Tensor::from_data(&[1, 2, 2, 1], data)],
            };
        }
        let mut sites = Vec::with_capacity(m);
        for q in 0..m {
            let a = &self.sites[q];
            let b = &other.sites[q];
            let (al, ar) = (a.shape()[0], a.shape()[3]);
            let (bl, br) = (b.shape()[0], b.shape()[3]);
            let (nl, nr) = if q == 0 {
                (1, ar + br)
            } else if q == m - 1 {
                (al + bl, 1)
            } else {
                (al + bl, ar + br)
            };
            let mut data = vec![Complex64::ZERO; nl * 4 * nr];
            let mut write = |src: &Tensor, l_off: usize, r_off: usize| {
                let (sl, sr) = (src.shape()[0], src.shape()[3]);
                let sd = src.data();
                for l in 0..sl {
                    for p in 0..4 {
                        for r in 0..sr {
                            data[((l + l_off) * 4 + p) * nr + (r + r_off)] =
                                sd[(l * 4 + p) * sr + r];
                        }
                    }
                }
            };
            if q == 0 {
                write(a, 0, 0);
                write(b, 0, ar);
            } else if q == m - 1 {
                write(a, 0, 0);
                write(b, al, 0);
            } else {
                write(a, 0, 0);
                write(b, al, ar);
            }
            sites.push(Tensor::from_data(&[nl, 2, 2, nr], data));
        }
        Mpo { sites }
    }

    /// Scales the operator by a real factor (absorbed into the first site).
    pub fn scale(&mut self, k: f64) {
        self.sites[0].scale_real_inplace(k);
    }

    /// Compresses operator bonds with a right-to-left SVD sweep, fusing the
    /// two physical legs into one dimension-4 leg. `cutoff` is the relative
    /// discarded-weight budget per bond (operator norms are not tracked —
    /// MPO compression serves representation size, not the eq.-8 budget).
    pub fn compress(&mut self, cutoff: f64) {
        let m = self.sites.len();
        if m == 1 {
            return;
        }
        let config = TruncationConfig {
            cutoff,
            max_bond: None,
        };
        // Left-to-right QR pass to orthogonalize (reusing the SVD as an
        // orthogonalizer keeps the dependency surface small: U columns are
        // orthonormal).
        for q in 0..m - 1 {
            let site = &self.sites[q];
            let (wl, wr) = (site.shape()[0], site.shape()[3]);
            let f = qk_tensor::svd(wl * 4, wr, site.data());
            let k = f.k;
            self.sites[q] = Tensor::from_data(&[wl, 2, 2, k], f.u.clone());
            // carry = diag(s) Vh, absorbed into the next site.
            let mut carry = vec![Complex64::ZERO; k * wr];
            for r in 0..k {
                for c in 0..wr {
                    carry[r * wr + c] = f.vh[r * wr + c].scale(f.s[r]);
                }
            }
            let next = &self.sites[q + 1];
            let (nl, nr) = (next.shape()[0], next.shape()[3]);
            debug_assert_eq!(nl, wr);
            let mut merged = vec![Complex64::ZERO; k * 4 * nr];
            qk_tensor::matrix::gemm_auto(k, wr, 4 * nr, &carry, next.data(), &mut merged);
            self.sites[q + 1] = Tensor::from_data(&[k, 2, 2, nr], merged);
        }
        // Right-to-left truncating sweep.
        for q in (1..m).rev() {
            let site = &self.sites[q];
            let (wl, wr) = (site.shape()[0], site.shape()[3]);
            let f = qk_tensor::svd(wl, 4 * wr, site.data());
            let (kept, _, _) = decide_rank(&f.s, &config);
            let mut vh = vec![Complex64::ZERO; kept * 4 * wr];
            vh.copy_from_slice(&f.vh[..kept * 4 * wr]);
            self.sites[q] = Tensor::from_data(&[kept, 2, 2, wr], vh);
            let mut carry = vec![Complex64::ZERO; wl * kept];
            for row in 0..wl {
                for c in 0..kept {
                    carry[row * kept + c] = f.u[row * f.k + c].scale(f.s[c]);
                }
            }
            let prev = &self.sites[q - 1];
            let (pl, pr) = (prev.shape()[0], prev.shape()[3]);
            debug_assert_eq!(pr, wl);
            let mut merged = vec![Complex64::ZERO; pl * 4 * kept];
            qk_tensor::matrix::gemm_auto(pl * 4, wl, kept, prev.data(), &carry, &mut merged);
            self.sites[q - 1] = Tensor::from_data(&[pl, 2, 2, kept], merged);
        }
    }

    /// Expectation value `<psi| O |psi>` via the three-layer zipper
    /// contraction; cost `O(m chi^3 w + m chi^2 w^2)` for state bond `chi`
    /// and operator bond `w`.
    pub fn expectation(&self, state: &Mps) -> Complex64 {
        assert_eq!(
            self.num_qubits(),
            state.num_qubits(),
            "operator and state must agree on qubit count"
        );
        // env[(a, w, b)]: bra bond, operator bond, ket bond.
        let mut env = Tensor::from_data(&[1, 1, 1], vec![Complex64::ONE]);
        for (w_site, a_site) in self.sites.iter().zip(state.sites()) {
            // T1[(a, w, p_in, b_r)] = env[(a, w, b)] ket[(b, p_in, b_r)]
            let t1 = contract(&env, &[2], a_site, &[0]);
            // T2[(a, b_r, p_out, w_r)] = T1[(a, w, p_in, b_r)] W[(w, p_out, p_in, w_r)]
            let t2 = contract(&t1, &[1, 2], w_site, &[0, 2]);
            // env'[(a_r, b_r, w_r)] = conj(bra[(a, p_out, a_r)]) T2[(a, b_r, p_out, w_r)]
            let next = contract(&a_site.conj(), &[0, 1], &t2, &[0, 2]);
            env = next.permute(&[0, 2, 1]);
        }
        env.data()[0]
    }

    /// Real part of the expectation value (exact for Hermitian operators,
    /// which all Pauli-sum MPOs are).
    pub fn expectation_real(&self, state: &Mps) -> f64 {
        self.expectation(state).re
    }

    /// Applies the operator to a state: `|psi'> = O |psi>`, compressing the
    /// blown-up bonds (`chi * w`) back down under `config`. Returns the
    /// new state and the truncation record of the compression sweep.
    ///
    /// The result is *not* normalized: applying a non-unitary operator
    /// (e.g. a Hamiltonian) legitimately changes the norm, and callers
    /// computing Rayleigh quotients need it intact.
    pub fn apply(
        &self,
        backend: &dyn ExecutionBackend,
        state: &Mps,
        config: &TruncationConfig,
    ) -> (Mps, TruncationStats) {
        assert_eq!(
            self.num_qubits(),
            state.num_qubits(),
            "operator and state must agree on qubit count"
        );
        let sites = self
            .sites
            .iter()
            .zip(state.sites())
            .map(|(w, a)| {
                // T[(w_l, p_out, w_r, a_l, a_r)] = W[(w_l, p_out, p_in, w_r)] A[(a_l, p_in, a_r)]
                let t = contract(w, &[2], a, &[1]);
                let (wl, wr) = (w.shape()[0], w.shape()[3]);
                let (al, ar) = (a.shape()[0], a.shape()[2]);
                // Fuse (w_l, a_l) and (w_r, a_r).
                t.permute(&[0, 3, 1, 2, 4]).reshape(&[wl * al, 2, wr * ar])
            })
            .collect();
        let mut out = Mps::from_sites(sites);
        let norm = out.norm();
        let sweep = out.compress(backend, config);
        // from_sites + compress leave the state unit-normalized only if the
        // input was; restore the operator-induced norm explicitly.
        let achieved = out.norm();
        if achieved > 0.0 {
            out.scale(Complex64::from_real(norm / achieved));
        }
        (out, sweep)
    }

    /// Densifies the operator into a row-major `2^m x 2^m` matrix. Only
    /// sensible for small `m`; used for validation.
    pub fn to_dense(&self) -> Tensor {
        let m = self.num_qubits();
        assert!(m <= 12, "refusing to densify an MPO beyond 12 qubits");
        // acc[(out_prefix, in_prefix, w)] with fused prefixes.
        let mut acc = Tensor::from_data(&[1, 1, 1], vec![Complex64::ONE]);
        for site in &self.sites {
            // next[(o, i, p_out, p_in, w_r)] = acc[(o, i, w)] W[(w, p_out, p_in, w_r)]
            let next = contract(&acc, &[2], site, &[0]);
            let (o, i, wr) = (next.shape()[0], next.shape()[1], next.shape()[4]);
            // Fuse p_out into the out prefix and p_in into the in prefix.
            acc = next.permute(&[0, 2, 1, 3, 4]).reshape(&[o * 2, i * 2, wr]);
        }
        let dim = 1usize << m;
        acc.reshape(&[dim, dim])
    }
}

/// The single-qubit encoding Hamiltonian of eq. (4):
/// `H_Z(x) = gamma * sum_i x_i Z_i`.
pub fn hz_mpo(features: &[f64], gamma: f64) -> Mpo {
    let m = features.len();
    let terms: Vec<PauliString> = features
        .iter()
        .enumerate()
        .map(|(q, &x)| PauliString::new(gamma * x, vec![(q, Pauli::Z)]))
        .collect();
    Mpo::from_pauli_sum(m, &terms)
}

/// The two-qubit encoding Hamiltonian of eq. (5):
/// `H_XX(x) = gamma^2 * (pi/2) * sum_{(i,j) in G} (1 - x_i)(1 - x_j) X_i X_j`
/// over the linear chain with interaction distance `d`.
pub fn hxx_mpo(features: &[f64], gamma: f64, distance: usize) -> Mpo {
    let m = features.len();
    let scale = gamma * gamma * std::f64::consts::FRAC_PI_2;
    let terms: Vec<PauliString> = qk_circuit::linear_chain_edges(m, distance)
        .into_iter()
        .map(|(i, j)| {
            let coeff = scale * (1.0 - features[i]) * (1.0 - features[j]);
            PauliString::new(coeff, vec![(i, Pauli::X), (j, Pauli::X)])
        })
        .collect();
    Mpo::from_pauli_sum(m, &terms)
}

/// The full encoding Hamiltonian `H_Z(x) + H_XX(x)` for a feature vector,
/// matching the generators of the paper's feature map (eqs. 3-5).
pub fn encoding_hamiltonian(features: &[f64], gamma: f64, distance: usize) -> Mpo {
    let hz = hz_mpo(features, gamma);
    if distance == 0 || features.len() < 2 {
        return hz;
    }
    let mut h = hz.add(&hxx_mpo(features, gamma, distance));
    h.compress(1e-14);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::Gate;
    use qk_tensor::backend::CpuBackend;
    use qk_tensor::complex::approx_eq;

    const TOL: f64 = 1e-10;

    fn dense_pauli(m: usize, term: &PauliString) -> Vec<Complex64> {
        // Kronecker product of per-qubit matrices, qubit 0 most significant.
        let mut paulis = vec![Pauli::I; m];
        for &(q, p) in &term.ops {
            paulis[q] = p;
        }
        let mut acc = vec![Complex64::from_real(term.coeff)];
        let mut dim = 1usize;
        for p in paulis {
            let mat = p.matrix();
            let nd = dim * 2;
            let mut next = vec![Complex64::ZERO; nd * nd];
            for r in 0..dim {
                for c in 0..dim {
                    for pr in 0..2 {
                        for pc in 0..2 {
                            next[(r * 2 + pr) * nd + (c * 2 + pc)] =
                                acc[r * dim + c] * mat[pr * 2 + pc];
                        }
                    }
                }
            }
            acc = next;
            dim = nd;
        }
        acc
    }

    #[test]
    fn identity_mpo_fixes_any_state() {
        let op = Mpo::identity(4);
        let mps = Mps::plus_state(4);
        assert!(approx_eq(op.expectation(&mps), Complex64::ONE, TOL));
        assert_eq!(op.max_bond(), 1);
    }

    #[test]
    fn pauli_string_dense_agreement() {
        let m = 3;
        let term = PauliString::new(0.7, vec![(0, Pauli::X), (2, Pauli::Z)]);
        let op = Mpo::from_pauli_string(m, &term);
        let dense = op.to_dense();
        let expect = dense_pauli(m, &term);
        for (a, b) in dense.data().iter().zip(&expect) {
            assert!(approx_eq(*a, *b, TOL));
        }
    }

    #[test]
    fn pauli_sum_dense_agreement() {
        let m = 4;
        let terms = vec![
            PauliString::new(0.5, vec![(0, Pauli::Z)]),
            PauliString::new(-0.3, vec![(1, Pauli::X), (2, Pauli::X)]),
            PauliString::new(1.1, vec![(3, Pauli::Y)]),
            PauliString::new(0.2, vec![(0, Pauli::Z), (3, Pauli::Z)]),
        ];
        let op = Mpo::from_pauli_sum(m, &terms);
        let dense = op.to_dense();
        let dim = 1 << m;
        let mut expect = vec![Complex64::ZERO; dim * dim];
        for t in &terms {
            for (e, v) in expect.iter_mut().zip(dense_pauli(m, t)) {
                *e += v;
            }
        }
        for (a, b) in dense.data().iter().zip(&expect) {
            assert!(approx_eq(*a, *b, 1e-9));
        }
    }

    #[test]
    fn z_expectations_on_basis_states() {
        let m = 3;
        let op = Mpo::from_pauli_string(m, &PauliString::new(1.0, vec![(1, Pauli::Z)]));
        let up = Mps::basis_state(&[0, 0, 0]);
        let down = Mps::basis_state(&[0, 1, 0]);
        assert!((op.expectation_real(&up) - 1.0).abs() < TOL);
        assert!((op.expectation_real(&down) + 1.0).abs() < TOL);
    }

    #[test]
    fn expectation_matches_observe_module() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(4);
        mps.apply_gate2(&be, &Gate::Rxx(0.9).matrix(), 1, &cfg);
        mps.apply_gate1(&Gate::Rz(0.5).matrix(), 2);
        for q in 0..4 {
            let op = Mpo::from_pauli_string(4, &PauliString::new(1.0, vec![(q, Pauli::Z)]));
            let via_mpo = op.expectation_real(&mps);
            let via_rho = mps.expectation_1q(&crate::observe::pauli_z(), q);
            assert!((via_mpo - via_rho).abs() < TOL, "qubit {q}");
        }
    }

    #[test]
    fn hz_mpo_energy_is_weighted_magnetization() {
        // On |0...0>, <Z_i> = 1, so <H_Z> = gamma * sum x_i.
        let x = [0.4, 1.2, 0.7, 1.9];
        let gamma = 0.8;
        let h = hz_mpo(&x, gamma);
        let zero = Mps::basis_state(&[0; 4]);
        let expect: f64 = gamma * x.iter().sum::<f64>();
        assert!((h.expectation_real(&zero) - expect).abs() < 1e-9);
        // H_Z is a sum of single-site terms: bond dimension 2 suffices.
        assert!(h.max_bond() <= 2, "bond {}", h.max_bond());
    }

    #[test]
    fn hxx_mpo_energy_on_plus_state() {
        // |+>^m is an eigenstate of every X_i X_j with eigenvalue +1, so
        // <H_XX> equals the sum of the coefficients.
        let x = [0.3, 0.6, 1.4, 0.2, 1.8];
        let gamma = 0.9;
        let d = 2;
        let h = hxx_mpo(&x, gamma, d);
        let plus = Mps::plus_state(5);
        let expect: f64 = qk_circuit::linear_chain_edges(5, d)
            .into_iter()
            .map(|(i, j)| gamma * gamma * std::f64::consts::FRAC_PI_2 * (1.0 - x[i]) * (1.0 - x[j]))
            .sum();
        assert!((h.expectation_real(&plus) - expect).abs() < 1e-9);
    }

    #[test]
    fn hxx_bond_grows_gently_with_distance() {
        let x = [0.5; 8];
        for d in 1..=4usize {
            let h = hxx_mpo(&x, 1.0, d);
            // The finite-state construction needs d + 2 states; the
            // SVD-compressed sum must not exceed that.
            assert!(
                h.max_bond() <= d + 2,
                "d = {d}: bond {} exceeds {}",
                h.max_bond(),
                d + 2
            );
        }
    }

    #[test]
    fn mpo_add_is_dense_sum() {
        let a = Mpo::from_pauli_string(3, &PauliString::new(0.4, vec![(0, Pauli::X)]));
        let b = Mpo::from_pauli_string(3, &PauliString::new(-0.9, vec![(2, Pauli::Z)]));
        let sum = a.add(&b);
        let da = a.to_dense();
        let db = b.to_dense();
        let ds = sum.to_dense();
        for i in 0..ds.len() {
            assert!(approx_eq(ds.data()[i], da.data()[i] + db.data()[i], TOL));
        }
    }

    #[test]
    fn compress_preserves_dense_form() {
        let terms = [
            PauliString::new(0.5, vec![(0, Pauli::Z)]),
            PauliString::new(0.5, vec![(1, Pauli::Z)]),
            PauliString::new(0.25, vec![(0, Pauli::X), (1, Pauli::X)]),
        ];
        // Build without intermediate compression to get a padded MPO.
        let mut op = Mpo::from_pauli_string(2, &terms[0]);
        for t in &terms[1..] {
            op = op.add(&Mpo::from_pauli_string(2, t));
        }
        let before = op.to_dense();
        let bond_before = op.max_bond();
        op.compress(1e-14);
        assert!(op.max_bond() <= bond_before);
        let after = op.to_dense();
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!(approx_eq(*a, *b, 1e-9));
        }
    }

    #[test]
    fn apply_matches_dense_matvec() {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let x = [0.7, 1.1, 0.4];
        let h = encoding_hamiltonian(&x, 0.8, 1);
        let mut psi = Mps::plus_state(3);
        psi.apply_gate2(&be, &Gate::Rxx(0.6).matrix(), 0, &cfg);
        let (hpsi, _) = h.apply(&be, &psi, &cfg);

        let dense = h.to_dense();
        let sv = psi.to_statevector();
        let mut expect = vec![Complex64::ZERO; 8];
        qk_tensor::matrix::matvec(8, 8, dense.data(), &sv, &mut expect);
        let got = hpsi.to_statevector();
        for i in 0..8 {
            assert!(approx_eq(got[i], expect[i], 1e-9), "index {i}");
        }
    }

    #[test]
    fn rayleigh_quotient_consistency() {
        // <psi|H|psi> computed two ways: zipper expectation vs apply+inner.
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        let x = [0.2, 1.5, 0.9, 0.6];
        let h = encoding_hamiltonian(&x, 1.0, 2);
        let mut psi = Mps::plus_state(4);
        psi.apply_gate2(&be, &Gate::Rxx(1.0).matrix(), 1, &cfg);
        let direct = h.expectation_real(&psi);
        let (hpsi, _) = h.apply(&be, &psi, &cfg);
        let via_apply = psi.inner(&hpsi).re;
        assert!((direct - via_apply).abs() < 1e-9, "{direct} vs {via_apply}");
    }

    #[test]
    fn encoding_energy_is_conserved_by_its_own_evolution() {
        // U(x) = (e^{-i H_XX} e^{-i H_Z})^r does not commute with H term
        // by term, but the *plus* state's H_XX energy must be invariant
        // under e^{-i H_XX} alone. Sanity-check the weaker, exact claim:
        // expectation of H in the evolved state equals the statevector
        // value.
        use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
        let x = [0.4, 1.6, 0.8];
        let gamma = 0.7;
        let be = CpuBackend::new();
        let circuit = feature_map_circuit(&x, &AnsatzConfig::new(1, 1, gamma));
        let (psi, _) = crate::sim::MpsSimulator::new(&be).simulate(&circuit);
        let h = encoding_hamiltonian(&x, gamma, 1);
        let dense = h.to_dense();
        let sv = psi.to_statevector();
        let mut hv = vec![Complex64::ZERO; 8];
        qk_tensor::matrix::matvec(8, 8, dense.data(), &sv, &mut hv);
        let expect: Complex64 = sv
            .iter()
            .zip(&hv)
            .map(|(a, b)| a.conj() * *b)
            .fold(Complex64::ZERO, |acc, z| acc + z);
        let got = h.expectation_real(&psi);
        assert!((got - expect.re).abs() < 1e-9, "{got} vs {}", expect.re);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn pauli_string_rejects_duplicates() {
        let term = PauliString::new(1.0, vec![(0, Pauli::X), (0, Pauli::Z)]);
        let _ = Mpo::from_pauli_string(2, &term);
    }
}
