//! The Matrix Product State representation and its update rules.
//!
//! An [`Mps`] on `m` qubits is a chain of rank-3 site tensors with shape
//! `(chi_left, 2, chi_right)`; boundary bonds have dimension 1. The state
//! is kept in *mixed canonical form* around an orthogonality center: sites
//! left of the center are left-orthogonal, sites right of it are
//! right-orthogonal. Canonicalization (QR/LQ sweeps) before each SVD
//! truncation makes the truncation optimal, which is what justifies the
//! paper's eq. (8) error accounting.

use crate::zipper::{self, ZipperWorkspace};
use qk_tensor::backend::{CpuBackend, ExecutionBackend};
use qk_tensor::complex::Complex64;
use qk_tensor::contract::contract_with;
use qk_tensor::qr::{lq, qr};
use qk_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread workspace backing [`Mps::inner_with`]: every caller
    /// that does not thread an explicit [`ZipperWorkspace`] still gets
    /// the allocation-free kernel, with buffers reused across calls on
    /// the same thread.
    static INNER_WS: RefCell<ZipperWorkspace> = RefCell::new(ZipperWorkspace::new());
}

/// Truncation policy applied after every two-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncationConfig {
    /// Discard the smallest singular values whose cumulative squared sum
    /// stays at or below this fraction of the total weight. The paper uses
    /// `1e-16`, i.e. 64-bit machine precision: "virtually noiseless".
    pub cutoff: f64,
    /// Optional hard cap on the bond dimension (`None` = unbounded).
    pub max_bond: Option<usize>,
}

impl Default for TruncationConfig {
    fn default() -> Self {
        TruncationConfig {
            cutoff: 1e-16,
            max_bond: None,
        }
    }
}

impl TruncationConfig {
    /// The paper's configuration: cutoff `1e-16`, no bond cap.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A lossier configuration for ablation studies.
    pub fn with_cutoff(cutoff: f64) -> Self {
        TruncationConfig {
            cutoff,
            max_bond: None,
        }
    }

    /// Cutoff plus a hard bond cap.
    pub fn capped(cutoff: f64, max_bond: usize) -> Self {
        TruncationConfig {
            cutoff,
            max_bond: Some(max_bond),
        }
    }
}

/// Cumulative record of truncation activity (the eq. 8 error budget).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TruncationStats {
    /// Number of SVD truncations performed.
    pub truncations: usize,
    /// Total discarded squared singular-value weight, summed over
    /// truncations. The fidelity against the ideal state is bounded below
    /// by `prod(1 - w_i) >= 1 - total_discarded_weight`.
    pub total_discarded_weight: f64,
    /// Largest single-truncation discarded weight.
    pub max_discarded_weight: f64,
    /// Number of singular values discarded in total.
    pub values_discarded: usize,
}

impl TruncationStats {
    /// Lower bound on the squared overlap with the untruncated state.
    pub fn fidelity_lower_bound(&self) -> f64 {
        (1.0 - self.total_discarded_weight).max(0.0)
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &TruncationStats) {
        self.truncations += other.truncations;
        self.total_discarded_weight += other.total_discarded_weight;
        self.max_discarded_weight = self.max_discarded_weight.max(other.max_discarded_weight);
        self.values_discarded += other.values_discarded;
    }
}

/// A quantum state in Matrix Product State form.
#[derive(Clone)]
pub struct Mps {
    /// Site tensors, each `(chi_l, 2, chi_r)`.
    sites: Vec<Tensor>,
    /// Orthogonality center index.
    center: usize,
    /// Accumulated truncation record.
    stats: TruncationStats,
}

impl Mps {
    /// Product state `|+>^m`: every site is `(1, 2, 1)` with amplitude
    /// `1/sqrt(2)` for both physical values. This is the ansatz input.
    pub fn plus_state(num_qubits: usize) -> Self {
        assert!(num_qubits >= 1, "need at least one qubit");
        let amp = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        let site = Tensor::from_data(&[1, 2, 1], vec![amp, amp]);
        Mps {
            sites: vec![site; num_qubits],
            center: 0,
            stats: TruncationStats::default(),
        }
    }

    /// Computational basis state `|b_0 b_1 ... b_{m-1}>`.
    pub fn basis_state(bits: &[u8]) -> Self {
        assert!(!bits.is_empty(), "need at least one qubit");
        let sites = bits
            .iter()
            .map(|&b| {
                assert!(b <= 1, "bits must be 0 or 1");
                let mut data = vec![Complex64::ZERO; 2];
                data[b as usize] = Complex64::ONE;
                Tensor::from_data(&[1, 2, 1], data)
            })
            .collect();
        Mps {
            sites,
            center: 0,
            stats: TruncationStats::default(),
        }
    }

    /// Builds an MPS from explicit site tensors and establishes canonical
    /// form with a full QR sweep (center ends at site 0).
    ///
    /// Each tensor must have shape `(chi_l, 2, chi_r)` with matching
    /// interior bonds and trivial boundary bonds. The input need not be
    /// normalized or canonical; use [`Mps::normalize`] afterwards if a
    /// unit-norm state is required.
    pub fn from_sites(sites: Vec<Tensor>) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        for (q, site) in sites.iter().enumerate() {
            assert_eq!(site.rank(), 3, "site {q} must be rank 3");
            assert_eq!(site.shape()[1], 2, "site {q} physical dimension must be 2");
        }
        assert_eq!(sites[0].shape()[0], 1, "left boundary bond must be 1");
        assert_eq!(
            sites[sites.len() - 1].shape()[2],
            1,
            "right boundary bond must be 1"
        );
        for q in 0..sites.len() - 1 {
            assert_eq!(
                sites[q].shape()[2],
                sites[q + 1].shape()[0],
                "bond mismatch between sites {q} and {}",
                q + 1
            );
        }
        let mut mps = Mps {
            sites,
            center: 0,
            stats: TruncationStats::default(),
        };
        // Left-to-right QR sweep: left-orthogonalizes every site, so the
        // mixed-canonical invariant holds with the center at the last site.
        for _ in 0..mps.sites.len() - 1 {
            mps.shift_center_right();
        }
        mps.canonicalize_to(0);
        mps
    }

    /// Mutable access to the site tensors for in-crate algorithms that
    /// restore the canonical invariant themselves (compression, MPO
    /// application).
    pub(crate) fn sites_mut(&mut self) -> &mut Vec<Tensor> {
        &mut self.sites
    }

    /// Sets the orthogonality-center bookkeeping. The caller must have
    /// re-established the canonical structure around `center`.
    pub(crate) fn set_center(&mut self, center: usize) {
        debug_assert!(center < self.sites.len());
        self.center = center;
    }

    /// Merges an externally accounted truncation record (compression and
    /// MPO application report their discards through this).
    pub(crate) fn merge_stats(&mut self, other: &TruncationStats) {
        self.stats.merge(other);
    }

    /// Number of qubits (sites).
    pub fn num_qubits(&self) -> usize {
        self.sites.len()
    }

    /// The site tensors.
    pub fn sites(&self) -> &[Tensor] {
        &self.sites
    }

    /// Current orthogonality center.
    pub fn center(&self) -> usize {
        self.center
    }

    /// Truncation record accumulated over this state's history.
    pub fn stats(&self) -> &TruncationStats {
        &self.stats
    }

    /// Virtual bond dimensions: `m - 1` interior bonds.
    pub fn bond_dims(&self) -> Vec<usize> {
        self.sites[..self.sites.len() - 1]
            .iter()
            .map(|s| s.shape()[2])
            .collect()
    }

    /// Largest virtual bond dimension (chi), 1 for product states.
    /// Allocation-free (unlike [`Mps::bond_dims`]): the inner-product
    /// hot path reads it per call.
    pub fn max_bond(&self) -> usize {
        // The last site's right bond is always 1, so including it does
        // not change the maximum.
        self.sites.iter().map(|s| s.shape()[2]).max().unwrap_or(1)
    }

    /// Total memory held by the site tensors, in bytes (Table I's
    /// "memory per MPS" column).
    pub fn memory_bytes(&self) -> usize {
        self.sites.iter().map(Tensor::memory_bytes).sum()
    }

    /// Norm of the state; 1 after unitary evolution with renormalized
    /// truncation.
    pub fn norm(&self) -> f64 {
        // Mixed canonical form concentrates the norm at the center tensor.
        self.sites[self.center].frobenius_norm()
    }

    /// Rescales the state to unit norm.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.sites[self.center].scale_real_inplace(1.0 / n);
        }
    }

    /// Moves the orthogonality center to `target` with QR/LQ sweeps.
    pub fn canonicalize_to(&mut self, target: usize) {
        assert!(target < self.sites.len(), "target site out of range");
        while self.center < target {
            self.shift_center_right();
        }
        while self.center > target {
            self.shift_center_left();
        }
    }

    fn shift_center_right(&mut self) {
        let q = self.center;
        let site = &self.sites[q];
        let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
        // (chi_l * 2, chi_r) -> QR.
        let f = qr(chi_l * 2, chi_r, site.data());
        self.sites[q] = Tensor::from_data(&[chi_l, 2, f.k], f.q);
        // Absorb R into the next site: next' = R * next.
        let next = &self.sites[q + 1];
        let (n_l, n_r) = (next.shape()[0], next.shape()[2]);
        debug_assert_eq!(n_l, chi_r);
        let mut merged = vec![Complex64::ZERO; f.k * 2 * n_r];
        qk_tensor::matrix::gemm_serial(f.k, chi_r, 2 * n_r, &f.r, next.data(), &mut merged);
        self.sites[q + 1] = Tensor::from_data(&[f.k, 2, n_r], merged);
        self.center = q + 1;
    }

    fn shift_center_left(&mut self) {
        let q = self.center;
        let site = &self.sites[q];
        let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
        // (chi_l, 2 * chi_r) -> LQ.
        let f = lq(chi_l, 2 * chi_r, site.data());
        self.sites[q] = Tensor::from_data(&[f.k, 2, chi_r], f.q);
        // Absorb L into the previous site: prev' = prev * L.
        let prev = &self.sites[q - 1];
        let (p_l, p_r) = (prev.shape()[0], prev.shape()[2]);
        debug_assert_eq!(p_r, chi_l);
        let mut merged = vec![Complex64::ZERO; p_l * 2 * f.k];
        qk_tensor::matrix::gemm_serial(p_l * 2, chi_l, f.k, prev.data(), &f.l, &mut merged);
        self.sites[q - 1] = Tensor::from_data(&[p_l, 2, f.k], merged);
        self.center = q - 1;
    }

    /// Applies a single-qubit gate to site `q` (Fig. 1a of the paper).
    ///
    /// Cost O(chi^2); canonical structure is preserved because the gate is
    /// unitary on the physical leg.
    pub fn apply_gate1(&mut self, gate: &Tensor, q: usize) {
        assert!(q < self.sites.len(), "site {q} out of range");
        assert_eq!(gate.shape(), &[2, 2], "single-qubit gate must be 2x2");
        let site = &self.sites[q];
        let (chi_l, chi_r) = (site.shape()[0], site.shape()[2]);
        let g = gate.data();
        let s = site.data();
        let mut out = vec![Complex64::ZERO; s.len()];
        for l in 0..chi_l {
            for r in 0..chi_r {
                let a0 = s[(l * 2) * chi_r + r];
                let a1 = s[(l * 2 + 1) * chi_r + r];
                out[(l * 2) * chi_r + r] = g[0] * a0 + g[1] * a1;
                out[(l * 2 + 1) * chi_r + r] = g[2] * a0 + g[3] * a1;
            }
        }
        self.sites[q] = Tensor::from_data(&[chi_l, 2, chi_r], out);
    }

    /// Applies a two-qubit gate to adjacent sites `(q, q+1)` with SVD
    /// truncation (Fig. 1b): contract the theta tensor, apply the gate,
    /// SVD, truncate, absorb singular values rightward.
    ///
    /// The orthogonality center is moved to `q` first so that the
    /// truncation is optimal. After the call the center is at `q + 1`.
    pub fn apply_gate2(
        &mut self,
        backend: &dyn ExecutionBackend,
        gate: &Tensor,
        q: usize,
        config: &TruncationConfig,
    ) {
        assert_eq!(gate.shape(), &[4, 4], "two-qubit gate must be 4x4");
        self.apply_gate2_reshaped(backend, &gate.clone().reshape(&[2, 2, 2, 2]), q, config);
    }

    /// [`Mps::apply_gate2`] for a gate already shaped `[2, 2, 2, 2]`
    /// (out1, out2, in1, in2). The simulator reshapes its freshly built
    /// owned matrix once per application and calls this directly, so no
    /// `gate.clone()` happens on the gate-application hot path.
    pub fn apply_gate2_reshaped(
        &mut self,
        backend: &dyn ExecutionBackend,
        gate4: &Tensor,
        q: usize,
        config: &TruncationConfig,
    ) {
        assert!(q + 1 < self.sites.len(), "gate site {q} out of range");
        assert_eq!(
            gate4.shape(),
            &[2, 2, 2, 2],
            "two-qubit gate must be reshaped to [2, 2, 2, 2]"
        );
        self.canonicalize_to(q);

        let left = &self.sites[q];
        let right = &self.sites[q + 1];
        let (chi_l, chi_r) = (left.shape()[0], right.shape()[2]);

        // theta[(chi_l, p1, p2, chi_r)] = sum_a left[chi_l, p1, a] right[a, p2, chi_r]
        let theta = contract_with(backend, left, &[2], right, &[0]);
        // Contract gate's input legs with theta's physical legs:
        // result[(out1, out2), (chi_l, chi_r)] -> permute to (chi_l, out1, out2, chi_r).
        let applied = contract_with(backend, gate4, &[2, 3], &theta, &[1, 2]);
        let applied = applied.permute(&[2, 0, 1, 3]);

        // SVD across the bond: (chi_l * 2, 2 * chi_r).
        let matrix = applied.reshape(&[chi_l * 2, 2 * chi_r]);
        let f = backend.svd(chi_l * 2, 2 * chi_r, matrix.data());
        let (kept, discarded_weight, discarded_count) = decide_rank(&f.s, config);

        // Update stats.
        self.stats.truncations += 1;
        self.stats.total_discarded_weight += discarded_weight;
        self.stats.max_discarded_weight = self.stats.max_discarded_weight.max(discarded_weight);
        self.stats.values_discarded += discarded_count;

        // Renormalize the kept spectrum so the state stays unit norm
        // (eq. 8 then measures fidelity against the ideal state).
        let total_weight: f64 = f.s.iter().map(|s| s * s).sum();
        let kept_weight = total_weight - discarded_weight;
        let renorm = if kept_weight > 0.0 {
            (total_weight / kept_weight).sqrt()
        } else {
            1.0
        };

        // New left site: U (chi_l * 2, kept) -> (chi_l, 2, kept); each
        // output row is the kept prefix of the corresponding U row.
        let mut u = vec![Complex64::ZERO; chi_l * 2 * kept];
        for (dst, src) in u.chunks_exact_mut(kept).zip(f.u.chunks_exact(f.k)) {
            dst.copy_from_slice(&src[..kept]);
        }
        self.sites[q] = Tensor::from_data(&[chi_l, 2, kept], u);

        // New right site: diag(s) * Vh (kept, 2 * chi_r) -> (kept, 2, chi_r);
        // row r of Vh scaled by the renormalized singular value (the zip
        // stops after the `kept` output rows).
        let mut sv = vec![Complex64::ZERO; kept * 2 * chi_r];
        for ((dst, src), &s) in sv
            .chunks_exact_mut(2 * chi_r)
            .zip(f.vh.chunks_exact(2 * chi_r))
            .zip(&f.s)
        {
            let w = s * renorm;
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = v * w;
            }
        }
        self.sites[q + 1] = Tensor::from_data(&[kept, 2, chi_r], sv);
        self.center = q + 1;
    }

    /// Inner product `<self|other>` via the zipper contraction of Fig. 2;
    /// cost `O(m chi^3)`.
    pub fn inner(&self, other: &Mps) -> Complex64 {
        let backend = CpuBackend::new();
        self.inner_with(&backend, other)
    }

    /// Inner product with GEMM dispatched through a backend.
    ///
    /// Runs the zero-allocation zipper kernel on a thread-local
    /// [`ZipperWorkspace`] — bitwise identical to [`Mps::inner_into`]
    /// with any explicitly held workspace. Every inner-product path in
    /// the workspace (Gram assembly, tiled engine, serving, distributed
    /// strategies) routes through this one kernel, which is what keeps
    /// the tiled engine's bitwise-reproducibility guarantees intact.
    pub fn inner_with(&self, backend: &dyn ExecutionBackend, other: &Mps) -> Complex64 {
        INNER_WS.with(|ws| self.inner_into(&mut ws.borrow_mut(), backend, other))
    }

    /// Inner product into a caller-held workspace: the batched hot path.
    ///
    /// Walks the site slices directly — no `Tensor` permute, no
    /// conjugated copies, no per-site environment allocation; after the
    /// workspace has warmed up to the operands' bond dimension, a call
    /// performs zero heap allocation. Workers that evaluate many inner
    /// products (a Gram tile row, a serving kernel row) hold one
    /// workspace and amortize its buffers across the whole batch.
    pub fn inner_into(
        &self,
        ws: &mut ZipperWorkspace,
        backend: &dyn ExecutionBackend,
        other: &Mps,
    ) -> Complex64 {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "inner product requires equal qubit counts"
        );
        zipper::zip_inner(ws, &self.sites, &other.sites, backend)
    }

    /// Reference zipper via generic tensor contraction — the pre-PR-5
    /// implementation, kept verbatim for equivalence tests and as the
    /// `kernel_hotpath` baseline. Allocates a conjugated copy of every
    /// site tensor and fresh environments per site; agrees with
    /// [`Mps::inner_into`] to ~1e-12 (floating-point operation order in
    /// the GEMM legitimately differs).
    pub fn inner_via_contract(&self, backend: &dyn ExecutionBackend, other: &Mps) -> Complex64 {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "inner product requires equal qubit counts"
        );
        // E[(l_a, l_b)] starts as the trivial 1x1 boundary.
        let mut env = Tensor::from_data(&[1, 1], vec![Complex64::ONE]);
        for (a, b) in self.sites.iter().zip(&other.sites) {
            // T[(l_a, p, r_b)] = sum_{l_b} E[l_a, l_b] B[l_b, p, r_b]
            let t = contract_with(backend, &env, &[1], b, &[0]);
            // E'[(r_a, r_b)] = sum_{l_a, p} conj(A[l_a, p, r_a]) T[l_a, p, r_b]
            env = contract_with(backend, &a.conj(), &[0, 1], &t, &[0, 1]);
        }
        env.data()[0]
    }

    /// Kernel entry `|<self|other>|^2` (eq. 1).
    pub fn overlap_sqr(&self, other: &Mps) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Contracts the full chain into a dense statevector (index convention:
    /// site 0 is the most significant bit). Only sensible for small `m`.
    pub fn to_statevector(&self) -> Vec<Complex64> {
        assert!(
            self.num_qubits() <= 26,
            "refusing to densify an MPS beyond 26 qubits"
        );
        let mut acc = Tensor::from_data(&[1, 1], vec![Complex64::ONE]); // (basis, chi)
        for site in &self.sites {
            // acc[(b, chi_l)] * site[(chi_l, p, chi_r)] -> (b, p, chi_r)
            let next = qk_tensor::contract(&acc, &[1], site, &[0]);
            let (b, p, chi_r) = (next.shape()[0], next.shape()[1], next.shape()[2]);
            acc = next.reshape(&[b * p, chi_r]);
        }
        acc.into_data()
    }

    /// Serializes the MPS to a flat byte buffer (used by the round-robin
    /// distribution strategy to ship states between processes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.sites.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.center as u64).to_le_bytes());
        for site in &self.sites {
            let (l, r) = (site.shape()[0] as u64, site.shape()[2] as u64);
            out.extend_from_slice(&l.to_le_bytes());
            out.extend_from_slice(&r.to_le_bytes());
            for z in site.data() {
                out.extend_from_slice(&z.re.to_le_bytes());
                out.extend_from_slice(&z.im.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes an MPS from [`Mps::to_bytes`] output.
    ///
    /// # Panics
    /// Panics on malformed input; use [`Mps::try_from_bytes`] to handle
    /// untrusted buffers.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self::try_from_bytes(bytes).unwrap_or_else(|e| panic!("corrupt MPS bytes: {e}"))
    }

    /// Fallible deserialization of [`Mps::to_bytes`] output.
    ///
    /// Rejects truncated buffers, bond dimensions whose tensor sizes
    /// overflow or exceed the remaining input (so corrupt headers cannot
    /// trigger huge allocations), out-of-range centers, mismatched
    /// interior bonds, non-trivial boundary bonds, and trailing bytes.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, MpsDecodeError> {
        let mut pos = 0usize;
        let read_u64 = |pos: &mut usize| -> Result<u64, MpsDecodeError> {
            let end = pos
                .checked_add(8)
                .filter(|&e| e <= bytes.len())
                .ok_or(MpsDecodeError::Truncated { offset: *pos })?;
            let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
            *pos = end;
            Ok(v)
        };
        let n_sites = read_u64(&mut pos)? as usize;
        let center = read_u64(&mut pos)? as usize;
        if n_sites == 0 {
            return Err(MpsDecodeError::NoSites);
        }
        if center >= n_sites {
            return Err(MpsDecodeError::BadCenter { center, n_sites });
        }
        let mut sites = Vec::with_capacity(n_sites.min(bytes.len() / 16));
        for q in 0..n_sites {
            let l = read_u64(&mut pos)? as usize;
            let r = read_u64(&mut pos)? as usize;
            // Bound the allocation by what the buffer can actually hold:
            // each amplitude is 16 bytes on the wire.
            let len = l
                .checked_mul(2)
                .and_then(|x| x.checked_mul(r))
                .filter(|&x| x <= (bytes.len() - pos) / 16)
                .ok_or(MpsDecodeError::OversizedSite {
                    site: q,
                    offset: pos,
                })?;
            if l == 0 || r == 0 {
                return Err(MpsDecodeError::OversizedSite {
                    site: q,
                    offset: pos,
                });
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                let re = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
                pos += 8;
                let im = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
                pos += 8;
                data.push(Complex64::new(re, im));
            }
            sites.push(Tensor::from_data(&[l, 2, r], data));
        }
        if sites[0].shape()[0] != 1 || sites[n_sites - 1].shape()[2] != 1 {
            return Err(MpsDecodeError::BadBoundary);
        }
        for q in 0..n_sites - 1 {
            if sites[q].shape()[2] != sites[q + 1].shape()[0] {
                return Err(MpsDecodeError::BondMismatch { site: q });
            }
        }
        if pos != bytes.len() {
            return Err(MpsDecodeError::TrailingBytes {
                consumed: pos,
                len: bytes.len(),
            });
        }
        Ok(Mps {
            sites,
            center,
            stats: TruncationStats::default(),
        })
    }
}

/// Why a byte buffer failed to decode as an [`Mps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpsDecodeError {
    /// The buffer ended inside a header or amplitude at this offset.
    Truncated {
        /// Byte offset where more input was required.
        offset: usize,
    },
    /// The header declares zero sites.
    NoSites,
    /// The orthogonality center is outside the site range.
    BadCenter {
        /// Declared center.
        center: usize,
        /// Declared site count.
        n_sites: usize,
    },
    /// A site header declares a tensor larger than the remaining input
    /// (or with a zero/overflowing bond dimension).
    OversizedSite {
        /// Index of the offending site.
        site: usize,
        /// Byte offset of its amplitude data.
        offset: usize,
    },
    /// A boundary bond dimension is not 1.
    BadBoundary,
    /// Adjacent sites disagree on their shared bond dimension.
    BondMismatch {
        /// Left site of the mismatched bond.
        site: usize,
    },
    /// Input continues past the end of the encoded state.
    TrailingBytes {
        /// Bytes consumed by the decoder.
        consumed: usize,
        /// Total input length.
        len: usize,
    },
}

impl std::fmt::Display for MpsDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsDecodeError::Truncated { offset } => {
                write!(f, "input truncated at byte {offset}")
            }
            MpsDecodeError::NoSites => write!(f, "zero sites declared"),
            MpsDecodeError::BadCenter { center, n_sites } => {
                write!(f, "bad center {center} for {n_sites} sites")
            }
            MpsDecodeError::OversizedSite { site, offset } => {
                write!(
                    f,
                    "site {site} at byte {offset} larger than remaining input"
                )
            }
            MpsDecodeError::BadBoundary => write!(f, "boundary bond dimension is not 1"),
            MpsDecodeError::BondMismatch { site } => {
                write!(f, "bond mismatch between sites {site} and {}", site + 1)
            }
            MpsDecodeError::TrailingBytes { consumed, len } => {
                write!(f, "{} trailing bytes after site data", len - consumed)
            }
        }
    }
}

impl std::error::Error for MpsDecodeError {}

/// Decides how many singular values to keep under the truncation policy.
///
/// Returns `(kept, discarded_weight, discarded_count)`. At least one value
/// is always kept. The cutoff is relative to the total squared weight.
pub(crate) fn decide_rank(s: &[f64], config: &TruncationConfig) -> (usize, f64, usize) {
    let total: f64 = s.iter().map(|x| x * x).sum();
    if total == 0.0 {
        return (1, 0.0, s.len().saturating_sub(1));
    }
    let budget = config.cutoff * total;
    // Walk from the smallest value, accumulating discarded weight.
    let mut discarded = 0.0f64;
    let mut kept = s.len();
    while kept > 1 {
        let w = s[kept - 1] * s[kept - 1];
        if discarded + w > budget {
            break;
        }
        discarded += w;
        kept -= 1;
    }
    // Apply the hard cap afterwards (cap discards may exceed the cutoff;
    // that is the caller's explicit choice and still recorded).
    if let Some(cap) = config.max_bond {
        while kept > cap.max(1) {
            discarded += s[kept - 1] * s[kept - 1];
            kept -= 1;
        }
    }
    (kept, discarded, s.len() - kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_tensor::backend::CpuBackend;
    use qk_tensor::complex::{approx_eq, c64};

    fn backend() -> CpuBackend {
        CpuBackend::new()
    }

    #[test]
    fn plus_state_properties() {
        let mps = Mps::plus_state(5);
        assert_eq!(mps.num_qubits(), 5);
        assert_eq!(mps.max_bond(), 1);
        assert!((mps.norm() - 1.0).abs() < 1e-12);
        assert_eq!(mps.bond_dims(), vec![1, 1, 1, 1]);
        let sv = mps.to_statevector();
        let amp = 1.0 / 32f64.sqrt();
        for z in sv {
            assert!(approx_eq(z, c64(amp, 0.0), 1e-12));
        }
    }

    #[test]
    fn basis_state_statevector() {
        let mps = Mps::basis_state(&[1, 0, 1]);
        let sv = mps.to_statevector();
        for (idx, z) in sv.iter().enumerate() {
            let expect = if idx == 0b101 {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            assert!(approx_eq(*z, expect, 1e-12), "index {idx}");
        }
    }

    #[test]
    fn inner_of_identical_states_is_one() {
        let mps = Mps::plus_state(6);
        assert!(approx_eq(mps.inner(&mps), Complex64::ONE, 1e-12));
    }

    #[test]
    fn inner_of_orthogonal_basis_states_is_zero() {
        let a = Mps::basis_state(&[0, 0, 1]);
        let b = Mps::basis_state(&[1, 0, 0]);
        assert!(approx_eq(a.inner(&b), Complex64::ZERO, 1e-12));
    }

    #[test]
    fn inner_plus_with_basis() {
        // <+++|000> = (1/sqrt(2))^3.
        let plus = Mps::plus_state(3);
        let zero = Mps::basis_state(&[0, 0, 0]);
        let expect = (0.5f64).sqrt().powi(3);
        assert!(approx_eq(plus.inner(&zero), c64(expect, 0.0), 1e-12));
    }

    #[test]
    fn gate1_hadamard_turns_plus_into_zero() {
        let mut mps = Mps::plus_state(4);
        let h = qk_circuit::Gate::H.matrix();
        for q in 0..4 {
            mps.apply_gate1(&h, q);
        }
        let zero = Mps::basis_state(&[0, 0, 0, 0]);
        assert!((mps.overlap_sqr(&zero) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate2_grows_bond_dimension() {
        let be = backend();
        let cfg = TruncationConfig::default();
        // Note |++> is an XX eigenstate, so start from |000> instead.
        let mut mps = Mps::basis_state(&[0, 0, 0]);
        let g = qk_circuit::Gate::Rxx(0.7).matrix();
        mps.apply_gate2(&be, &g, 0, &cfg);
        assert_eq!(mps.max_bond(), 2);
        assert!((mps.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate2_identity_keeps_bond_trivial() {
        // RXX(0) = I: SVD sees a product operator, bond stays 1 after
        // truncation of zero singular values.
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(3);
        let g = qk_circuit::Gate::Rxx(0.0).matrix();
        mps.apply_gate2(&be, &g, 1, &cfg);
        assert_eq!(mps.max_bond(), 1);
    }

    #[test]
    fn canonicalization_preserves_state() {
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::basis_state(&[0, 1, 0, 1, 0]);
        let g = qk_circuit::Gate::Rxx(0.9).matrix();
        mps.apply_gate2(&be, &g, 1, &cfg);
        mps.apply_gate2(&be, &g, 3, &cfg);
        let before = mps.to_statevector();
        mps.canonicalize_to(0);
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
        mps.canonicalize_to(4);
        let after2 = mps.to_statevector();
        for (x, y) in before.iter().zip(&after2) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    fn norm_at_any_center() {
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::basis_state(&[0, 0, 1, 1]);
        let g = qk_circuit::Gate::Rxx(1.2).matrix();
        mps.apply_gate2(&be, &g, 0, &cfg);
        mps.apply_gate2(&be, &g, 2, &cfg);
        for q in 0..4 {
            mps.canonicalize_to(q);
            assert!((mps.norm() - 1.0).abs() < 1e-10, "norm at center {q}");
        }
    }

    #[test]
    fn truncation_cap_limits_bond() {
        let be = backend();
        let cfg = TruncationConfig::capped(1e-16, 2);
        let mut mps = Mps::plus_state(4);
        let g = qk_circuit::Gate::Rxx(0.8).matrix();
        // Build entanglement that would exceed chi = 2 without the cap.
        for _ in 0..3 {
            for q in 0..3 {
                mps.apply_gate2(&be, &g, q, &cfg);
            }
        }
        assert!(mps.max_bond() <= 2);
        assert!(mps.stats().total_discarded_weight >= 0.0);
        // Norm stays 1 thanks to renormalization.
        assert!((mps.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn truncation_stats_track_discard() {
        let be = backend();
        let lossy = TruncationConfig::capped(1e-16, 1);
        let mut mps = Mps::basis_state(&[0, 0]);
        let g = qk_circuit::Gate::Rxx(std::f64::consts::FRAC_PI_2).matrix();
        // RXX(pi/2)|00> = (|00> - i|11>)/sqrt(2): Schmidt spectrum
        // (0.5, 0.5); capping at bond 1 discards weight 0.5.
        mps.apply_gate2(&be, &g, 0, &lossy);
        assert_eq!(mps.max_bond(), 1);
        assert!((mps.stats().total_discarded_weight - 0.5).abs() < 1e-10);
        assert!((mps.stats().fidelity_lower_bound() - 0.5).abs() < 1e-10);
        assert_eq!(mps.stats().truncations, 1);
        assert_eq!(mps.stats().values_discarded, 1);
    }

    #[test]
    fn decide_rank_keeps_all_without_cutoff() {
        let s = vec![0.9, 0.3, 0.1];
        let cfg = TruncationConfig {
            cutoff: 0.0,
            max_bond: None,
        };
        let (kept, w, n) = decide_rank(&s, &cfg);
        assert_eq!(kept, 3);
        assert_eq!(w, 0.0);
        assert_eq!(n, 0);
    }

    #[test]
    fn decide_rank_discards_tiny_tail() {
        let s = vec![1.0, 1e-9, 1e-10];
        let cfg = TruncationConfig::with_cutoff(1e-16);
        let (kept, w, n) = decide_rank(&s, &cfg);
        assert_eq!(kept, 1);
        assert!(w < 1e-17);
        assert_eq!(n, 2);
    }

    #[test]
    fn decide_rank_respects_budget_boundary() {
        // Weights: 1.0, 0.01, 0.01 -> total 1.0002. Cutoff 1e-4 allows
        // discarding one 1e-4-weight value but not both.
        let s = vec![1.0, 0.01, 0.01];
        let cfg = TruncationConfig::with_cutoff(1.0e-4);
        let (kept, _, _) = decide_rank(&s, &cfg);
        assert_eq!(kept, 2);
    }

    #[test]
    fn decide_rank_always_keeps_one() {
        let s = vec![0.0, 0.0];
        let (kept, _, _) = decide_rank(&s, &TruncationConfig::default());
        assert_eq!(kept, 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(4);
        let g = qk_circuit::Gate::Rxx(0.6).matrix();
        mps.apply_gate2(&be, &g, 1, &cfg);
        let bytes = mps.to_bytes();
        let back = Mps::from_bytes(&bytes);
        assert_eq!(back.num_qubits(), 4);
        assert_eq!(back.center(), mps.center());
        assert!((mps.overlap_sqr(&back) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_from_bytes_rejects_mangled_buffers() {
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::plus_state(4);
        let g = qk_circuit::Gate::Rxx(0.6).matrix();
        mps.apply_gate2(&be, &g, 1, &cfg);
        let bytes = mps.to_bytes();

        // Every proper prefix is rejected as truncated/oversized, never
        // accepted and never panicking.
        for cut in 0..bytes.len() {
            let err = Mps::try_from_bytes(&bytes[..cut])
                .err()
                .expect("prefix accepted");
            assert!(
                matches!(
                    err,
                    MpsDecodeError::Truncated { .. } | MpsDecodeError::OversizedSite { .. }
                ),
                "prefix {cut}: {err}"
            );
        }

        // Trailing junk.
        let mut long = bytes.clone();
        long.push(0xAB);
        assert!(matches!(
            Mps::try_from_bytes(&long),
            Err(MpsDecodeError::Truncated { .. } | MpsDecodeError::TrailingBytes { .. })
        ));

        // Corrupt center.
        let mut bad_center = bytes.clone();
        bad_center[8..16].copy_from_slice(&99u64.to_le_bytes());
        assert_eq!(
            Mps::try_from_bytes(&bad_center).err(),
            Some(MpsDecodeError::BadCenter {
                center: 99,
                n_sites: 4
            })
        );

        // Huge bond dimension in the first site header must not allocate.
        let mut huge = bytes.clone();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Mps::try_from_bytes(&huge),
            Err(MpsDecodeError::OversizedSite { site: 0, .. })
        ));

        // Zero sites.
        let mut empty = bytes.clone();
        empty[0..8].copy_from_slice(&0u64.to_le_bytes());
        let err = Mps::try_from_bytes(&empty)
            .err()
            .expect("zero sites accepted");
        assert!(matches!(
            err,
            MpsDecodeError::NoSites | MpsDecodeError::BadCenter { .. }
        ));

        // The pristine buffer still decodes.
        assert!(Mps::try_from_bytes(&bytes).is_ok());
    }

    #[test]
    #[should_panic(expected = "corrupt MPS bytes")]
    fn from_bytes_panics_on_truncation() {
        let bytes = Mps::plus_state(3).to_bytes();
        Mps::from_bytes(&bytes[..bytes.len() - 1]);
    }

    #[test]
    fn memory_bytes_grows_with_entanglement() {
        let be = backend();
        let cfg = TruncationConfig::default();
        let mut mps = Mps::basis_state(&[0; 6]);
        let base = mps.memory_bytes();
        let g = qk_circuit::Gate::Rxx(0.8).matrix();
        for q in 0..5 {
            mps.apply_gate2(&be, &g, q, &cfg);
        }
        assert!(mps.memory_bytes() > base);
    }
}
