//! Circuit simulation driver over the MPS representation.
//!
//! [`MpsSimulator`] walks a (routed) circuit, applying gates via the MPS
//! update rules, and records the resource telemetry the paper's evaluation
//! is built on: wall-clock time, per-gate memory/bond traces (Fig. 6),
//! peak bond dimension (Table I), and the truncation-error budget (eq. 8).

use crate::mps::{Mps, TruncationConfig, TruncationStats};
use qk_circuit::routing::route_for_mps;
use qk_circuit::Circuit;
use qk_tensor::backend::ExecutionBackend;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One sample of the memory-evolution trace (Fig. 6's x/y axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Index of the gate just applied (0-based).
    pub gate_index: usize,
    /// Percentage of gates applied so far, in `[0, 100]`.
    pub progress_percent: f64,
    /// MPS memory footprint after this gate, in bytes.
    pub memory_bytes: usize,
    /// Largest virtual bond dimension after this gate.
    pub max_bond: usize,
}

/// Telemetry of one circuit simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimRecord {
    /// Gates applied (after routing).
    pub gates_applied: usize,
    /// Two-qubit gates applied (after routing; includes SWAPs).
    pub two_qubit_gates: usize,
    /// Wall-clock simulation time.
    pub duration: Duration,
    /// Largest bond dimension ever observed during the run.
    pub peak_bond: usize,
    /// Peak MPS memory during the run, in bytes.
    pub peak_memory_bytes: usize,
    /// Truncation-error budget of the final state.
    pub truncation: TruncationStats,
    /// Optional per-gate memory trace (populated when tracing is enabled).
    pub trace: Vec<TracePoint>,
}

/// MPS circuit simulator bound to an execution backend.
pub struct MpsSimulator<'b> {
    backend: &'b dyn ExecutionBackend,
    truncation: TruncationConfig,
    trace_memory: bool,
}

impl<'b> MpsSimulator<'b> {
    /// Creates a simulator with the paper-default truncation policy.
    pub fn new(backend: &'b dyn ExecutionBackend) -> Self {
        MpsSimulator {
            backend,
            truncation: TruncationConfig::default(),
            trace_memory: false,
        }
    }

    /// Sets the truncation policy.
    pub fn with_truncation(mut self, truncation: TruncationConfig) -> Self {
        self.truncation = truncation;
        self
    }

    /// Enables the per-gate memory trace (Fig. 6). Adds O(gates) overhead.
    pub fn with_memory_trace(mut self, enabled: bool) -> Self {
        self.trace_memory = enabled;
        self
    }

    /// The truncation policy in effect.
    pub fn truncation(&self) -> TruncationConfig {
        self.truncation
    }

    /// Simulates a circuit from `|0>^m` (the ansatz itself begins with a
    /// Hadamard layer, matching the statevector convention).
    ///
    /// The circuit is routed for MPS locality first if needed.
    pub fn simulate(&self, circuit: &Circuit) -> (Mps, SimRecord) {
        let routed;
        let local = if circuit.is_mps_local() {
            circuit
        } else {
            routed = route_for_mps(circuit);
            &routed
        };
        let mps = Mps::basis_state(&vec![0u8; circuit.num_qubits()]);
        self.run(mps, local)
    }

    /// Applies a (local) circuit to an existing state.
    pub fn run(&self, mut mps: Mps, circuit: &Circuit) -> (Mps, SimRecord) {
        assert!(
            circuit.is_mps_local(),
            "circuit must be routed for MPS locality first"
        );
        assert_eq!(
            circuit.num_qubits(),
            mps.num_qubits(),
            "register size mismatch"
        );
        let start = Instant::now();
        let total_gates = circuit.len().max(1);
        let mut record = SimRecord {
            gates_applied: 0,
            two_qubit_gates: 0,
            peak_bond: mps.max_bond(),
            peak_memory_bytes: mps.memory_bytes(),
            ..SimRecord::default()
        };

        for (idx, op) in circuit.ops().iter().enumerate() {
            let matrix = op.gate.matrix();
            match op.qubits.as_slice() {
                [q] => mps.apply_gate1(&matrix, *q),
                [a, b] => {
                    // Orient so the gate acts on (min, min+1). RXX/SWAP are
                    // symmetric; for oriented gates permute the matrix.
                    let (lo, hi) = (*a.min(b), *a.max(b));
                    debug_assert_eq!(hi - lo, 1);
                    // Reshape the owned matrix to the [2, 2, 2, 2] view
                    // once here (free: reshape moves, it never copies)
                    // instead of letting apply_gate2 clone per call.
                    let g4 = if a < b {
                        matrix.reshape(&[2, 2, 2, 2])
                    } else {
                        flip_two_qubit(&matrix).reshape(&[2, 2, 2, 2])
                    };
                    mps.apply_gate2_reshaped(self.backend, &g4, lo, &self.truncation);
                    record.two_qubit_gates += 1;
                }
                _ => unreachable!(),
            }
            record.gates_applied += 1;
            if op.gate.is_two_qubit() || self.trace_memory {
                let mem = mps.memory_bytes();
                let bond = mps.max_bond();
                record.peak_bond = record.peak_bond.max(bond);
                record.peak_memory_bytes = record.peak_memory_bytes.max(mem);
                if self.trace_memory {
                    record.trace.push(TracePoint {
                        gate_index: idx,
                        progress_percent: 100.0 * (idx + 1) as f64 / total_gates as f64,
                        memory_bytes: mem,
                        max_bond: bond,
                    });
                }
            }
        }

        record.duration = start.elapsed();
        record.truncation = *mps.stats();
        (mps, record)
    }
}

/// Reverses the qubit order of a 4x4 two-qubit gate:
/// `G'[(b_o a_o)][(b_i a_i)] = G[(a_o b_o)][(a_i b_i)]`.
pub fn flip_two_qubit(gate: &qk_tensor::Tensor) -> qk_tensor::Tensor {
    assert_eq!(gate.shape(), &[4, 4]);
    let mut out = qk_tensor::Tensor::zeros(&[4, 4]);
    for ao in 0..2 {
        for bo in 0..2 {
            for ai in 0..2 {
                for bi in 0..2 {
                    out.set(
                        &[bo * 2 + ao, bi * 2 + ai],
                        gate.get(&[ao * 2 + bo, ai * 2 + bi]),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
    use qk_circuit::{Circuit, Gate};
    use qk_tensor::backend::CpuBackend;

    #[test]
    fn simulate_counts_gates() {
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be);
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0)
            .push2(Gate::Cx, 0, 1)
            .push2(Gate::Cx, 1, 2);
        let (mps, rec) = sim.simulate(&c);
        assert_eq!(rec.gates_applied, 3);
        assert_eq!(rec.two_qubit_gates, 2);
        assert!((mps.norm() - 1.0).abs() < 1e-10);
        // GHZ state: bond dimension 2.
        assert_eq!(rec.peak_bond, 2);
    }

    #[test]
    fn simulate_routes_nonlocal_circuits() {
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be);
        let mut c = Circuit::new(4);
        c.push1(Gate::H, 0).push2(Gate::Cx, 0, 3);
        let (_, rec) = sim.simulate(&c);
        // 1 H + (2 * 2 SWAPs + CX) = 6 ops after routing.
        assert_eq!(rec.gates_applied, 6);
        assert_eq!(rec.two_qubit_gates, 5);
    }

    #[test]
    fn memory_trace_is_monotone_progress() {
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be).with_memory_trace(true);
        let features = [0.4, 1.3, 0.8, 1.6];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 2, 0.9));
        let (_, rec) = sim.simulate(&c);
        assert_eq!(rec.trace.len(), rec.gates_applied);
        for w in rec.trace.windows(2) {
            assert!(w[1].progress_percent >= w[0].progress_percent);
        }
        assert!(rec.trace.last().unwrap().progress_percent > 99.9);
        assert!(rec.peak_memory_bytes >= rec.trace[0].memory_bytes);
    }

    #[test]
    fn flipped_gate_matches_swap_conjugation() {
        // flip(G) = SWAP G SWAP.
        let g = Gate::Cx.matrix();
        let swap = Gate::Swap.matrix();
        let tmp = qk_tensor::contract(&swap, &[1], &g, &[0]);
        let conj = qk_tensor::contract(&tmp, &[1], &swap, &[0]);
        let flipped = flip_two_qubit(&g);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (conj.get(&[i, j]) - flipped.get(&[i, j])).norm() < 1e-12,
                    "[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn oriented_gate_respects_qubit_order() {
        // CX with control below target (qubits (2, 1)).
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be);
        let mut c = Circuit::new(3);
        c.push1(Gate::X, 2); // |001>
        c.push2(Gate::Cx, 2, 1); // control qubit 2 -> flips qubit 1
        let (mps, _) = sim.simulate(&c);
        let sv = mps.to_statevector();
        let idx = 0b011;
        assert!((sv[idx].norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn truncation_config_is_plumbed() {
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be).with_truncation(TruncationConfig::capped(1e-16, 2));
        let features: Vec<f64> = (0..6).map(|i| 0.2 + 0.25 * i as f64).collect();
        let c = feature_map_circuit(&features, &AnsatzConfig::new(3, 3, 1.0));
        let (mps, rec) = sim.simulate(&c);
        assert!(mps.max_bond() <= 2);
        assert!(rec.peak_bond <= 2);
    }
}
