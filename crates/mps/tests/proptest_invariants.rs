//! Property-based invariants of the MPS engine under random ansatz
//! parameters and random local circuits.

use proptest::prelude::*;
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_circuit::{Circuit, Gate};
use qk_mps::{Mps, MpsSimulator, TruncationConfig};
use qk_statevector::StateVector;
use qk_tensor::backend::CpuBackend;

fn feature_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unitary evolution keeps the MPS normalized.
    #[test]
    fn simulation_preserves_norm(
        features in feature_vec(2..7),
        layers in 1usize..4,
        gamma in 0.05f64..1.5,
    ) {
        let d = 1 + features.len() % 3;
        let cfg = AnsatzConfig::new(layers, d.min(features.len() - 1).max(1), gamma);
        let c = feature_map_circuit(&features, &cfg);
        let be = CpuBackend::new();
        let (mps, _) = MpsSimulator::new(&be).simulate(&c);
        prop_assert!((mps.norm() - 1.0).abs() < 1e-9);
    }

    /// Kernel entries are valid fidelities: within [0, 1], symmetric, and
    /// 1 on the diagonal.
    #[test]
    fn kernel_entries_are_fidelities(
        xa in feature_vec(3..4),
        xb in feature_vec(3..4),
        gamma in 0.1f64..1.2,
    ) {
        let cfg = AnsatzConfig::new(2, 2, gamma);
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be);
        let a = sim.simulate(&feature_map_circuit(&xa, &cfg)).0;
        let b = sim.simulate(&feature_map_circuit(&xb, &cfg)).0;
        let kab = a.overlap_sqr(&b);
        let kba = b.overlap_sqr(&a);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&kab));
        prop_assert!((kab - kba).abs() < 1e-9);
        prop_assert!((a.overlap_sqr(&a) - 1.0).abs() < 1e-9);
    }

    /// The MPS agrees with the exact statevector for random feature maps.
    #[test]
    fn mps_matches_statevector(
        features in feature_vec(2..6),
        layers in 1usize..3,
        gamma in 0.1f64..1.2,
    ) {
        let d = (features.len() - 1).max(1);
        let cfg = AnsatzConfig::new(layers, d, gamma);
        let c = feature_map_circuit(&features, &cfg);
        let be = CpuBackend::new();
        let (mps, _) = MpsSimulator::new(&be).simulate(&c);
        let sv = StateVector::simulate(&c);
        let mut dot = qk_tensor::complex::Complex64::ZERO;
        for (a, b) in mps.to_statevector().iter().zip(sv.amplitudes()) {
            dot = dot.conj_mul_add(*a, *b);
        }
        prop_assert!((dot.norm_sqr() - 1.0).abs() < 1e-8);
    }

    /// Canonicalization to any site never changes the state.
    #[test]
    fn canonicalization_is_gauge_only(
        features in feature_vec(3..6),
        target in 0usize..6,
    ) {
        let cfg = AnsatzConfig::new(2, 2, 0.9);
        let c = feature_map_circuit(&features, &cfg);
        let be = CpuBackend::new();
        let (mut mps, _) = MpsSimulator::new(&be).simulate(&c);
        let before = mps.to_statevector();
        mps.canonicalize_to(target.min(features.len() - 1));
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((*x - *y).norm() < 1e-9);
        }
    }

    /// Serialization round-trips exactly.
    #[test]
    fn bytes_roundtrip_is_exact(features in feature_vec(2..6)) {
        let cfg = AnsatzConfig::new(2, 1, 0.7);
        let c = feature_map_circuit(&features, &cfg);
        let be = CpuBackend::new();
        let (mps, _) = MpsSimulator::new(&be).simulate(&c);
        let back = Mps::from_bytes(&mps.to_bytes());
        prop_assert!((mps.overlap_sqr(&back) - 1.0).abs() < 1e-12);
        prop_assert_eq!(mps.bond_dims(), back.bond_dims());
    }

    /// A bond cap is always respected, and the state stays normalized.
    #[test]
    fn bond_cap_respected(
        features in feature_vec(4..7),
        cap in 1usize..4,
    ) {
        let cfg = AnsatzConfig::new(3, 3.min(features.len() - 1), 1.2);
        let c = feature_map_circuit(&features, &cfg);
        let be = CpuBackend::new();
        let sim = MpsSimulator::new(&be)
            .with_truncation(TruncationConfig::capped(1e-16, cap));
        let (mps, rec) = sim.simulate(&c);
        prop_assert!(mps.max_bond() <= cap);
        prop_assert!(rec.peak_bond <= cap.max(1) * 4); // theta before truncation may exceed briefly
        prop_assert!((mps.norm() - 1.0).abs() < 1e-9);
    }

    /// GHZ-type circuits: inner products between different basis-aligned
    /// states remain in [0, 1] whatever the gate angles.
    #[test]
    fn random_rxx_chain_keeps_valid_overlaps(angles in prop::collection::vec(-3.0f64..3.0, 3..8)) {
        let m = angles.len() + 1;
        let mut c = Circuit::new(m);
        for q in 0..m {
            c.push1(Gate::H, q);
        }
        for (q, &t) in angles.iter().enumerate() {
            c.push2(Gate::Rxx(t), q, q + 1);
            c.push1(Gate::Rz(t * 0.5), q);
        }
        let be = CpuBackend::new();
        let (mps, _) = MpsSimulator::new(&be).simulate(&c);
        let plus = Mps::plus_state(m);
        let overlap = mps.overlap_sqr(&plus);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&overlap));
    }
}
