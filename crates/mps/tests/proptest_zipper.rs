//! Property tests pinning the zero-allocation zipper kernel
//! (`Mps::inner_into` / `inner_with`) against the contract-based
//! reference implementation it replaced, across random bond profiles,
//! random site data and every canonical form — plus norm preservation
//! under long-lived workspace reuse.

use proptest::prelude::*;
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{Mps, MpsSimulator, ZipperWorkspace};
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, DeviceModel};
use qk_tensor::complex::Complex64;
use qk_tensor::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random normalized MPS with `m` sites and random interior bonds in
/// `1..=cap` (adjacent bonds matched; `from_sites` canonicalizes).
fn random_mps(m: usize, cap: usize, seed: u64) -> Mps {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut bonds = vec![1usize; m + 1];
    for b in bonds.iter_mut().take(m).skip(1) {
        *b = rng.gen_range(1..=cap);
    }
    let sites = (0..m)
        .map(|q| {
            let (l, r) = (bonds[q], bonds[q + 1]);
            let data = (0..l * 2 * r)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            Tensor::from_data(&[l, 2, r], data)
        })
        .collect();
    let mut mps = Mps::from_sites(sites);
    mps.normalize();
    mps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The workspace kernel agrees with the contract-based reference to
    /// 1e-12 (floating-point operation order in the GEMM legitimately
    /// differs) for random bond profiles and any orthogonality centers,
    /// and is bitwise identical to `inner_with`'s thread-local path.
    #[test]
    fn inner_into_matches_contract_reference(
        m in 2usize..6,
        cap in 1usize..6,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
        center_a in 0usize..8,
        center_b in 0usize..8,
    ) {
        let be = CpuBackend::new();
        let mut a = random_mps(m, cap, seed_a);
        let mut b = random_mps(m, cap, seed_b.wrapping_add(7919));
        // Exercise left-canonical, right-canonical and interior centers.
        a.canonicalize_to(center_a % m);
        b.canonicalize_to(center_b % m);
        let mut ws = ZipperWorkspace::new();
        let fast = a.inner_into(&mut ws, &be, &b);
        let reference = a.inner_via_contract(&be, &b);
        prop_assert!(
            (fast - reference).norm() <= 1e-12,
            "fast {fast:?} vs reference {reference:?}"
        );
        let via_with = a.inner_with(&be, &b);
        prop_assert_eq!(fast.re.to_bits(), via_with.re.to_bits());
        prop_assert_eq!(fast.im.to_bits(), via_with.im.to_bits());
    }

    /// Backends run the same zipper kernel: CPU and (ideal-model)
    /// accelerator inner products are bitwise identical.
    #[test]
    fn backends_agree_bitwise_on_inner(
        m in 2usize..6,
        cap in 1usize..5,
        seed in 0u64..1000,
    ) {
        let cpu = CpuBackend::new();
        let acc = AcceleratorBackend::new(DeviceModel::ideal());
        let a = random_mps(m, cap, seed);
        let b = random_mps(m, cap, seed.wrapping_add(13));
        let mut ws = ZipperWorkspace::new();
        let on_cpu = a.inner_into(&mut ws, &cpu, &b);
        let on_acc = a.inner_into(&mut ws, &acc, &b);
        prop_assert_eq!(on_cpu.re.to_bits(), on_acc.re.to_bits());
        prop_assert_eq!(on_cpu.im.to_bits(), on_acc.im.to_bits());
    }

    /// One workspace reused across many calls on states of varying size
    /// and bond dimension: `|<psi|psi>| = 1` every time, so buffer reuse
    /// never leaks state between calls.
    #[test]
    fn workspace_reuse_preserves_norm(
        seeds in prop::collection::vec(0u64..1000, 4..10),
    ) {
        let be = CpuBackend::new();
        let mut ws = ZipperWorkspace::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let m = 2 + (seed as usize % 4);
            let cap = 1 + (i % 5);
            let mps = random_mps(m, cap, seed);
            let one = mps.inner_into(&mut ws, &be, &mps);
            prop_assert!(
                (one.norm() - 1.0).abs() <= 1e-12,
                "call {i}: |<psi|psi>| = {}",
                one.norm()
            );
        }
    }
}

/// Ansatz-simulated states (the production encoding) agree between the
/// kernels too, and workspace reuse across a whole Gram row matches
/// fresh-workspace evaluation bitwise.
#[test]
fn simulated_states_agree_and_reuse_is_bitwise_stable() {
    let be = CpuBackend::new();
    let cfg = AnsatzConfig::new(2, 2, 0.8);
    let sim = MpsSimulator::new(&be);
    let states: Vec<Mps> = (0..6)
        .map(|i| {
            let row: Vec<f64> = (0..6).map(|j| ((i * 6 + j) % 9) as f64 * 0.21).collect();
            sim.simulate(&feature_map_circuit(&row, &cfg)).0
        })
        .collect();
    let mut shared = ZipperWorkspace::new();
    for i in 0..states.len() {
        for j in i + 1..states.len() {
            let reused = states[i].inner_into(&mut shared, &be, &states[j]);
            let fresh = states[i].inner_into(&mut ZipperWorkspace::new(), &be, &states[j]);
            assert_eq!(reused.re.to_bits(), fresh.re.to_bits(), "[{i}][{j}]");
            assert_eq!(reused.im.to_bits(), fresh.im.to_bits(), "[{i}][{j}]");
            let reference = states[i].inner_via_contract(&be, &states[j]);
            assert!(
                (reused - reference).norm() <= 1e-12,
                "[{i}][{j}]: {reused:?} vs {reference:?}"
            );
        }
    }
}
