//! Property-based invariants of the MPS extension modules: arithmetic and
//! compression, amplitude/sampling, and MPO Hamiltonians — all validated
//! against the exact statevector in the regime where both representations
//! run.

use proptest::prelude::*;
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::mpo::{Mpo, Pauli, PauliString};
use qk_mps::{encoding_hamiltonian, Mps, MpsSimulator, TruncationConfig};
use qk_tensor::backend::CpuBackend;
use qk_tensor::complex::Complex64;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn feature_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..2.0, len)
}

fn ansatz_state(features: &[f64], gamma: f64) -> Mps {
    let d = (features.len() - 1).clamp(1, 2);
    let cfg = AnsatzConfig::new(2, d, gamma);
    let be = CpuBackend::new();
    MpsSimulator::new(&be)
        .simulate(&feature_map_circuit(features, &cfg))
        .0
}

/// Random weighted Pauli string on `m` qubits.
fn pauli_string(m: usize) -> impl Strategy<Value = PauliString> {
    let op = prop_oneof![Just(Pauli::X), Just(Pauli::Y), Just(Pauli::Z)];
    (
        -2.0f64..2.0,
        prop::collection::btree_map(0..m, op, 1..=m.min(3)),
    )
        .prop_map(|(coeff, ops)| PauliString::new(coeff, ops.into_iter().collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every amplitude read off the MPS matches the densified vector.
    #[test]
    fn amplitudes_match_densified_state(
        features in feature_vec(2..6),
        gamma in 0.1f64..1.3,
    ) {
        let mps = ansatz_state(&features, gamma);
        let sv = mps.to_statevector();
        let m = features.len();
        for (idx, &amp) in sv.iter().enumerate() {
            let bits: Vec<u8> = (0..m).map(|q| ((idx >> (m - 1 - q)) & 1) as u8).collect();
            prop_assert!((mps.amplitude(&bits) - amp).norm() < 1e-9);
        }
    }

    /// Born probabilities form a distribution.
    #[test]
    fn probabilities_form_distribution(
        features in feature_vec(2..6),
        gamma in 0.1f64..1.3,
    ) {
        let mps = ansatz_state(&features, gamma);
        let m = features.len();
        let total: f64 = (0..(1usize << m))
            .map(|idx| {
                let bits: Vec<u8> =
                    (0..m).map(|q| ((idx >> (m - 1 - q)) & 1) as u8).collect();
                mps.probability(&bits)
            })
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Sampling only ever produces bitstrings with nonzero probability,
    /// and does not disturb the state.
    #[test]
    fn sampling_is_supported_and_nondestructive(
        features in feature_vec(2..5),
        seed in 0u64..1000,
    ) {
        let mut mps = ansatz_state(&features, 0.9);
        let before = mps.to_statevector();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for bits in mps.sample(&mut rng, 16) {
            prop_assert!(mps.probability(&bits) > 0.0);
        }
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((*x - *y).norm() < 1e-9);
        }
    }

    /// MPS addition is statevector addition.
    #[test]
    fn addition_is_linear(
        xa in feature_vec(3..5),
        gamma in 0.2f64..1.2,
    ) {
        let mut xb = xa.clone();
        xb.reverse();
        let a = ansatz_state(&xa, gamma);
        let b = ansatz_state(&xb, gamma);
        let sum = a.add(&b);
        let (sva, svb, svs) = (a.to_statevector(), b.to_statevector(), sum.to_statevector());
        for i in 0..sva.len() {
            prop_assert!((svs[i] - (sva[i] + svb[i])).norm() < 1e-9);
        }
    }

    /// Lossless compression preserves the state and never grows bonds.
    #[test]
    fn compression_is_lossless_at_machine_cutoff(
        features in feature_vec(3..6),
        gamma in 0.2f64..1.3,
    ) {
        let be = CpuBackend::new();
        let psi = ansatz_state(&features, gamma);
        let mut padded = psi.add(&psi); // doubles every interior bond
        let before = padded.to_statevector();
        padded.compress(&be, &TruncationConfig::default());
        prop_assert!(padded.max_bond() <= psi.max_bond());
        let after = padded.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((*x - *y).norm() < 1e-8);
        }
    }

    /// Capped compression respects the cap and the eq.-(8) fidelity bound.
    #[test]
    fn capped_compression_respects_error_budget(
        features in feature_vec(4..7),
        cap in 1usize..4,
    ) {
        let be = CpuBackend::new();
        let psi = ansatz_state(&features, 1.2);
        let mut lossy = psi.clone();
        let sweep = lossy.compress(&be, &TruncationConfig::capped(1e-16, cap));
        prop_assert!(lossy.max_bond() <= cap);
        let f = lossy.fidelity(&psi);
        prop_assert!(f >= 1.0 - sweep.total_discarded_weight - 1e-9);
    }

    /// A random Pauli sum's MPO expectation equals the dense quadratic
    /// form <psi|H|psi>.
    #[test]
    fn mpo_expectation_matches_dense(
        features in feature_vec(2..5),
        terms_seed in prop::collection::vec(pauli_string(4), 1..4),
    ) {
        let m = features.len();
        // Restrict term qubits to the actual register.
        let terms: Vec<PauliString> = terms_seed
            .into_iter()
            .map(|t| {
                let ops: Vec<(usize, Pauli)> = t
                    .ops
                    .into_iter()
                    .map(|(q, p)| (q % m, p))
                    .collect::<std::collections::BTreeMap<_, _>>()
                    .into_iter()
                    .collect();
                PauliString::new(t.coeff, ops)
            })
            .collect();
        let h = Mpo::from_pauli_sum(m, &terms);
        let psi = ansatz_state(&features, 0.8);
        let sv = psi.to_statevector();
        let dense = h.to_dense();
        let dim = 1usize << m;
        let mut hv = vec![Complex64::ZERO; dim];
        qk_tensor::matrix::matvec(dim, dim, dense.data(), &sv, &mut hv);
        let expect: Complex64 = sv
            .iter()
            .zip(&hv)
            .map(|(a, b)| a.conj() * *b)
            .fold(Complex64::ZERO, |acc, z| acc + z);
        prop_assert!((h.expectation(&psi) - expect).norm() < 1e-8);
    }

    /// Hermitian MPOs have real expectation values on any state.
    #[test]
    fn encoding_hamiltonian_expectation_is_real(
        features in feature_vec(3..6),
        gamma in 0.1f64..1.2,
    ) {
        let d = (features.len() - 1).clamp(1, 3);
        let h = encoding_hamiltonian(&features, gamma, d);
        let psi = ansatz_state(&features, gamma);
        let e = h.expectation(&psi);
        prop_assert!(e.im.abs() < 1e-9, "imaginary part {}", e.im);
    }

    /// MPO application agrees with the dense matrix-vector product.
    #[test]
    fn mpo_apply_matches_dense_matvec(
        features in feature_vec(2..4),
        gamma in 0.2f64..1.0,
    ) {
        let be = CpuBackend::new();
        let m = features.len();
        let h = encoding_hamiltonian(&features, gamma, 1);
        let psi = ansatz_state(&features, gamma);
        let (hpsi, _) = h.apply(&be, &psi, &TruncationConfig::default());
        let dim = 1usize << m;
        let mut expect = vec![Complex64::ZERO; dim];
        qk_tensor::matrix::matvec(dim, dim, h.to_dense().data(), &psi.to_statevector(), &mut expect);
        let got = hpsi.to_statevector();
        for i in 0..dim {
            prop_assert!((got[i] - expect[i]).norm() < 1e-8);
        }
    }
}
