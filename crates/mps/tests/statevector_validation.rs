//! Ground-truth validation: the MPS engine must agree with the exact
//! statevector simulator on every circuit family the framework uses, in
//! the small-qubit regime where both run.

use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_circuit::{route_for_mps, Circuit, Gate};
use qk_mps::{MpsSimulator, TruncationConfig};
use qk_statevector::StateVector;
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, DeviceModel};

fn assert_states_match(circuit: &Circuit, tol: f64) {
    let be = CpuBackend::new();
    let sim = MpsSimulator::new(&be);
    let (mps, _) = sim.simulate(circuit);
    let mps_vec = mps.to_statevector();
    let sv = StateVector::simulate(circuit);
    let exact = sv.amplitudes();
    assert_eq!(mps_vec.len(), exact.len());
    let mut dot = qk_tensor::complex::Complex64::ZERO;
    for (a, b) in mps_vec.iter().zip(exact) {
        dot = dot.conj_mul_add(*a, *b);
    }
    let fidelity = dot.norm_sqr();
    assert!(
        (fidelity - 1.0).abs() < tol,
        "MPS/statevector fidelity {fidelity} for circuit with {} ops",
        circuit.len()
    );
}

#[test]
fn ghz_state_matches() {
    let mut c = Circuit::new(5);
    c.push1(Gate::H, 0);
    for q in 0..4 {
        c.push2(Gate::Cx, q, q + 1);
    }
    assert_states_match(&c, 1e-10);
}

#[test]
fn random_local_circuit_matches() {
    // Deterministic pseudo-random local circuit mixing all gate types.
    let mut c = Circuit::new(6);
    let mut state = 0x12345678u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..40 {
        let r = next();
        let q = (r % 6) as usize;
        match r % 5 {
            0 => {
                c.push1(Gate::H, q);
            }
            1 => {
                c.push1(Gate::Rz((r % 100) as f64 / 20.0), q);
            }
            2 => {
                c.push1(Gate::Rx((r % 100) as f64 / 25.0), q);
            }
            3 if q < 5 => {
                c.push2(Gate::Rxx((r % 100) as f64 / 30.0), q, q + 1);
            }
            _ if q < 5 => {
                c.push2(Gate::Cx, q, q + 1);
            }
            _ => {
                c.push1(Gate::H, q);
            }
        }
    }
    assert_states_match(&c, 1e-9);
}

#[test]
fn ansatz_d1_matches() {
    let features = [0.3, 1.7, 0.9, 1.1, 0.5];
    let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 1, 1.0));
    assert_states_match(&c, 1e-9);
}

#[test]
fn ansatz_d2_routed_matches() {
    let features = [0.8, 0.2, 1.4, 1.9];
    let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 2, 0.7));
    assert_states_match(&c, 1e-9);
}

#[test]
fn ansatz_full_distance_matches() {
    // d = m - 1: every pair interacts; stress test for routing + SVD.
    let features = [0.6, 1.2, 0.4, 1.8, 1.0];
    let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 4, 0.9));
    assert_states_match(&c, 1e-8);
}

#[test]
fn deep_ansatz_matches() {
    // r = 8 layers: accumulation of truncation error must stay at machine
    // precision with the paper-default cutoff.
    let features = [1.5, 0.3, 0.9];
    let c = feature_map_circuit(&features, &AnsatzConfig::new(8, 2, 1.0));
    assert_states_match(&c, 1e-8);
}

#[test]
fn gamma_sweep_matches() {
    for &gamma in &[0.1, 0.5, 1.0, 2.0] {
        let features = [0.7, 1.3, 0.2, 1.6];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 3, gamma));
        assert_states_match(&c, 1e-8);
    }
}

#[test]
fn kernel_entries_match_statevector() {
    // The end observable of the whole stack: |<psi(x_i)|psi(x_j)>|^2 from
    // MPS must equal the exact value.
    let cfg = AnsatzConfig::new(2, 2, 0.8);
    let points: [&[f64]; 3] = [
        &[0.3, 1.2, 0.7, 1.8],
        &[1.1, 0.4, 1.5, 0.2],
        &[0.9, 0.9, 0.9, 0.9],
    ];
    let be = CpuBackend::new();
    let sim = MpsSimulator::new(&be);
    let mps_states: Vec<_> = points
        .iter()
        .map(|x| sim.simulate(&feature_map_circuit(x, &cfg)).0)
        .collect();
    let sv_states: Vec<_> = points
        .iter()
        .map(|x| StateVector::simulate(&route_for_mps(&feature_map_circuit(x, &cfg))))
        .collect();
    for i in 0..3 {
        for j in 0..3 {
            let k_mps = mps_states[i].overlap_sqr(&mps_states[j]);
            let k_sv = sv_states[i].overlap_sqr(&sv_states[j]);
            assert!(
                (k_mps - k_sv).abs() < 1e-9,
                "K[{i}][{j}]: mps {k_mps} vs exact {k_sv}"
            );
        }
    }
}

#[test]
fn backends_produce_identical_bond_dimensions() {
    // Table I's check: CPU and accelerator run the same algorithm, so
    // their bond dimensions agree.
    let features = [0.4, 1.6, 0.8, 1.2, 0.6];
    let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 3, 1.0));
    let cpu = CpuBackend::new();
    let acc = AcceleratorBackend::new(DeviceModel::ideal());
    let (mps_cpu, rec_cpu) = MpsSimulator::new(&cpu).simulate(&c);
    let (mps_acc, rec_acc) = MpsSimulator::new(&acc).simulate(&c);
    assert_eq!(mps_cpu.bond_dims(), mps_acc.bond_dims());
    assert_eq!(rec_cpu.peak_bond, rec_acc.peak_bond);
    // And the states agree.
    assert!((mps_cpu.overlap_sqr(&mps_acc) - 1.0).abs() < 1e-9);
}

#[test]
fn truncation_error_bound_holds() {
    // Simulate with an aggressive cutoff and verify eq. (8): the fidelity
    // against the exact state is at least the accumulated bound.
    let features = [0.5, 1.5, 0.9, 1.1, 0.3, 1.7];
    let c = feature_map_circuit(&features, &AnsatzConfig::new(3, 3, 1.0));
    let be = CpuBackend::new();
    let sim = MpsSimulator::new(&be).with_truncation(TruncationConfig::with_cutoff(1e-4));
    let (mps, rec) = sim.simulate(&c);
    let approx = mps.to_statevector();
    let exact_sv = StateVector::simulate(&c);
    let mut dot = qk_tensor::complex::Complex64::ZERO;
    for (a, b) in approx.iter().zip(exact_sv.amplitudes()) {
        dot = dot.conj_mul_add(*a, *b);
    }
    let fidelity = dot.norm_sqr();
    let bound = rec.truncation.fidelity_lower_bound();
    assert!(
        fidelity >= bound - 1e-9,
        "fidelity {fidelity} violates truncation bound {bound}"
    );
    // With a 1e-4 cutoff some truncation should actually have happened on
    // this circuit; otherwise the test is vacuous.
    assert!(
        rec.truncation.values_discarded > 0,
        "no truncation exercised"
    );
}
