//! # qk-statevector
//!
//! Exact dense statevector simulation. Memory is `16 * 2^m` bytes, so this
//! caps out around 20 qubits — which is precisely its job here: the paper's
//! point is that MPS goes far beyond statevector scale, and this crate is
//! the ground truth that the MPS engine is validated against in the regime
//! where both run.
//!
//! Convention: qubit 0 is the *most significant* bit of the basis index,
//! i.e. `|q0 q1 ... q_{m-1}>` maps to index `q0 * 2^{m-1} + ... + q_{m-1}`.
//! This matches the left-to-right site order of the MPS.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qk_circuit::Circuit;
use qk_tensor::complex::Complex64;
use qk_tensor::tensor::Tensor;

/// A pure state of `m` qubits as a dense vector of `2^m` amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0>`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits >= 1, "need at least one qubit");
        assert!(
            num_qubits <= 26,
            "statevector simulation beyond 26 qubits is not supported (16 * 2^m bytes)"
        );
        let mut amplitudes = vec![Complex64::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex64::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// The uniform superposition `|+>^m` (the ansatz input state).
    pub fn plus_state(num_qubits: usize) -> Self {
        let mut sv = StateVector::zero_state(num_qubits);
        let amp = Complex64::from_real(1.0 / ((1u64 << num_qubits) as f64).sqrt());
        sv.amplitudes.fill(amp);
        sv
    }

    /// Builds a state from raw amplitudes (must have power-of-two length).
    pub fn from_amplitudes(amplitudes: Vec<Complex64>) -> Self {
        let len = amplitudes.len();
        assert!(len.is_power_of_two() && len >= 2, "length must be 2^m");
        StateVector {
            num_qubits: len.trailing_zeros() as usize,
            amplitudes,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector, basis-ordered.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// Squared norm; 1 for a normalized state.
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Inner product `<self|other>` (antilinear in `self`).
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        qk_tensor::matrix::dot_conj(&self.amplitudes, &other.amplitudes)
    }

    /// Fidelity-style kernel entry `|<self|other>|^2` (eq. 1).
    pub fn overlap_sqr(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a single-qubit gate to qubit `q`.
    pub fn apply_gate1(&mut self, gate: &Tensor, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        assert_eq!(gate.shape(), &[2, 2], "single-qubit gate must be 2x2");
        let g = gate.data();
        let stride = 1usize << (self.num_qubits - 1 - q);
        let n = self.amplitudes.len();
        let mut base = 0;
        while base < n {
            for off in base..base + stride {
                let a0 = self.amplitudes[off];
                let a1 = self.amplitudes[off + stride];
                self.amplitudes[off] = g[0] * a0 + g[1] * a1;
                self.amplitudes[off + stride] = g[2] * a0 + g[3] * a1;
            }
            base += 2 * stride;
        }
    }

    /// Applies a two-qubit gate to qubits `(qa, qb)`; `qa` is the gate's
    /// first qubit. Works for arbitrary (non-adjacent) pairs.
    pub fn apply_gate2(&mut self, gate: &Tensor, qa: usize, qb: usize) {
        assert!(
            qa < self.num_qubits && qb < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        assert_eq!(gate.shape(), &[4, 4], "two-qubit gate must be 4x4");
        let g = gate.data();
        let sa = 1usize << (self.num_qubits - 1 - qa);
        let sb = 1usize << (self.num_qubits - 1 - qb);
        let n = self.amplitudes.len();
        for idx in 0..n {
            // Visit each 4-tuple once: only from its (qa=0, qb=0) member.
            if idx & sa != 0 || idx & sb != 0 {
                continue;
            }
            let i00 = idx;
            let i01 = idx | sb;
            let i10 = idx | sa;
            let i11 = idx | sa | sb;
            let a = [
                self.amplitudes[i00],
                self.amplitudes[i01],
                self.amplitudes[i10],
                self.amplitudes[i11],
            ];
            for (row, &target) in [i00, i01, i10, i11].iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (col, &amp) in a.iter().enumerate() {
                    acc = acc.mul_add(g[row * 4 + col], amp);
                }
                self.amplitudes[target] = acc;
            }
        }
    }

    /// Runs a circuit starting from this state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "register size mismatch"
        );
        for op in circuit.ops() {
            let matrix = op.gate.matrix();
            match op.qubits.as_slice() {
                [q] => self.apply_gate1(&matrix, *q),
                [a, b] => self.apply_gate2(&matrix, *a, *b),
                _ => unreachable!(),
            }
        }
    }

    /// Convenience: simulate a circuit from `|0...0>`.
    pub fn simulate(circuit: &Circuit) -> Self {
        let mut sv = StateVector::zero_state(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
    use qk_circuit::Gate;
    use qk_tensor::complex::{approx_eq, c64};

    const TOL: f64 = 1e-12;

    #[test]
    fn zero_state_is_basis_zero() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert_eq!(sv.probability(0), 1.0);
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn plus_state_uniform() {
        let sv = StateVector::plus_state(4);
        for k in 0..16 {
            assert!((sv.probability(k) - 1.0 / 16.0).abs() < TOL);
        }
    }

    #[test]
    fn hadamards_build_plus_state() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push1(Gate::H, q);
        }
        let sv = StateVector::simulate(&c);
        let plus = StateVector::plus_state(3);
        assert!((sv.overlap_sqr(&plus) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_most_significant_qubit() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate1(&Gate::X.matrix(), 0);
        // Qubit 0 is the most significant bit: |10> = index 2.
        assert!((sv.probability(2) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_least_significant_qubit() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate1(&Gate::X.matrix(), 1);
        assert!((sv.probability(1) - 1.0).abs() < TOL);
    }

    #[test]
    fn cx_entangles_bell_state() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).push2(Gate::Cx, 0, 1);
        let sv = StateVector::simulate(&c);
        assert!((sv.probability(0) - 0.5).abs() < TOL);
        assert!((sv.probability(3) - 0.5).abs() < TOL);
        assert!(sv.probability(1) < TOL);
        assert!(sv.probability(2) < TOL);
    }

    #[test]
    fn cx_orientation_matters() {
        // Control on qubit 1, target qubit 0, input |01>.
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate1(&Gate::X.matrix(), 1); // |01>
        sv.apply_gate2(&Gate::Cx.matrix(), 1, 0); // control = qubit 1 (set)
        assert!((sv.probability(3) - 1.0).abs() < TOL); // |11>
    }

    #[test]
    fn swap_gate_swaps() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_gate1(&Gate::X.matrix(), 0); // |100>
        sv.apply_gate2(&Gate::Swap.matrix(), 0, 2);
        assert!((sv.probability(1) - 1.0).abs() < TOL); // |001>
    }

    #[test]
    fn two_qubit_gate_nonadjacent() {
        // RXX on qubits (0, 2) of 3: compare against routed/adjacent path.
        let theta = 0.9;
        let mut direct = StateVector::plus_state(3);
        direct.apply_gate2(&Gate::Rxx(theta).matrix(), 0, 2);

        let mut routed = StateVector::plus_state(3);
        routed.apply_gate2(&Gate::Swap.matrix(), 0, 1);
        routed.apply_gate2(&Gate::Rxx(theta).matrix(), 1, 2);
        routed.apply_gate2(&Gate::Swap.matrix(), 0, 1);

        assert!((direct.overlap_sqr(&routed) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn circuits_preserve_norm() {
        let features = [0.3, 1.7, 0.9, 1.1];
        let cfg = AnsatzConfig::new(2, 2, 0.8);
        let c = feature_map_circuit(&features, &cfg);
        let sv = StateVector::simulate(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn kernel_diagonal_is_one() {
        let features = [0.5, 1.5, 1.0];
        let c = feature_map_circuit(&features, &AnsatzConfig::new(2, 1, 1.0));
        let sv = StateVector::simulate(&c);
        assert!((sv.overlap_sqr(&sv) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn kernel_entry_symmetric() {
        let cfg = AnsatzConfig::new(2, 2, 0.7);
        let xa = [0.2, 1.1, 0.8];
        let xb = [1.9, 0.4, 1.3];
        let sa = StateVector::simulate(&feature_map_circuit(&xa, &cfg));
        let sb = StateVector::simulate(&feature_map_circuit(&xb, &cfg));
        assert!((sa.overlap_sqr(&sb) - sb.overlap_sqr(&sa)).abs() < TOL);
    }

    #[test]
    fn inner_product_phase() {
        // <0|X|0> = 0; <0|H|0> = 1/sqrt(2).
        let zero = StateVector::zero_state(1);
        let mut x = StateVector::zero_state(1);
        x.apply_gate1(&Gate::X.matrix(), 0);
        assert!(approx_eq(zero.inner(&x), Complex64::ZERO, TOL));
        let mut h = StateVector::zero_state(1);
        h.apply_gate1(&Gate::H.matrix(), 0);
        assert!(approx_eq(zero.inner(&h), c64(1.0 / 2f64.sqrt(), 0.0), TOL));
    }

    #[test]
    fn routing_invariance_on_statevector() {
        // The routed circuit must produce the same state as the raw one.
        let features = [0.3, 1.2, 0.6, 1.8];
        let cfg = AnsatzConfig::new(1, 3, 0.9);
        let raw = feature_map_circuit(&features, &cfg);
        let routed = qk_circuit::route_for_mps(&raw);
        let sv_raw = StateVector::simulate(&raw);
        let sv_routed = StateVector::simulate(&routed);
        assert!((sv_raw.overlap_sqr(&sv_routed) - 1.0).abs() < 1e-10);
    }
}
