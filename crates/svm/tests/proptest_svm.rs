//! Property-based tests of the SVM substrate: metric identities, SMO dual
//! feasibility, and kernel-matrix invariants.

use proptest::prelude::*;
use qk_svm::kernel::KernelMatrix;
use qk_svm::metrics::{accuracy, precision, recall, roc_auc, roc_curve};
use qk_svm::smo::{train_svc, SmoParams};

fn scores_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-5.0f64..5.0, prop::bool::ANY), 4..40).prop_map(|v| {
        let scores: Vec<f64> = v.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f64> = v.iter().map(|(_, p)| if *p { 1.0 } else { -1.0 }).collect();
        (scores, labels)
    })
}

/// Random points in the plane with labels; the linear kernel over them is
/// PSD by construction.
fn planar_problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec(((-2.0f64..2.0), (-2.0f64..2.0), prop::bool::ANY), 6..24).prop_map(|v| {
        let pts: Vec<Vec<f64>> = v.iter().map(|(x, y, _)| vec![*x, *y]).collect();
        let mut labels: Vec<f64> = v
            .iter()
            .map(|(_, _, p)| if *p { 1.0 } else { -1.0 })
            .collect();
        // Guarantee both classes.
        labels[0] = 1.0;
        let last = labels.len() - 1;
        labels[last] = -1.0;
        (pts, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AUC is within [0, 1] and is invariant under any strictly monotone
    /// transformation of the scores.
    #[test]
    fn auc_monotone_invariance((scores, labels) in scores_and_labels()) {
        let base = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&base));
        let squashed: Vec<f64> = scores.iter().map(|s| s.tanh() * 3.0 + 10.0).collect();
        let transformed = roc_auc(&squashed, &labels);
        prop_assert!((base - transformed).abs() < 1e-12);
    }

    /// Negating all scores maps AUC to 1 - AUC.
    #[test]
    fn auc_negation_symmetry((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|y| **y > 0.0).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        // Ensure no exact ties after negation flip issues: AUC handles
        // ties by averaging, and negation preserves tie groups, so the
        // identity holds exactly.
        let base = roc_auc(&scores, &labels);
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        prop_assert!((base + roc_auc(&negated, &labels) - 1.0).abs() < 1e-12);
    }

    /// AUC equals the trapezoidal area under the ROC curve.
    #[test]
    fn auc_equals_curve_area((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|y| **y > 0.0).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let curve = roc_curve(&scores, &labels);
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        prop_assert!((roc_auc(&scores, &labels) - area).abs() < 1e-10);
    }

    /// Threshold metrics are all within [0, 1].
    #[test]
    fn threshold_metrics_bounded((scores, labels) in scores_and_labels(), thr in -5.0f64..5.0) {
        for v in [accuracy(&scores, &labels, thr), precision(&scores, &labels, thr), recall(&scores, &labels, thr)] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// SMO produces a feasible dual: box constraints and the equality
    /// constraint hold for arbitrary (PSD) linear-kernel problems.
    #[test]
    fn smo_dual_feasibility((pts, labels) in planar_problem(), c in 0.05f64..4.0) {
        let kernel = KernelMatrix::from_fn(pts.len(), |i, j| {
            pts[i].iter().zip(&pts[j]).map(|(a, b)| a * b).sum::<f64>()
        });
        let model = train_svc(&kernel, &labels, &SmoParams::with_c(c));
        prop_assert!(model.alphas.iter().all(|&a| (-1e-9..=c + 1e-9).contains(&a)));
        let balance: f64 = model.alphas.iter().zip(&labels).map(|(a, y)| a * y).sum();
        prop_assert!(balance.abs() < 1e-6, "sum alpha y = {balance}");
        prop_assert!(model.bias.is_finite());
    }

    /// Kernel matrices built from `from_fn` are exactly symmetric and the
    /// off-diagonal statistics are consistent.
    #[test]
    fn kernel_stats_consistent(seed in 0u64..1000, n in 2usize..12) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let vals: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let k = KernelMatrix::from_fn(n, |i, j| vals[i * n + j]);
        prop_assert_eq!(k.max_asymmetry(), 0.0);
        let mean = k.off_diagonal_mean();
        let var = k.off_diagonal_variance();
        prop_assert!(var >= -1e-12);
        // Every off-diagonal entry deviates from the mean by at most the
        // range allowed by the variance times (count - 1) (Samuelson).
        if n >= 2 {
            let count = (n * (n - 1)) as f64;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        let dev = (k.get(i, j) - mean).abs();
                        prop_assert!(dev * dev <= var * count + 1e-9);
                    }
                }
            }
        }
    }

    /// The Jacobi eigensolver satisfies the two spectral identities of a
    /// symmetric matrix: eigenvalue sum = trace, eigenvalue square sum =
    /// squared Frobenius norm.
    #[test]
    fn eigenvalues_satisfy_trace_identities(n in 2usize..10, seed in 0u64..400) {
        use qk_svm::diagnostics::symmetric_eigenvalues;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let vals: Vec<f64> = (0..n * n).map(|_| next()).collect();
        // Symmetrize so the matrix genuinely is symmetric.
        let k = KernelMatrix::from_fn(n, |i, j| 0.5 * (vals[i * n + j] + vals[j * n + i]));
        let eigs = symmetric_eigenvalues(&k);
        prop_assert_eq!(eigs.len(), n);
        let trace: f64 = (0..n).map(|i| k.get(i, i)).sum();
        prop_assert!((eigs.iter().sum::<f64>() - trace).abs() < 1e-9, "trace identity");
        let frob_sq: f64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| k.get(i, j) * k.get(i, j))
            .sum();
        let eig_sq: f64 = eigs.iter().map(|l| l * l).sum();
        prop_assert!((eig_sq - frob_sq).abs() < 1e-8, "Frobenius identity");
        // Sorted descending.
        prop_assert!(eigs.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    /// Kernel–target alignment is invariant under flipping all labels and
    /// bounded in [-1, 1].
    #[test]
    fn alignment_is_sign_symmetric_and_bounded((scores, labels) in scores_and_labels()) {
        use qk_svm::diagnostics::kernel_target_alignment;
        let n = labels.len();
        // Build a PSD kernel from the score vector: K = ss^T + I.
        let k = KernelMatrix::from_fn(n, |i, j| {
            scores[i] * scores[j] + if i == j { 1.0 } else { 0.0 }
        });
        let a = kernel_target_alignment(&k, &labels);
        let flipped: Vec<f64> = labels.iter().map(|y| -y).collect();
        let b = kernel_target_alignment(&k, &flipped);
        prop_assert!((a - b).abs() < 1e-12, "flip invariance: {a} vs {b}");
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a), "bounded: {a}");
    }
}
