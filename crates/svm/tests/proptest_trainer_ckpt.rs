//! Property tests for the trainer-checkpoint decoder: arbitrary,
//! truncated or bit-flipped snapshot bytes must be quarantined and
//! cold-started — never panic the trainer, never steer the model — and
//! the pristine snapshot must still resume. Mirrors the gram
//! checkpoint-decoder corpus.

use proptest::prelude::*;
use qk_svm::{
    checkpoint_path, train_svc, KernelMatrix, SmoParams, TrainedSvm, Trainer, TrainerConfig,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const N: usize = 12;
/// Snapshot layout: 64-byte header+bias, 16 bytes per point, 8-byte
/// checksum — see `qk_svm::trainer`.
const SNAP_LEN: usize = 64 + 16 * N;

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qk-svm-ckpt-prop-{}-{tag}-{id}",
        std::process::id()
    ))
}

fn problem() -> (KernelMatrix, Vec<f64>) {
    let pts: Vec<Vec<f64>> = (0..N)
        .map(|i| {
            vec![
                ((i * 37) % 13) as f64 / 6.0 - 1.0,
                ((i * 11) % 7) as f64 / 3.5,
            ]
        })
        .collect();
    let labels: Vec<f64> = (0..N)
        .map(|i| if (i * 17) % 3 == 0 { 1.0 } else { -1.0 })
        .collect();
    let k = KernelMatrix::from_fn(N, |i, j| {
        let d2: f64 = pts[i]
            .iter()
            .zip(&pts[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (-0.7 * d2).exp()
    });
    (k, labels)
}

fn params() -> SmoParams {
    SmoParams::with_c(1.5)
}

fn ckpt_trainer(dir: &Path) -> Trainer {
    Trainer::new(TrainerConfig {
        ckpt_dir: Some(dir.to_path_buf()),
        ..TrainerConfig::default()
    })
}

/// Writes a valid mid-run snapshot (2 passes in) into `dir` and returns
/// its bytes.
fn seed_midrun_snapshot(dir: &Path, k: &KernelMatrix, y: &[f64]) -> Vec<u8> {
    Trainer::new(TrainerConfig {
        ckpt_dir: Some(dir.to_path_buf()),
        pass_budget: Some(2),
        ..TrainerConfig::default()
    })
    .train(k, y, &params())
    .expect_err("pass budget must interrupt");
    std::fs::read(checkpoint_path(dir)).expect("interrupted run must leave a snapshot")
}

fn assert_bitwise_equal(a: &TrainedSvm, b: &TrainedSvm) {
    assert_eq!(a.passes, b.passes);
    assert_eq!(a.bias.to_bits(), b.bias.to_bits());
    for (x, y) in a.alphas.iter().zip(&b.alphas) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A snapshot file holding arbitrary garbage is quarantined and the
    /// trainer cold-starts to the reference model — no panic, no
    /// silently adopted state.
    #[test]
    fn arbitrary_snapshot_bytes_cold_start(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let (k, y) = problem();
        let reference = train_svc(&k, &y, &params());
        let dir = scratch("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(checkpoint_path(&dir), &bytes).unwrap();
        let outcome = ckpt_trainer(&dir).train(&k, &y, &params()).unwrap();
        prop_assert!(outcome.resumed_from_pass.is_none(), "garbage resumed");
        assert_bitwise_equal(&outcome.model, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating a valid snapshot at any offset forces a cold start to
    /// the reference model.
    #[test]
    fn truncated_snapshot_cold_starts(cut in 0usize..SNAP_LEN) {
        let (k, y) = problem();
        let reference = train_svc(&k, &y, &params());
        let dir = scratch("truncate");
        let valid = seed_midrun_snapshot(&dir, &k, &y);
        prop_assert_eq!(valid.len(), SNAP_LEN);
        std::fs::write(checkpoint_path(&dir), &valid[..cut]).unwrap();
        let outcome = ckpt_trainer(&dir).train(&k, &y, &params()).unwrap();
        prop_assert!(outcome.resumed_from_pass.is_none(), "truncation resumed");
        assert_bitwise_equal(&outcome.model, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single bit of a valid snapshot is caught (magic,
    /// fingerprint, length field, payload or checksum — all covered),
    /// while the pristine bytes still resume. So the rejection is the
    /// flip's doing, not a broken fixture — and either way the final
    /// model is the reference, bit for bit.
    #[test]
    fn bitflipped_snapshot_cold_starts(at in 0usize..SNAP_LEN, bit in 0u8..8) {
        let (k, y) = problem();
        let reference = train_svc(&k, &y, &params());
        let dir = scratch("flip");
        let valid = seed_midrun_snapshot(&dir, &k, &y);

        let mut flipped = valid.clone();
        flipped[at] ^= 1 << bit;
        std::fs::write(checkpoint_path(&dir), &flipped).unwrap();
        let outcome = ckpt_trainer(&dir).train(&k, &y, &params()).unwrap();
        prop_assert!(outcome.resumed_from_pass.is_none(), "bit flip resumed");
        assert_bitwise_equal(&outcome.model, &reference);

        std::fs::write(checkpoint_path(&dir), &valid).unwrap();
        let outcome = ckpt_trainer(&dir).train(&k, &y, &params()).unwrap();
        prop_assert_eq!(outcome.resumed_from_pass, Some(2), "pristine snapshot must resume");
        assert_bitwise_equal(&outcome.model, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A snapshot written by a different job — here, a different seed —
    /// carries a different fingerprint and must cold-start.
    #[test]
    fn foreign_snapshot_cold_starts(other_seed in 0u64..1_000_000) {
        let (k, y) = problem();
        let mine = params();
        prop_assume!(other_seed != mine.seed);
        let reference = train_svc(&k, &y, &mine);
        let dir = scratch("foreign");
        let foreign = SmoParams { seed: other_seed, ..mine };
        ckpt_trainer(&dir).train(&k, &y, &foreign).unwrap();
        let outcome = ckpt_trainer(&dir).train(&k, &y, &mine).unwrap();
        prop_assert!(outcome.resumed_from_pass.is_none(), "foreign snapshot resumed");
        assert_bitwise_equal(&outcome.model, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
