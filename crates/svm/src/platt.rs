//! Platt scaling: calibrated probabilities from SVM decision values.
//!
//! Fits `P(y = +1 | f) = 1 / (1 + exp(A f + B))` to decision values by
//! regularized maximum likelihood, using the Newton method with backtracking
//! from Lin, Weng & Keerthi, "A note on Platt's probabilistic outputs for
//! support vector machines" (2007) — the algorithm LIBSVM ships. The
//! regularization replaces hard 0/1 targets with smoothed frequencies
//! `t+ = (N+ + 1)/(N+ + 2)`, `t- = 1/(N- + 2)`, which keeps the MLE finite
//! on separable data.

use serde::{Deserialize, Serialize};

/// A fitted probability calibration `P(y=+1|f) = sigmoid(-(A f + B))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattCalibration {
    /// Slope parameter; negative for a classifier where larger decision
    /// values mean "more positive".
    pub a: f64,
    /// Offset parameter.
    pub b: f64,
    /// Final negative log-likelihood of the fit.
    pub nll: f64,
    /// Newton iterations used.
    pub iterations: usize,
}

impl PlattCalibration {
    /// Calibrated probability of the positive class for a decision value.
    pub fn probability(&self, decision_value: f64) -> f64 {
        let fapb = self.a * decision_value + self.b;
        // Numerically stable sigmoid of -fapb.
        if fapb >= 0.0 {
            (-fapb).exp() / (1.0 + (-fapb).exp())
        } else {
            1.0 / (1.0 + fapb.exp())
        }
    }

    /// Calibrated probabilities for a batch of decision values.
    pub fn probabilities(&self, decision_values: &[f64]) -> Vec<f64> {
        decision_values
            .iter()
            .map(|&f| self.probability(f))
            .collect()
    }
}

/// Fits Platt calibration to decision values and `+1`/`-1` labels.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn fit_platt(decision_values: &[f64], labels: &[f64]) -> PlattCalibration {
    assert_eq!(
        decision_values.len(),
        labels.len(),
        "decision/label length mismatch"
    );
    assert!(!decision_values.is_empty(), "cannot calibrate on no data");

    let n_pos = labels.iter().filter(|y| **y > 0.0).count();
    let n_neg = labels.len() - n_pos;
    let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
    let t_neg = 1.0 / (n_neg as f64 + 2.0);
    let targets: Vec<f64> = labels
        .iter()
        .map(|&y| if y > 0.0 { t_pos } else { t_neg })
        .collect();

    // Parameters (A, B); LIBSVM's initial guess.
    let mut a = 0.0f64;
    let mut b = ((n_neg as f64 + 1.0) / (n_pos as f64 + 1.0)).ln();

    let nll = |a: f64, b: f64| -> f64 {
        let mut sum = 0.0;
        for (&f, &t) in decision_values.iter().zip(&targets) {
            let fapb = a * f + b;
            // -[t log p + (1-t) log (1-p)] in a catastrophic-cancellation
            // free form.
            sum += if fapb >= 0.0 {
                t * fapb + (1.0 + (-fapb).exp()).ln()
            } else {
                (t - 1.0) * fapb + (1.0 + fapb.exp()).ln()
            };
        }
        sum
    };

    let mut fval = nll(a, b);
    let max_iter = 100;
    let min_step = 1e-10;
    let sigma = 1e-12; // Hessian ridge
    let mut iterations = 0;

    for it in 0..max_iter {
        iterations = it;
        // Gradient and Hessian of the NLL in (A, B).
        let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0);
        let (mut g1, mut g2) = (0.0f64, 0.0f64);
        for (&f, &t) in decision_values.iter().zip(&targets) {
            let fapb = a * f + b;
            let (p, q) = if fapb >= 0.0 {
                let e = (-fapb).exp();
                (e / (1.0 + e), 1.0 / (1.0 + e))
            } else {
                let e = fapb.exp();
                (1.0 / (1.0 + e), e / (1.0 + e))
            };
            let d2 = p * q;
            h11 += f * f * d2;
            h22 += d2;
            h21 += f * d2;
            let d1 = t - p;
            g1 += f * d1;
            g2 += d1;
        }
        if g1.abs() < 1e-5 && g2.abs() < 1e-5 {
            break;
        }
        // Newton direction by solving the 2x2 system.
        let det = h11 * h22 - h21 * h21;
        let da = -(h22 * g1 - h21 * g2) / det;
        let db = -(-h21 * g1 + h11 * g2) / det;
        let gd = g1 * da + g2 * db;

        // Backtracking line search.
        let mut step = 1.0f64;
        let mut improved = false;
        while step >= min_step {
            let (na, nb) = (a + step * da, b + step * db);
            let nval = nll(na, nb);
            if nval < fval + 1e-4 * step * gd {
                a = na;
                b = nb;
                fval = nval;
                improved = true;
                break;
            }
            step /= 2.0;
        }
        if !improved {
            break; // Line search failed: at numerical optimum.
        }
    }

    PlattCalibration {
        a,
        b,
        nll: fval,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic decision values: positives centered at +1, negatives at
    /// -1, with deterministic jitter.
    fn synthetic(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let jitter = ((i * 37 % 100) as f64 / 100.0 - 0.5) * 1.6;
            scores.push(y + jitter);
            labels.push(y);
        }
        (scores, labels)
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (scores, labels) = synthetic(60);
        let cal = fit_platt(&scores, &labels);
        for &f in &scores {
            let p = cal.probability(f);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn monotone_increasing_in_decision_value() {
        let (scores, labels) = synthetic(60);
        let cal = fit_platt(&scores, &labels);
        assert!(cal.a < 0.0, "slope should be negative, got {}", cal.a);
        let ps: Vec<f64> = (-20..=20)
            .map(|i| cal.probability(i as f64 / 5.0))
            .collect();
        for w in ps.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn separable_data_stays_finite() {
        let scores = [3.0, 2.5, 2.0, -2.0, -2.5, -3.0];
        let labels = [1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let cal = fit_platt(&scores, &labels);
        assert!(cal.a.is_finite() && cal.b.is_finite());
        assert!(cal.probability(3.0) > 0.7);
        assert!(cal.probability(-3.0) < 0.3);
    }

    #[test]
    fn calibration_tracks_empirical_frequency() {
        // Scores in two bands with known positive rates: near +1 mostly
        // positive (80%), near -1 mostly negative (20% positive).
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            scores.push(1.0 + (i % 7) as f64 * 0.01);
            labels.push(if i % 5 == 0 { -1.0 } else { 1.0 });
            scores.push(-1.0 - (i % 7) as f64 * 0.01);
            labels.push(if i % 5 == 0 { 1.0 } else { -1.0 });
        }
        let cal = fit_platt(&scores, &labels);
        assert!(
            (cal.probability(1.0) - 0.8).abs() < 0.08,
            "{}",
            cal.probability(1.0)
        );
        assert!(
            (cal.probability(-1.0) - 0.2).abs() < 0.08,
            "{}",
            cal.probability(-1.0)
        );
    }

    #[test]
    fn skewed_prior_shifts_intercept() {
        // 90% negative data with uninformative scores: P(+) ~ 0.1
        // everywhere.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            scores.push(0.0);
            labels.push(if i < 10 { 1.0 } else { -1.0 });
        }
        let cal = fit_platt(&scores, &labels);
        assert!((cal.probability(0.0) - 0.1).abs() < 0.05);
    }

    #[test]
    fn batch_matches_scalar() {
        let (scores, labels) = synthetic(30);
        let cal = fit_platt(&scores, &labels);
        let batch = cal.probabilities(&scores);
        for (i, &f) in scores.iter().enumerate() {
            assert_eq!(batch[i], cal.probability(f));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        fit_platt(&[1.0], &[1.0, -1.0]);
    }
}
