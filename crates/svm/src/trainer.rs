//! Crash-safe SMO training: checkpointed warm-start, a budgeted
//! kernel-row cache with graceful degradation, and chaos-drilled
//! recovery paths.
//!
//! At the paper's N=64,000 regime SVM training is a multi-hour job
//! sitting on top of the tiled Gram engine; this module gives it the
//! same recovery story the engine itself has. A [`Trainer`] drives the
//! exact pass loop of [`crate::train_svc`] (same floats, same rng
//! draws), but:
//!
//! * every `ckpt_every` passes the full solver state — alphas, bias,
//!   error cache, pass counters, rng position — is persisted to
//!   `<dir>/trainer.qks` through a checksummed temp+rename write bound
//!   to a job fingerprint, so a SIGKILL at any instant loses at most
//!   the passes since the last snapshot and a resumed run converges to
//!   a model **bitwise identical** to an uninterrupted one;
//! * kernel rows are served through a byte-budgeted LRU [`RowCache`]
//!   over a [`RowSource`], so the solver stops re-reading the backing
//!   store on every row access, with hit/miss/eviction counters;
//! * every I/O edge (`svm.ckpt.store`, `svm.ckpt.load`,
//!   `svm.row.load`) is chaos-gated and retried under the configured
//!   [`RetryPolicy`]; persistent row-load failures degrade to
//!   recomputation through [`RowSource::recompute_row`], persistent
//!   checkpoint-store failures degrade to un-checkpointed (but still
//!   correct) training, and a corrupt / truncated / foreign snapshot is
//!   quarantined and replaced by a cold start — training aborts only
//!   when even the degraded path cannot make progress.
//!
//! ```text
//! <dir>/trainer.qks   # QKSVMC1\0 | fingerprint | n | total_passes
//!                     #   | passes_without_progress | rng_words | bias
//!                     #   | n alphas | n errors | checksum
//! ```
//!
//! All integers and floats are little-endian; the checksum is FNV-1a 64
//! over every preceding byte. The decoder walks the buffer through a
//! bounds-checked cursor, so truncated or mangled snapshots are
//! rejected by construction rather than panicking in a slice
//! conversion.

use crate::kernel::KernelSource;
use crate::smo::{pass_over, validate_inputs, SmoParams, SmoState, TrainedSvm};
use qk_chaos::{sites, Chaos, Fault, RetryPolicy};
use qk_obs::{Journal, Obs};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const CKPT_MAGIC: &[u8; 8] = b"QKSVMC1\0";
const CKPT_NAME: &str = "trainer.qks";
/// Snapshot format version, folded into the job fingerprint so old
/// layouts can never be misread as new ones.
const CKPT_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// FNV-1a 64 (private copy; qk-svm must not depend on qk-gram, which
// depends on qk-svm). Verified against the reference vectors below.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprint of one training job: the kernel's identity plus
/// everything that steers the solver. A checkpoint is only ever resumed
/// into the exact job that wrote it — different labels, a different
/// `C`, even a different rng seed all produce a different fingerprint
/// and force a cold start.
pub fn job_fingerprint(kernel_fingerprint: u64, labels: &[f64], params: &SmoParams) -> u64 {
    let mut buf = Vec::with_capacity(8 * (7 + labels.len()));
    for v in [CKPT_VERSION, kernel_fingerprint, labels.len() as u64] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for y in labels {
        buf.extend_from_slice(&y.to_bits().to_le_bytes());
    }
    buf.extend_from_slice(&params.c.to_bits().to_le_bytes());
    buf.extend_from_slice(&params.tol.to_bits().to_le_bytes());
    for v in [
        params.max_passes as u64,
        params.max_total_passes as u64,
        params.seed,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&buf)
}

/// The checkpoint file a trainer configured with `ckpt_dir = dir`
/// reads and writes. Exposed so drills and tests can mangle or compare
/// the snapshot without hard-coding the layout.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CKPT_NAME)
}

// ---------------------------------------------------------------------
// Row access.

/// Fallible kernel-row access for the trainer: the degradable analogue
/// of [`KernelSource`].
///
/// `load_row` is the fast path (read a precomputed row) and is allowed
/// to fail transiently — the trainer retries it and, when it keeps
/// failing, falls back to `recompute_row`, which derives the row from
/// first principles (e.g. re-contracting MPS inner products through the
/// gram engine's kernel). Both must fill `out` with bitwise-identical
/// values; the fallback is a slower route to the same bits, never a
/// different answer.
pub trait RowSource {
    /// Matrix order `n`.
    fn order(&self) -> usize;
    /// Reads row `i` into `out` (length `n`).
    fn load_row(&self, i: usize, out: &mut [f64]) -> io::Result<()>;
    /// Recomputes row `i` into `out` without touching the fast path.
    fn recompute_row(&self, i: usize, out: &mut [f64]) -> io::Result<()>;
}

/// Every in-memory [`KernelSource`] is trivially a [`RowSource`]: the
/// row is already resident, so loading and "recomputing" are the same
/// infallible copy.
impl<K: KernelSource + ?Sized> RowSource for K {
    fn order(&self) -> usize {
        KernelSource::order(self)
    }

    fn load_row(&self, i: usize, out: &mut [f64]) -> io::Result<()> {
        out.copy_from_slice(self.row(i));
        Ok(())
    }

    fn recompute_row(&self, i: usize, out: &mut [f64]) -> io::Result<()> {
        out.copy_from_slice(self.row(i));
        Ok(())
    }
}

/// A cached kernel row handed to the pass loop. Holding the `Arc` keeps
/// the row alive even if the cache evicts it mid-step.
struct RowRef(Arc<Vec<f64>>);

impl std::ops::Deref for RowRef {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.0.as_slice()
    }
}

/// Byte-budgeted LRU cache between the SMO pass loop and a
/// [`RowSource`].
///
/// Rows are `n * 8` bytes each; the budget is rounded down to whole
/// rows with a floor of two (a take-step touches exactly two rows).
/// Eviction scans for the least-recently-used entry in a `BTreeMap`, so
/// the eviction order — like everything else in the trainer — is
/// deterministic.
struct RowCache {
    rows: BTreeMap<usize, (Arc<Vec<f64>>, u64)>,
    tick: u64,
    capacity: Option<usize>,
    n: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    retries: u64,
    recomputed: u64,
    faults: u64,
}

impl RowCache {
    fn new(n: usize, budget_bytes: Option<usize>) -> RowCache {
        let capacity = budget_bytes.map(|b| (b / (n.max(1) * 8)).max(2));
        RowCache {
            rows: BTreeMap::new(),
            tick: 0,
            capacity,
            n,
            hits: 0,
            misses: 0,
            evictions: 0,
            retries: 0,
            recomputed: 0,
            faults: 0,
        }
    }

    fn get<S: RowSource + ?Sized>(
        &mut self,
        source: &S,
        i: usize,
        chaos: &Chaos,
        retry: &RetryPolicy,
        journal: Option<&Journal>,
    ) -> io::Result<Arc<Vec<f64>>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((row, last_used)) = self.rows.get_mut(&i) {
            *last_used = tick;
            self.hits += 1;
            return Ok(Arc::clone(row));
        }
        self.misses += 1;

        let mut buf = vec![0.0f64; self.n];
        let retried = retry.run(|| {
            chaos_gate(chaos, &mut self.faults, sites::SVM_ROW_LOAD)?;
            source.load_row(i, &mut buf)
        });
        self.retries += retried.retries as u64;
        if let Err(e) = retried.result {
            // Graceful degradation: a row that persistently refuses to
            // load is recomputed from first principles. Only a failure
            // of the recompute path itself aborts training.
            source.recompute_row(i, &mut buf)?;
            self.recomputed += 1;
            if let Some(journal) = journal {
                journal
                    .event("row_recomputed")
                    .field_u64("row", i as u64)
                    .field_str("load_error", &e.to_string())
                    .log();
            }
        }

        if let Some(cap) = self.capacity {
            while self.rows.len() >= cap {
                let lru = self
                    .rows
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| *k)
                    .expect("non-empty cache at capacity");
                self.rows.remove(&lru);
                self.evictions += 1;
            }
        }
        let row = Arc::new(buf);
        self.rows.insert(i, (Arc::clone(&row), tick));
        Ok(row)
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec.

/// A decoded solver snapshot, minus the reconstructed rng.
struct Snapshot {
    alphas: Vec<f64>,
    bias: f64,
    errors: Vec<f64>,
    total_passes: usize,
    passes_without_progress: usize,
    rng_words: u64,
}

impl Snapshot {
    /// Rebuilds the full solver state: the rng is reseeded and advanced
    /// to the persisted word position, so the next fallback draw is the
    /// one the interrupted run would have made.
    fn into_state(self, seed: u64) -> SmoState {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..self.rng_words {
            rng.next_u32();
        }
        SmoState {
            alphas: self.alphas,
            bias: self.bias,
            errors: self.errors,
            passes_without_progress: self.passes_without_progress,
            total_passes: self.total_passes,
            rng,
        }
    }
}

/// A bounds-checked little-endian reader over a snapshot buffer. Every
/// read returns `None` once the buffer runs short, so the decoder
/// rejects truncated or mangled files by construction.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("take(8) is 8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

/// Outcome of a classified snapshot load.
enum CkptLoad {
    /// No snapshot file exists — cold start.
    Missing,
    /// A file existed but failed validation (torn, corrupted, truncated
    /// or written by a different job); it has been quarantined by
    /// deletion and the trainer cold-starts.
    Corrupt,
    /// The snapshot validated.
    Loaded(Box<Snapshot>),
}

/// The on-disk side of the trainer: one snapshot file per checkpoint
/// directory, bound to one job fingerprint.
struct TrainerCkpt {
    dir: PathBuf,
    fingerprint: u64,
    n: usize,
}

impl TrainerCkpt {
    /// Opens (or initializes) `dir`, sweeping torn temp files a SIGKILL
    /// mid-store left behind.
    fn open(dir: &Path, fingerprint: u64, n: usize) -> io::Result<TrainerCkpt> {
        fs::create_dir_all(dir)?;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') && name.ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(TrainerCkpt {
            dir: dir.to_path_buf(),
            fingerprint,
            n,
        })
    }

    fn path(&self) -> PathBuf {
        checkpoint_path(&self.dir)
    }

    fn encode(&self, st: &SmoState) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.n * 16);
        buf.extend_from_slice(CKPT_MAGIC);
        for v in [
            self.fingerprint,
            self.n as u64,
            st.total_passes as u64,
            st.passes_without_progress as u64,
            st.rng.word_pos() as u64,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&st.bias.to_bits().to_le_bytes());
        for v in st.alphas.iter().chain(st.errors.iter()) {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Persists the solver state. Write-to-temp-then-rename keeps the
    /// final name atomic under SIGKILL; the pid in the temp name keeps
    /// kill/resume cycles from colliding with their predecessors'
    /// debris (swept on the next open).
    fn store(&self, st: &SmoState) -> io::Result<()> {
        let buf = self.encode(st);
        let tmp = self
            .dir
            .join(format!(".trainer.{}.tmp", std::process::id()));
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, self.path())
    }

    /// Attempts to load and validate the snapshot. Anything that is not
    /// a pristine snapshot of *this* job classifies as `Corrupt` and is
    /// quarantined by deletion — the trainer cold-starts rather than
    /// resuming foreign or damaged state.
    fn load_classified(&self) -> io::Result<CkptLoad> {
        let path = self.path();
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CkptLoad::Missing),
            Err(e) => return Err(e),
        };
        match Self::decode_checked(&bytes, self.fingerprint, self.n) {
            Some(snap) => Ok(CkptLoad::Loaded(Box::new(snap))),
            None => {
                let _ = fs::remove_file(&path);
                Ok(CkptLoad::Corrupt)
            }
        }
    }

    /// The happy-path decoder: every read is bounds-checked through
    /// [`Cursor`], so any short or mangled buffer falls out as `None`.
    fn decode_checked(bytes: &[u8], fingerprint: u64, n: usize) -> Option<Snapshot> {
        let expected_len = 64usize.checked_add(n.checked_mul(16)?)?;
        if bytes.len() != expected_len {
            return None;
        }
        let mut c = Cursor::new(bytes);
        if c.take(8)? != CKPT_MAGIC {
            return None;
        }
        if c.u64()? != fingerprint {
            return None;
        }
        if c.u64()? as usize != n {
            return None;
        }
        let total_passes = c.u64()? as usize;
        let passes_without_progress = c.u64()? as usize;
        let rng_words = c.u64()?;
        let bias = c.f64()?;
        let mut alphas = Vec::with_capacity(n);
        for _ in 0..n {
            alphas.push(c.f64()?);
        }
        let mut errors = Vec::with_capacity(n);
        for _ in 0..n {
            errors.push(c.f64()?);
        }
        let sum = c.u64()?;
        if fnv1a64(&bytes[..expected_len - 8]) != sum {
            return None;
        }
        Some(Snapshot {
            alphas,
            bias,
            errors,
            total_passes,
            passes_without_progress,
            rng_words,
        })
    }
}

// ---------------------------------------------------------------------
// The trainer.

/// Why a crash-safe training run stopped short of a model.
#[derive(Debug)]
pub enum TrainError {
    /// An unrecoverable I/O failure: even the degraded paths (row
    /// recomputation, un-checkpointed training) could not proceed.
    Io(io::Error),
    /// The run consumed its `pass_budget` and parked its state in the
    /// checkpoint directory; resume by training again with the same
    /// configuration.
    Interrupted {
        /// Total passes completed (across all lives of this job).
        passes: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Io(e) => write!(f, "training I/O error: {e}"),
            TrainError::Interrupted { passes } => {
                write!(
                    f,
                    "training interrupted after {passes} passes (checkpointed)"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<io::Error> for TrainError {
    fn from(e: io::Error) -> Self {
        TrainError::Io(e)
    }
}

/// Everything a crash-safe training run is wired with. All knobs
/// default to off: a default-configured [`Trainer`] behaves exactly
/// like [`crate::train_svc`] plus a row cache of unbounded size.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Checkpoint directory; `None` disables persistence entirely.
    pub ckpt_dir: Option<PathBuf>,
    /// Passes between snapshots (floored at 1). The final state is
    /// always snapshotted on convergence, so a completed job's
    /// directory resumes straight to the finished model.
    pub ckpt_every: usize,
    /// Row-cache budget in bytes; `None` caches every row it touches.
    pub cache_budget: Option<usize>,
    /// Fingerprint of the kernel being trained on (e.g. the gram
    /// engine's job fingerprint); folded with labels and hyperparams
    /// into the snapshot-binding job fingerprint.
    pub kernel_fingerprint: u64,
    /// Armed fault plan for the `svm.*` sites.
    pub chaos: Chaos,
    /// Retry policy for checkpoint stores/loads and row loads.
    pub retry: RetryPolicy,
    /// Metrics registry to record into; `None` uses a private one.
    pub obs: Option<Obs>,
    /// Export directory: `svm_journal.jsonl` during the run and an
    /// `obs_svm.json` report when it ends (finished *or* interrupted).
    pub obs_dir: Option<PathBuf>,
    /// Artificial per-pass delay, for kill-window drills.
    pub throttle: Option<Duration>,
    /// Stop (checkpointed, with [`TrainError::Interrupted`]) after this
    /// many passes *in this run* — a deterministic stand-in for
    /// preemption in tests and drills.
    pub pass_budget: Option<usize>,
}

impl Default for TrainerConfig {
    fn default() -> TrainerConfig {
        TrainerConfig {
            ckpt_dir: None,
            ckpt_every: 1,
            cache_budget: None,
            kernel_fingerprint: 0,
            chaos: Chaos::disarmed(),
            retry: RetryPolicy::default(),
            obs: None,
            obs_dir: None,
            throttle: None,
            pass_budget: None,
        }
    }
}

/// Operational counters for one training run (this life only).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainerStats {
    /// Row-cache hits.
    pub cache_hits: u64,
    /// Row-cache misses (each one a `RowSource` load).
    pub cache_misses: u64,
    /// Rows evicted to stay under the byte budget.
    pub cache_evictions: u64,
    /// Rows recomputed after their loads persistently failed.
    pub rows_recomputed: u64,
    /// Row-load retry attempts beyond the first.
    pub row_retries: u64,
    /// Checkpoint store/load retry attempts beyond the first.
    pub ckpt_retries: u64,
    /// Snapshots successfully persisted.
    pub ckpt_stores: u64,
    /// Faults the chaos plan injected at `svm.*` sites.
    pub faults_injected: u64,
    /// Whether checkpointing degraded to off after persistent store
    /// failures (training still completed).
    pub degraded: bool,
}

/// A finished crash-safe training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained model — bitwise identical to what an uninterrupted
    /// [`crate::train_svc`] run over the same kernel produces.
    pub model: TrainedSvm,
    /// `Some(pass)` when the run warm-started from a snapshot taken at
    /// that pass count; `None` for a cold start.
    pub resumed_from_pass: Option<usize>,
    /// Operational counters for this life of the job.
    pub stats: TrainerStats,
}

/// Recovery bookkeeping outside the row cache.
#[derive(Default)]
struct Recovery {
    faults: u64,
    ckpt_retries: u64,
    ckpt_stores: u64,
    resumes: u64,
    degraded: bool,
}

/// Evaluates the trainer's chaos gate at `site`: counts the injection,
/// then acts the fault out — a stall sleeps in place, a panic unwinds,
/// and an I/O fault surfaces as an error for the retry policy to chew
/// on. Disarmed plans make this a single branch.
fn chaos_gate(chaos: &Chaos, faults: &mut u64, site: &str) -> io::Result<()> {
    match chaos.check(site) {
        None => Ok(()),
        Some(Fault::Stall(d)) => {
            *faults += 1;
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::Panic) => {
            *faults += 1;
            panic!("chaos: injected panic at {site}");
        }
        Some(Fault::Io) => {
            *faults += 1;
            Err(Fault::io_error(site))
        }
    }
}

/// The crash-safe SMO training engine. See the module docs for the
/// recovery model; see [`TrainerConfig`] for the knobs.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Builds a trainer from its configuration.
    pub fn new(cfg: TrainerConfig) -> Trainer {
        Trainer { cfg }
    }

    /// Opens the lifecycle journal under `obs_dir`. Export is
    /// best-effort: an unwritable directory degrades to an un-journaled
    /// run rather than failing training.
    fn open_journal(&self) -> Option<Journal> {
        let dir = self.cfg.obs_dir.as_ref()?;
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("qk-svm: journal disabled ({}): {e}", dir.display());
            return None;
        }
        match Journal::open(&dir.join("svm_journal.jsonl")) {
            Ok(journal) => Some(journal),
            Err(e) => {
                eprintln!("qk-svm: journal disabled ({}): {e}", dir.display());
                None
            }
        }
    }

    /// Trains a C-SVC over `source`, checkpointing and recovering as
    /// configured.
    ///
    /// # Panics
    /// Panics on the same degenerate inputs as [`crate::train_svc`],
    /// and propagates chaos-injected panics.
    pub fn train<S: RowSource + ?Sized>(
        &self,
        source: &S,
        labels: &[f64],
        params: &SmoParams,
    ) -> Result<TrainOutcome, TrainError> {
        let n = source.order();
        validate_inputs(n, labels, params);
        let fingerprint = job_fingerprint(self.cfg.kernel_fingerprint, labels, params);

        let obs = match &self.cfg.obs {
            Some(obs) => obs.clone(),
            None => Obs::new(),
        };
        let journal = self.open_journal();
        let train_span = obs.span("smo_train");
        if let Some(journal) = &journal {
            journal
                .event("trainer_start")
                .field_u64("n", n as u64)
                .field_u64("seed", params.seed)
                .field_u64("fingerprint", fingerprint)
                .log();
        }

        let mut rec = Recovery::default();
        let mut cache = RowCache::new(n, self.cfg.cache_budget);

        let result = self.run(
            source,
            labels,
            params,
            fingerprint,
            &obs,
            journal.as_ref(),
            &mut rec,
            &mut cache,
        );

        // Mirror the run's recovery and cache activity into the shared
        // registry and export — for finished *and* failed runs, so a
        // drill that interrupts training still sees its counters.
        let stats = TrainerStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            rows_recomputed: cache.recomputed,
            row_retries: cache.retries,
            ckpt_retries: rec.ckpt_retries,
            ckpt_stores: rec.ckpt_stores,
            faults_injected: rec.faults + cache.faults,
            degraded: rec.degraded,
        };
        obs.counter("svm.faults_injected")
            .add(stats.faults_injected);
        obs.counter("svm.ckpt.retries").add(stats.ckpt_retries);
        obs.counter("svm.row.retries").add(stats.row_retries);
        obs.counter("svm.rows_recomputed")
            .add(stats.rows_recomputed);
        obs.counter("svm.resumes").add(rec.resumes);
        obs.counter("svm.cache.hits").add(stats.cache_hits);
        obs.counter("svm.cache.misses").add(stats.cache_misses);
        obs.counter("svm.cache.evictions")
            .add(stats.cache_evictions);
        if let Some(journal) = &journal {
            if let Err(e) = journal.flush() {
                eprintln!("qk-svm: journal flush failed: {e}");
            }
        }
        drop(train_span);
        if let Some(dir) = &self.cfg.obs_dir {
            if let Err(e) = fs::create_dir_all(dir)
                .and_then(|()| obs.report("svm").write_json(&dir.join("obs_svm.json")))
            {
                eprintln!("qk-svm: obs report export failed ({}): {e}", dir.display());
            }
        }

        result.map(|outcome| TrainOutcome { stats, ..outcome })
    }

    /// The resumable training loop proper; `train` wraps it so counters
    /// are mirrored and reports exported on every exit path.
    #[allow(clippy::too_many_arguments)]
    fn run<S: RowSource + ?Sized>(
        &self,
        source: &S,
        labels: &[f64],
        params: &SmoParams,
        fingerprint: u64,
        obs: &Obs,
        journal: Option<&Journal>,
        rec: &mut Recovery,
        cache: &mut RowCache,
    ) -> Result<TrainOutcome, TrainError> {
        let n = labels.len();
        let ckpt = match &self.cfg.ckpt_dir {
            Some(dir) => Some(TrainerCkpt::open(dir, fingerprint, n)?),
            None => None,
        };

        let mut resumed_from = None;
        let mut st = match ckpt
            .as_ref()
            .and_then(|ckpt| self.load_snapshot(ckpt, rec, journal))
        {
            Some(snap) => {
                let pass = snap.total_passes;
                rec.resumes += 1;
                resumed_from = Some(pass);
                if let Some(journal) = journal {
                    journal
                        .event("trainer_resumed")
                        .field_u64("pass", pass as u64)
                        .log();
                }
                snap.into_state(params.seed)
            }
            None => SmoState::fresh(labels, params.seed),
        };

        let pass_counter = obs.counter("svm.smo_passes");
        let update_counter = obs.counter("svm.smo_updates");
        let ckpt_every = self.cfg.ckpt_every.max(1);
        let mut passes_this_run = 0usize;

        while st.should_continue(params) {
            if let Some(budget) = self.cfg.pass_budget {
                if passes_this_run >= budget {
                    if let Some(ckpt) = &ckpt {
                        self.store_snapshot(ckpt, &st, rec, journal);
                    }
                    if let Some(journal) = journal {
                        journal
                            .event("trainer_interrupted")
                            .field_u64("pass", st.total_passes as u64)
                            .log();
                    }
                    return Err(TrainError::Interrupted {
                        passes: st.total_passes,
                    });
                }
            }
            if let Some(d) = self.cfg.throttle {
                std::thread::sleep(d);
            }
            let _pass_span = obs.span("pass");
            let changed = pass_over(labels, params.c, params.tol, &mut st, |i, j| {
                let ki = cache.get(source, i, &self.cfg.chaos, &self.cfg.retry, journal)?;
                let kj = cache.get(source, j, &self.cfg.chaos, &self.cfg.retry, journal)?;
                Ok::<_, io::Error>((RowRef(ki), RowRef(kj)))
            })?;
            st.record_pass(changed);
            passes_this_run += 1;
            pass_counter.inc();
            update_counter.add(changed as u64);
            if let Some(journal) = journal {
                journal
                    .event("smo_pass")
                    .field_u64("pass", st.total_passes as u64)
                    .field_u64("changed", changed as u64)
                    .log();
            }
            if let Some(ckpt) = &ckpt {
                if st.total_passes % ckpt_every == 0 {
                    self.store_snapshot(ckpt, &st, rec, journal);
                }
            }
        }

        // Final snapshot: a kill *after* convergence resumes straight
        // to the finished model instead of retraining.
        if let Some(ckpt) = &ckpt {
            self.store_snapshot(ckpt, &st, rec, journal);
        }

        let model = st.into_model(labels);
        if let Some(journal) = journal {
            journal
                .event("trainer_done")
                .field_u64("passes", model.passes as u64)
                .field_u64("support_vectors", model.support_indices().len() as u64)
                .log();
        }
        Ok(TrainOutcome {
            model,
            resumed_from_pass: resumed_from,
            stats: TrainerStats::default(),
        })
    }

    /// Retried, chaos-gated snapshot load; any persistent failure falls
    /// back to a cold start.
    fn load_snapshot(
        &self,
        ckpt: &TrainerCkpt,
        rec: &mut Recovery,
        journal: Option<&Journal>,
    ) -> Option<Box<Snapshot>> {
        let retried = self.cfg.retry.run(|| {
            chaos_gate(&self.cfg.chaos, &mut rec.faults, sites::SVM_CKPT_LOAD)?;
            ckpt.load_classified()
        });
        rec.ckpt_retries += retried.retries as u64;
        match retried.result {
            Ok(CkptLoad::Loaded(snap)) => Some(snap),
            Ok(CkptLoad::Missing) => None,
            Ok(CkptLoad::Corrupt) => {
                if let Some(journal) = journal {
                    journal.event("ckpt_rejected").log();
                }
                None
            }
            Err(e) => {
                eprintln!("qk-svm: checkpoint load failed, cold-starting: {e}");
                if let Some(journal) = journal {
                    journal
                        .event("ckpt_load_failed")
                        .field_str("error", &e.to_string())
                        .log();
                }
                None
            }
        }
    }

    /// Retried, chaos-gated snapshot store; persistent failure degrades
    /// checkpointing to off for the rest of the run (training proceeds,
    /// crash-safety is lost until the next life).
    fn store_snapshot(
        &self,
        ckpt: &TrainerCkpt,
        st: &SmoState,
        rec: &mut Recovery,
        journal: Option<&Journal>,
    ) {
        if rec.degraded {
            return;
        }
        let retried = self.cfg.retry.run(|| {
            chaos_gate(&self.cfg.chaos, &mut rec.faults, sites::SVM_CKPT_STORE)?;
            ckpt.store(st)
        });
        rec.ckpt_retries += retried.retries as u64;
        match retried.result {
            Ok(()) => {
                rec.ckpt_stores += 1;
                if let Some(journal) = journal {
                    journal
                        .event("ckpt_stored")
                        .field_u64("pass", st.total_passes as u64)
                        .log();
                }
            }
            Err(e) => {
                rec.degraded = true;
                eprintln!("qk-svm: checkpointing degraded to off: {e}");
                if let Some(journal) = journal {
                    journal
                        .event("ckpt_degraded")
                        .field_str("error", &e.to_string())
                        .log();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelMatrix;
    use crate::smo::train_svc;
    use qk_chaos::FaultPlan;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qk-svm-trainer-{}-{tag}-{id}", std::process::id()))
    }

    /// FNV-1a 64 reference vectors — the private copy must match the
    /// published constants (and qk-gram's implementation).
    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    /// A mildly noisy problem that takes a handful of passes, so
    /// interrupt/resume has room to land mid-run.
    fn problem(n: usize) -> (KernelMatrix, Vec<f64>) {
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    ((i * 37) % 13) as f64 / 6.0 - 1.0,
                    ((i * 11) % 7) as f64 / 3.5,
                ]
            })
            .collect();
        let labels: Vec<f64> = (0..n)
            .map(|i| if (i * 17) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let k = KernelMatrix::from_fn(n, |i, j| {
            let d2: f64 = pts[i]
                .iter()
                .zip(&pts[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (-0.7 * d2).exp()
        });
        (k, labels)
    }

    fn assert_models_bitwise_equal(a: &TrainedSvm, b: &TrainedSvm) {
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.bias.to_bits(), b.bias.to_bits());
        assert_eq!(a.alphas.len(), b.alphas.len());
        for (x, y) in a.alphas.iter().zip(&b.alphas) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The trainer with everything off is train_svc, bit for bit.
    #[test]
    fn trainer_matches_train_svc_bitwise() {
        let (k, y) = problem(24);
        let params = SmoParams::with_c(1.5);
        let reference = train_svc(&k, &y, &params);
        let outcome = Trainer::default().train(&k, &y, &params).unwrap();
        assert_models_bitwise_equal(&outcome.model, &reference);
        assert_eq!(outcome.resumed_from_pass, None);
        assert_eq!(outcome.stats.rows_recomputed, 0);
        assert!(outcome.stats.cache_hits > 0);
    }

    /// A tight cache budget forces evictions without changing a bit of
    /// the model.
    #[test]
    fn budgeted_cache_degrades_gracefully_not_numerically() {
        let (k, y) = problem(24);
        let params = SmoParams::with_c(1.5);
        let reference = train_svc(&k, &y, &params);
        let trainer = Trainer::new(TrainerConfig {
            // Room for 3 rows of 24 f64s.
            cache_budget: Some(3 * 24 * 8),
            ..TrainerConfig::default()
        });
        let outcome = trainer.train(&k, &y, &params).unwrap();
        assert_models_bitwise_equal(&outcome.model, &reference);
        assert!(outcome.stats.cache_evictions > 0, "budget must bind");
    }

    /// Interrupt at every possible pass boundary; each resume must
    /// reconverge to the uninterrupted model, bit for bit.
    #[test]
    fn interrupt_and_resume_is_bitwise_identical() {
        let (k, y) = problem(24);
        let params = SmoParams::with_c(1.5);
        let reference = train_svc(&k, &y, &params);
        for budget in [0usize, 1, 2, 3, 5] {
            let dir = scratch(&format!("resume{budget}"));
            let interrupted = Trainer::new(TrainerConfig {
                ckpt_dir: Some(dir.clone()),
                pass_budget: Some(budget),
                ..TrainerConfig::default()
            })
            .train(&k, &y, &params);
            match interrupted {
                Err(TrainError::Interrupted { passes }) => assert_eq!(passes, budget),
                other => panic!("expected interruption, got {other:?}"),
            }
            let resumed = Trainer::new(TrainerConfig {
                ckpt_dir: Some(dir.clone()),
                ..TrainerConfig::default()
            })
            .train(&k, &y, &params)
            .unwrap();
            assert_models_bitwise_equal(&resumed.model, &reference);
            if budget > 0 {
                assert_eq!(resumed.resumed_from_pass, Some(budget));
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    /// Resuming a *finished* job loads the final snapshot and returns
    /// the model without retraining.
    #[test]
    fn resume_of_finished_job_is_instant_and_identical() {
        let (k, y) = problem(24);
        let params = SmoParams::with_c(1.5);
        let dir = scratch("finished");
        let cfg = TrainerConfig {
            ckpt_dir: Some(dir.clone()),
            ..TrainerConfig::default()
        };
        let first = Trainer::new(cfg.clone()).train(&k, &y, &params).unwrap();
        let second = Trainer::new(cfg).train(&k, &y, &params).unwrap();
        assert_models_bitwise_equal(&second.model, &first.model);
        assert_eq!(second.resumed_from_pass, Some(first.model.passes));
        let _ = fs::remove_dir_all(&dir);
    }

    /// A snapshot written by a different job (same shape, different C)
    /// must be rejected and cold-started, not resumed.
    #[test]
    fn foreign_snapshot_forces_cold_start() {
        let (k, y) = problem(24);
        let dir = scratch("foreign");
        let cfg = TrainerConfig {
            ckpt_dir: Some(dir.clone()),
            ..TrainerConfig::default()
        };
        Trainer::new(cfg.clone())
            .train(&k, &y, &SmoParams::with_c(0.7))
            .unwrap();
        let params = SmoParams::with_c(1.5);
        let reference = train_svc(&k, &y, &params);
        let outcome = Trainer::new(cfg).train(&k, &y, &params).unwrap();
        assert_eq!(outcome.resumed_from_pass, None, "foreign snapshot resumed");
        assert_models_bitwise_equal(&outcome.model, &reference);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Chaos drill: transient store faults, a persistent load fault and
    /// a burst of row-load faults are all recovered, counted, and leave
    /// the model untouched.
    #[test]
    fn chaos_faults_are_recovered_with_identical_model() {
        let (k, y) = problem(24);
        let params = SmoParams::with_c(1.5);
        let reference = train_svc(&k, &y, &params);
        let dir = scratch("chaos");
        // Seed a snapshot so the load site has something to chew on.
        Trainer::new(TrainerConfig {
            ckpt_dir: Some(dir.clone()),
            pass_budget: Some(2),
            ..TrainerConfig::default()
        })
        .train(&k, &y, &params)
        .ok();
        // The first row load sees 5 consecutive faults — more than the
        // 4 attempts the default retry policy makes — so it must fall
        // back to recomputation; the next load's single leftover fault
        // is absorbed by a retry.
        let plan = FaultPlan::parse(
            7,
            "svm.ckpt.store=io@first:2,svm.ckpt.load=io@from:0,svm.row.load=io@first:5",
        )
        .unwrap();
        let outcome = Trainer::new(TrainerConfig {
            ckpt_dir: Some(dir.clone()),
            chaos: plan.arm(),
            ..TrainerConfig::default()
        })
        .train(&k, &y, &params)
        .unwrap();
        // The persistent load fault forced a cold start...
        assert_eq!(outcome.resumed_from_pass, None);
        // ...yet every recovery path fired and the model is pristine.
        assert!(outcome.stats.faults_injected > 0);
        assert!(outcome.stats.ckpt_retries > 0);
        assert!(outcome.stats.rows_recomputed > 0);
        assert_models_bitwise_equal(&outcome.model, &reference);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Persistent store faults degrade checkpointing to off; training
    /// still completes with the right model.
    #[test]
    fn persistent_store_faults_degrade_not_abort() {
        let (k, y) = problem(24);
        let params = SmoParams::with_c(1.5);
        let reference = train_svc(&k, &y, &params);
        let dir = scratch("degraded");
        let plan = FaultPlan::parse(3, "svm.ckpt.store=io@from:0").unwrap();
        let outcome = Trainer::new(TrainerConfig {
            ckpt_dir: Some(dir.clone()),
            chaos: plan.arm(),
            ..TrainerConfig::default()
        })
        .train(&k, &y, &params)
        .unwrap();
        assert!(outcome.stats.degraded);
        assert_eq!(outcome.stats.ckpt_stores, 0);
        assert_models_bitwise_equal(&outcome.model, &reference);
        assert!(
            !checkpoint_path(&dir).exists(),
            "no snapshot can land when every store faults"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// The recovery counters land in the shared registry under the
    /// names the obs schema gate requires, and are pre-registered (zero
    /// on clean runs).
    #[test]
    fn recovery_counters_are_registered() {
        let (k, y) = problem(12);
        let obs = Obs::new();
        Trainer::new(TrainerConfig {
            obs: Some(obs.clone()),
            ..TrainerConfig::default()
        })
        .train(&k, &y, &SmoParams::with_c(1.0))
        .unwrap();
        let snap = obs.registry_snapshot();
        for name in [
            "svm.faults_injected",
            "svm.ckpt.retries",
            "svm.row.retries",
            "svm.rows_recomputed",
            "svm.resumes",
        ] {
            assert_eq!(snap.counters.get(name), Some(&0), "{name}");
        }
        assert!(snap.counters["svm.cache.misses"] > 0);
    }

    /// Torn temp files from a previous life are swept on open.
    #[test]
    fn torn_temps_are_swept() {
        let (k, y) = problem(12);
        let params = SmoParams::with_c(1.0);
        let dir = scratch("sweep");
        fs::create_dir_all(&dir).unwrap();
        let torn = dir.join(".trainer.12345.tmp");
        fs::write(&torn, b"half-written").unwrap();
        Trainer::new(TrainerConfig {
            ckpt_dir: Some(dir.clone()),
            ..TrainerConfig::default()
        })
        .train(&k, &y, &params)
        .unwrap();
        assert!(!torn.exists(), "torn temp must be swept");
        let _ = fs::remove_dir_all(&dir);
    }
}
