//! Kernel matrix containers.
//!
//! The quantum-kernel pipeline produces a symmetric Gram matrix on the
//! training set (eq. 1) and a rectangular matrix of test-against-train
//! entries for inference; both are stored dense and row-major.

use serde::{Deserialize, Serialize};

/// Read access to a symmetric kernel, however it is stored.
///
/// The SMO solver only ever reads single entries and whole rows, so any
/// backing layout that can serve a contiguous row slice — the dense
/// [`KernelMatrix`], or an externally assembled view like `qk-gram`'s
/// `TiledKernel` — can train an SVM directly, without copying itself
/// into a `KernelMatrix` first.
pub trait KernelSource {
    /// Matrix order `n`.
    fn order(&self) -> usize;
    /// Entry `K[i][j]`.
    fn entry(&self, i: usize, j: usize) -> f64;
    /// Row `i` as a contiguous slice of length `n`.
    fn row(&self, i: usize) -> &[f64];
}

impl KernelSource for KernelMatrix {
    fn order(&self) -> usize {
        self.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }

    fn row(&self, i: usize) -> &[f64] {
        KernelMatrix::row(self, i)
    }
}

/// A symmetric positive semi-definite kernel (Gram) matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelMatrix {
    n: usize,
    data: Vec<f64>,
}

impl KernelMatrix {
    /// Builds from a dense row-major `n x n` buffer.
    ///
    /// # Panics
    /// Panics if the length is not `n * n`.
    pub fn from_dense(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "kernel matrix must be n x n");
        KernelMatrix { n, data }
    }

    /// Builds by evaluating `f(i, j)` on the upper triangle and mirroring.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                data[i * n + j] = v;
                data[j * n + i] = v;
            }
        }
        KernelMatrix { n, data }
    }

    /// Matrix order.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the 0x0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry `K[i][j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Maximum asymmetry `|K[i][j] - K[j][i]|`; a health check for kernels
    /// assembled from independently computed tiles.
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// Mean of the off-diagonal entries — the quantity that collapses
    /// under kernel concentration (Table III's failure mode).
    pub fn off_diagonal_mean(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    acc += self.get(i, j);
                }
            }
        }
        acc / (self.n * (self.n - 1)) as f64
    }

    /// Variance of the off-diagonal entries.
    pub fn off_diagonal_variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mean = self.off_diagonal_mean();
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let d = self.get(i, j) - mean;
                    acc += d * d;
                }
            }
        }
        acc / (self.n * (self.n - 1)) as f64
    }
}

/// A rectangular kernel block: rows are test points, columns train points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelBlock {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl KernelBlock {
    /// Builds from a dense row-major buffer.
    pub fn from_dense(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "kernel block size mismatch");
        KernelBlock { rows, cols, data }
    }

    /// Builds by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                data[i * cols + j] = f(i, j);
            }
        }
        KernelBlock { rows, cols, data }
    }

    /// Number of rows (test points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (train points).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice of train-kernel values.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_is_symmetric() {
        let k = KernelMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        // Only the upper triangle is evaluated; the result must be
        // symmetric regardless of f's asymmetry.
        assert_eq!(k.get(2, 1), k.get(1, 2));
        assert_eq!(k.max_asymmetry(), 0.0);
    }

    #[test]
    fn rows_and_entries() {
        let k = KernelMatrix::from_dense(2, vec![1.0, 0.5, 0.5, 1.0]);
        assert_eq!(k.len(), 2);
        assert_eq!(k.get(0, 1), 0.5);
        assert_eq!(k.row(1), &[0.5, 1.0]);
    }

    #[test]
    fn off_diagonal_stats() {
        let k = KernelMatrix::from_dense(2, vec![1.0, 0.3, 0.3, 1.0]);
        assert!((k.off_diagonal_mean() - 0.3).abs() < 1e-12);
        assert!(k.off_diagonal_variance() < 1e-12);
        // Off-diagonal entries {0, 1, 0, 0, 1, 0}: mean 1/3, var 2/9.
        let k2 = KernelMatrix::from_dense(3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert!((k2.off_diagonal_mean() - 1.0 / 3.0).abs() < 1e-12);
        assert!((k2.off_diagonal_variance() - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_detected() {
        let k = KernelMatrix::from_dense(2, vec![1.0, 0.4, 0.6, 1.0]);
        assert!((k.max_asymmetry() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn block_shape_and_rows() {
        let b = KernelBlock::from_fn(2, 3, |i, j| (i + j) as f64);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_block_panics() {
        KernelBlock::from_dense(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn kernel_matrix_implements_kernel_source() {
        let k = KernelMatrix::from_fn(3, |i, j| (i + j) as f64);
        let src: &dyn KernelSource = &k;
        assert_eq!(src.order(), 3);
        assert_eq!(src.entry(1, 2), k.get(1, 2));
        assert_eq!(src.row(2), k.row(2));
    }
}
