//! Stratified k-fold cross-validation on precomputed kernels.
//!
//! The paper selects the SVM regularization constant by sweeping
//! `C ∈ [0.01, 4]` against a held-out split. Cross-validation is the
//! standard refinement: the Gram matrix is computed *once* (the expensive
//! quantum part) and each fold trains on a principal submatrix — no
//! re-simulation is ever needed, which is exactly the economy the
//! precomputed-kernel workflow buys.

use crate::kernel::{KernelBlock, KernelMatrix};
use crate::metrics::Metrics;
use crate::smo::{train_svc, SmoParams};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

impl KernelMatrix {
    /// Principal submatrix on the given indices (training kernel of a
    /// fold).
    pub fn submatrix(&self, indices: &[usize]) -> KernelMatrix {
        let k = indices.len();
        let mut data = Vec::with_capacity(k * k);
        for &i in indices {
            for &j in indices {
                data.push(self.get(i, j));
            }
        }
        KernelMatrix::from_dense(k, data)
    }

    /// Rectangular cross block `rows x cols` (evaluation kernel of a
    /// fold: validation rows against training columns).
    pub fn cross_block(&self, rows: &[usize], cols: &[usize]) -> KernelBlock {
        let mut data = Vec::with_capacity(rows.len() * cols.len());
        for &i in rows {
            for &j in cols {
                data.push(self.get(i, j));
            }
        }
        KernelBlock::from_dense(rows.len(), cols.len(), data)
    }
}

/// Index sets of one cross-validation fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training indices into the original kernel/labels.
    pub train: Vec<usize>,
    /// Validation indices.
    pub validation: Vec<usize>,
}

/// Builds `k` stratified folds: each class is shuffled (seeded) and dealt
/// round-robin, so every fold has the same class ratio up to rounding.
///
/// # Panics
/// Panics if `k < 2` or `k` exceeds the size of either class.
pub fn stratified_folds(labels: &[f64], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "need at least two folds");
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] > 0.0).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] <= 0.0).collect();
    assert!(
        pos.len() >= k && neg.len() >= k,
        "each class needs at least k = {k} members (have {} / {})",
        pos.len(),
        neg.len()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    let mut validation: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (slot, &idx) in pos.iter().enumerate() {
        validation[slot % k].push(idx);
    }
    for (slot, &idx) in neg.iter().enumerate() {
        validation[slot % k].push(idx);
    }

    (0..k)
        .map(|f| {
            let mut val = validation[f].clone();
            val.sort_unstable();
            let in_val: std::collections::HashSet<usize> = val.iter().copied().collect();
            let train: Vec<usize> = (0..labels.len()).filter(|i| !in_val.contains(i)).collect();
            Fold {
                train,
                validation: val,
            }
        })
        .collect()
}

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Validation metrics per fold.
    pub fold_metrics: Vec<Metrics>,
    /// Mean of the fold metrics.
    pub mean: Metrics,
    /// Standard deviation of the per-fold AUC (spread indicator).
    pub auc_std: f64,
}

/// Runs stratified k-fold cross-validation of a C-SVC on a precomputed
/// kernel.
pub fn cross_validate(
    kernel: &KernelMatrix,
    labels: &[f64],
    params: &SmoParams,
    k: usize,
    seed: u64,
) -> CvResult {
    assert_eq!(kernel.len(), labels.len(), "kernel/label size mismatch");
    let folds = stratified_folds(labels, k, seed);
    let fold_metrics: Vec<Metrics> = folds
        .iter()
        .map(|fold| {
            let train_kernel = kernel.submatrix(&fold.train);
            let train_labels: Vec<f64> = fold.train.iter().map(|&i| labels[i]).collect();
            let model = train_svc(&train_kernel, &train_labels, params);

            let eval = kernel.cross_block(&fold.validation, &fold.train);
            let scores: Vec<f64> = (0..eval.rows())
                .map(|r| model.decision_value(eval.row(r)))
                .collect();
            let val_labels: Vec<f64> = fold.validation.iter().map(|&i| labels[i]).collect();
            Metrics::compute(&scores, &val_labels)
        })
        .collect();

    let mean = Metrics::mean(&fold_metrics);
    let auc_var = fold_metrics
        .iter()
        .map(|m| (m.auc - mean.auc).powi(2))
        .sum::<f64>()
        / fold_metrics.len() as f64;
    CvResult {
        fold_metrics,
        mean,
        auc_std: auc_var.sqrt(),
    }
}

/// Cross-validated C selection: runs [`cross_validate`] for every C in
/// the grid and returns `(best_c, results)` where best maximizes mean
/// validation AUC.
pub fn select_c_by_cv(
    kernel: &KernelMatrix,
    labels: &[f64],
    c_grid: &[f64],
    base: &SmoParams,
    k: usize,
    seed: u64,
) -> (f64, Vec<(f64, CvResult)>) {
    assert!(!c_grid.is_empty(), "empty C grid");
    let results: Vec<(f64, CvResult)> = c_grid
        .iter()
        .map(|&c| {
            let params = SmoParams { c, ..*base };
            (c, cross_validate(kernel, labels, &params, k, seed))
        })
        .collect();
    let best_c = results
        .iter()
        .max_by(|a, b| a.1.mean.auc.partial_cmp(&b.1.mean.auc).unwrap())
        .map(|(c, _)| *c)
        .expect("non-empty grid");
    (best_c, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block kernel with strong within-class similarity: class of index i
    /// is +1 for even i. Cross-class similarity is low.
    fn separable_problem(n: usize) -> (KernelMatrix, Vec<f64>) {
        let labels: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let kernel = KernelMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else if labels[i] == labels[j] {
                0.8 + 0.01 * ((i * j) % 7) as f64
            } else {
                0.1 + 0.01 * ((i + j) % 5) as f64
            }
        });
        (kernel, labels)
    }

    #[test]
    fn submatrix_and_cross_block_extract_entries() {
        // from_fn mirrors the upper triangle, so K[i][j] = min*10 + max.
        let kernel = KernelMatrix::from_fn(5, |i, j| (i * 10 + j) as f64);
        let sub = kernel.submatrix(&[1, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0, 0), 11.0);
        assert_eq!(sub.get(0, 1), 13.0);
        assert_eq!(sub.get(1, 0), 13.0);
        assert_eq!(sub.get(1, 1), 33.0);
        let block = kernel.cross_block(&[0, 4], &[2]);
        assert_eq!(block.rows(), 2);
        assert_eq!(block.cols(), 1);
        assert_eq!(block.row(0)[0], 2.0);
        assert_eq!(block.row(1)[0], 24.0);
    }

    #[test]
    fn folds_partition_and_stratify() {
        let labels: Vec<f64> = (0..30).map(|i| if i < 12 { 1.0 } else { -1.0 }).collect();
        let folds = stratified_folds(&labels, 3, 7);
        assert_eq!(folds.len(), 3);
        let mut all_val: Vec<usize> = Vec::new();
        for fold in &folds {
            // Disjoint and complementary.
            assert_eq!(fold.train.len() + fold.validation.len(), 30);
            for &v in &fold.validation {
                assert!(!fold.train.contains(&v));
            }
            all_val.extend(&fold.validation);
            // Stratification: 12 positives over 3 folds -> 4 each;
            // 18 negatives -> 6 each.
            let pos = fold.validation.iter().filter(|&&i| labels[i] > 0.0).count();
            assert_eq!(pos, 4);
            assert_eq!(fold.validation.len(), 10);
        }
        all_val.sort_unstable();
        assert_eq!(all_val, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_seed_deterministic() {
        let labels: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let a = stratified_folds(&labels, 4, 11);
        let b = stratified_folds(&labels, 4, 11);
        let c = stratified_folds(&labels, 4, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cv_on_separable_kernel_scores_high() {
        let (kernel, labels) = separable_problem(24);
        let result = cross_validate(&kernel, &labels, &SmoParams::with_c(1.0), 4, 3);
        assert_eq!(result.fold_metrics.len(), 4);
        assert!(result.mean.auc > 0.95, "mean AUC {}", result.mean.auc);
        assert!(result.auc_std < 0.2);
    }

    #[test]
    fn cv_on_uninformative_kernel_is_chance_level() {
        let n = 24;
        let labels: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        // Constant kernel carries no information.
        let kernel = KernelMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { 0.5 });
        let result = cross_validate(&kernel, &labels, &SmoParams::with_c(1.0), 4, 3);
        assert!(
            (result.mean.auc - 0.5).abs() < 0.25,
            "uninformative kernel gave AUC {}",
            result.mean.auc
        );
    }

    #[test]
    fn select_c_prefers_better_c() {
        let (kernel, labels) = separable_problem(24);
        let (best_c, results) =
            select_c_by_cv(&kernel, &labels, &[0.01, 1.0], &SmoParams::default(), 3, 5);
        assert_eq!(results.len(), 2);
        let best = results.iter().find(|(c, _)| *c == best_c).unwrap();
        for (_, r) in &results {
            assert!(best.1.mean.auc >= r.mean.auc - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn too_few_class_members_panics() {
        let labels = [1.0, -1.0, -1.0, -1.0];
        stratified_folds(&labels, 2, 0);
    }
}
