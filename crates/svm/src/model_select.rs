//! Regularization sweep: the paper trains one SVM per value of `C` in
//! `[0.01, 4]` and reports the best-AUC configuration per experiment.

use crate::kernel::{KernelBlock, KernelMatrix};
use crate::metrics::Metrics;
use crate::smo::{train_svc, SmoParams, TrainedSvm};
use serde::{Deserialize, Serialize};

/// The paper's regularization grid over `[0.01, 4]`.
pub fn default_c_grid() -> Vec<f64> {
    vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0]
}

/// Result of training and evaluating at one `C`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Regularization coefficient.
    pub c: f64,
    /// Metrics on the test set.
    pub test: Metrics,
    /// Metrics on the training set (overfitting diagnostics, Fig. 9).
    pub train: Metrics,
}

/// Full sweep output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// One entry per grid value, in grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The grid point with the highest test AUC.
    pub fn best_by_test_auc(&self) -> &SweepPoint {
        self.points
            .iter()
            .max_by(|a, b| a.test.auc.partial_cmp(&b.test.auc).unwrap())
            .expect("sweep produced no points")
    }
}

/// Trains on `train_kernel` and evaluates train/test metrics for every `C`
/// in the grid.
///
/// `test_kernel` rows are test points against all training points.
pub fn sweep_c(
    train_kernel: &KernelMatrix,
    train_labels: &[f64],
    test_kernel: &KernelBlock,
    test_labels: &[f64],
    grid: &[f64],
    tol: f64,
) -> SweepResult {
    assert_eq!(
        test_kernel.cols(),
        train_kernel.len(),
        "kernel shape mismatch"
    );
    assert_eq!(
        test_kernel.rows(),
        test_labels.len(),
        "test label count mismatch"
    );
    let points = grid
        .iter()
        .map(|&c| {
            let params = SmoParams {
                c,
                tol,
                ..SmoParams::default()
            };
            let model = train_svc(train_kernel, train_labels, &params);
            SweepPoint {
                c,
                test: evaluate_block(&model, test_kernel, test_labels),
                train: evaluate_gram(&model, train_kernel, train_labels),
            }
        })
        .collect();
    SweepResult { points }
}

/// Metrics of a trained model on the training Gram matrix itself.
pub fn evaluate_gram(model: &TrainedSvm, kernel: &KernelMatrix, labels: &[f64]) -> Metrics {
    let scores: Vec<f64> = (0..kernel.len())
        .map(|i| model.decision_value(kernel.row(i)))
        .collect();
    Metrics::compute(&scores, labels)
}

/// Metrics of a trained model on a rectangular test kernel block.
pub fn evaluate_block(model: &TrainedSvm, block: &KernelBlock, labels: &[f64]) -> Metrics {
    let scores: Vec<f64> = (0..block.rows())
        .map(|i| model.decision_value(block.row(i)))
        .collect();
    Metrics::compute(&scores, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_problem() -> (KernelMatrix, Vec<f64>, KernelBlock, Vec<f64>) {
        // 1-D separable: train at +-{1, 2}, test at +-1.5.
        let train_pts = [-2.0, -1.0, 1.0, 2.0];
        let train_y = vec![-1.0, -1.0, 1.0, 1.0];
        let test_pts = [-1.5, 1.5];
        let test_y = vec![-1.0, 1.0];
        let k = KernelMatrix::from_fn(4, |i, j| train_pts[i] * train_pts[j]);
        let b = KernelBlock::from_fn(2, 4, |i, j| test_pts[i] * train_pts[j]);
        (k, train_y, b, test_y)
    }

    #[test]
    fn sweep_produces_grid_order() {
        let (k, y, b, ty) = linear_problem();
        let grid = [0.1, 1.0];
        let res = sweep_c(&k, &y, &b, &ty, &grid, 1e-3);
        assert_eq!(res.points.len(), 2);
        assert_eq!(res.points[0].c, 0.1);
        assert_eq!(res.points[1].c, 1.0);
    }

    #[test]
    fn separable_problem_reaches_perfect_auc() {
        let (k, y, b, ty) = linear_problem();
        let res = sweep_c(&k, &y, &b, &ty, &default_c_grid(), 1e-3);
        let best = res.best_by_test_auc();
        assert_eq!(best.test.auc, 1.0);
        assert_eq!(best.train.auc, 1.0);
        assert_eq!(best.test.accuracy, 1.0);
    }

    #[test]
    fn default_grid_spans_paper_range() {
        let grid = default_c_grid();
        assert_eq!(*grid.first().unwrap(), 0.01);
        assert_eq!(*grid.last().unwrap(), 4.0);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }
}
