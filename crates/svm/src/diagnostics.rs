//! Spectral kernel diagnostics: the quantities the concentration
//! literature uses to explain Table III's failure mode.
//!
//! The paper observes that deep ansatze collapse the off-diagonal kernel
//! entries ("kernel concentration, which is known to cause model
//! untrainability", citing Thanasilp et al.) and that expressivity must
//! be balanced against generalization (citing Huang et al., "Power of
//! data in quantum machine learning"). This module implements the
//! standard diagnostics behind those citations so a practitioner can
//! quantify *why* a given ansatz configuration trains or does not:
//!
//! * spectrum of the Gram matrix (cyclic Jacobi eigensolver — no
//!   external linear-algebra dependency, consistent with the rest of the
//!   workspace),
//! * effective dimension (participation ratio of the spectrum),
//! * spectral entropy,
//! * kernel–target alignment,
//! * the geometric difference `g(K1 ‖ K2)` of Huang et al., which upper
//!   bounds how much better a model on `K2` can be than one on `K1`.

use crate::kernel::KernelMatrix;

/// Eigenvalues of a symmetric matrix via the cyclic Jacobi method,
/// returned in descending order.
///
/// The input is read as symmetric: entries `(i, j)` and `(j, i)` are
/// averaged. Gram matrices are symmetric by construction (up to tile
/// assembly jitter), so the averaging is a no-op in practice.
///
/// # Panics
/// Panics if the matrix is empty.
pub fn symmetric_eigenvalues(k: &KernelMatrix) -> Vec<f64> {
    let n = k.len();
    assert!(n > 0, "cannot eigendecompose an empty matrix");
    // Work on a dense symmetric copy.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = 0.5 * (k.get(i, j) + k.get(j, i));
        }
    }

    // Cyclic Jacobi: sweep all upper-triangle pivots, rotating each to
    // zero, until the off-diagonal mass is negligible.
    let off_norm = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += a[i * n + j] * a[i * n + j];
            }
        }
        s.sqrt()
    };
    let scale: f64 = (0..n).map(|i| a[i * n + i].abs()).fold(1.0, f64::max);
    let tol = 1e-14 * scale * n as f64;
    for _sweep in 0..60 {
        if off_norm(&a) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Classic Jacobi rotation angle.
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply G^T A G in place on rows/columns p and q.
                for i in 0..n {
                    let aip = a[i * n + p];
                    let aiq = a[i * n + q];
                    a[i * n + p] = c * aip - s * aiq;
                    a[i * n + q] = s * aip + c * aiq;
                }
                for j in 0..n {
                    let apj = a[p * n + j];
                    let aqj = a[q * n + j];
                    a[p * n + j] = c * apj - s * aqj;
                    a[q * n + j] = s * apj + c * aqj;
                }
            }
        }
    }

    let mut eigs: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eigs.sort_by(|x, y| y.partial_cmp(x).unwrap());
    eigs
}

/// Effective dimension of the kernel: the participation ratio
/// `(Σλ)² / Σλ²` of its spectrum. A concentrated kernel (K ≈ I) has
/// effective dimension ≈ n; a rank-1 kernel (all points identical) has
/// effective dimension ≈ 1. Eigenvalues below numerical noise are
/// clamped to zero.
pub fn effective_dimension(k: &KernelMatrix) -> f64 {
    let eigs = symmetric_eigenvalues(k);
    let floor = eigs[0].max(0.0) * 1e-14;
    let (mut sum, mut sq) = (0.0, 0.0);
    for &l in &eigs {
        let l = if l > floor { l } else { 0.0 };
        sum += l;
        sq += l * l;
    }
    if sq == 0.0 {
        0.0
    } else {
        sum * sum / sq
    }
}

/// Shannon entropy of the normalized spectrum, in nats. Zero for a
/// rank-1 kernel, `ln n` for the identity.
pub fn spectral_entropy(k: &KernelMatrix) -> f64 {
    let eigs = symmetric_eigenvalues(k);
    let total: f64 = eigs.iter().map(|&l| l.max(0.0)).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -eigs
        .iter()
        .filter_map(|&l| {
            let p = l.max(0.0) / total;
            (p > 0.0).then(|| p * p.ln())
        })
        .sum::<f64>()
}

/// Kernel–target alignment `⟨K, yyᵀ⟩_F / (‖K‖_F · ‖yyᵀ‖_F)` — how well
/// the kernel's geometry matches the labels. In `[-1, 1]`; higher means
/// the labels are easier to separate with this kernel.
///
/// # Panics
/// Panics if `labels.len()` does not match the kernel size.
pub fn kernel_target_alignment(k: &KernelMatrix, labels: &[f64]) -> f64 {
    let n = k.len();
    assert_eq!(labels.len(), n, "label count must match kernel size");
    let mut k_dot_y = 0.0;
    let mut k_norm_sq = 0.0;
    for i in 0..n {
        for j in 0..n {
            let kij = k.get(i, j);
            k_dot_y += kij * labels[i] * labels[j];
            k_norm_sq += kij * kij;
        }
    }
    // ‖yyᵀ‖_F = Σ y_i² for ±1 labels = n.
    let y_norm: f64 = labels.iter().map(|y| y * y).sum();
    if k_norm_sq == 0.0 || y_norm == 0.0 {
        return 0.0;
    }
    k_dot_y / (k_norm_sq.sqrt() * y_norm)
}

/// Geometric difference `g(K1 ‖ K2) = sqrt(‖ √K2 · K1⁻¹ · √K2 ‖_∞)` of
/// Huang et al. (Nat. Commun. 12, 2631), with `K1` regularized by
/// `lambda` before inversion. Both kernels must be the same size and are
/// trace-normalized to `n` first, as in the reference. `g ≈ 1` means the
/// kernels are geometrically equivalent; a large `g` means a model built
/// on `K2` can make predictions a model on `K1` cannot.
///
/// # Panics
/// Panics if the kernels differ in size or `lambda <= 0`.
pub fn geometric_difference(k1: &KernelMatrix, k2: &KernelMatrix, lambda: f64) -> f64 {
    let n = k1.len();
    assert_eq!(k2.len(), n, "kernel sizes must match");
    assert!(lambda > 0.0, "regularization must be positive");

    // Trace-normalize copies to trace n.
    let normalize = |k: &KernelMatrix| -> Vec<f64> {
        let trace: f64 = (0..n).map(|i| k.get(i, i)).sum();
        let scale = if trace > 0.0 { n as f64 / trace } else { 1.0 };
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = 0.5 * (k.get(i, j) + k.get(j, i)) * scale;
            }
        }
        out
    };
    let a1 = normalize(k1);
    let a2 = normalize(k2);

    // Power iteration for the largest eigenvalue of the symmetric PSD
    // operator M = √K2 (K1 + λI)⁻¹ √K2. We avoid forming √K2 and the
    // inverse explicitly: for the spectral norm it suffices to iterate
    // v ← K2 · solve(K1 + λI, v) — similar matrices share eigenvalues
    // (M is √K2 (K1+λ)⁻¹ √K2 ~ K2 (K1+λ)⁻¹), and the similar product has
    // the same spectrum with real non-negative eigenvalues.
    let solve_reg = |rhs: &[f64]| -> Vec<f64> {
        // Dense Cholesky-free solve: conjugate gradients on the SPD
        // matrix K1 + λI. Gram matrices are small (n ≤ few thousand).
        let matvec = |v: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; n];
            for i in 0..n {
                let mut acc = lambda * v[i];
                let row = &a1[i * n..(i + 1) * n];
                for (j, &m) in row.iter().enumerate() {
                    acc += m * v[j];
                }
                out[i] = acc;
            }
            out
        };
        let mut x = vec![0.0; n];
        let mut r = rhs.to_vec();
        let mut p = r.clone();
        let mut rs: f64 = r.iter().map(|v| v * v).sum();
        for _ in 0..4 * n {
            if rs.sqrt() < 1e-12 {
                break;
            }
            let ap = matvec(&p);
            let denom: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if denom.abs() < 1e-300 {
                break;
            }
            let alpha = rs / denom;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rs = rs_new;
        }
        x
    };

    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut eig = 0.0;
    for _ in 0..200 {
        let solved = solve_reg(&v);
        let mut w = vec![0.0; n];
        for i in 0..n {
            let row = &a2[i * n..(i + 1) * n];
            w[i] = row.iter().zip(&solved).map(|(m, s)| m * s).sum();
        }
        let norm: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 0.0;
        }
        let new_eig = norm;
        for x in &mut w {
            *x /= norm;
        }
        let delta = (new_eig - eig).abs();
        v = w;
        eig = new_eig;
        if delta < 1e-12 * eig.max(1.0) {
            break;
        }
    }
    eig.max(0.0).sqrt()
}

/// One-stop concentration report for a training kernel.
#[derive(Debug, Clone, Copy)]
pub struct ConcentrationReport {
    /// Mean off-diagonal entry (collapses toward 0 under concentration).
    pub off_diagonal_mean: f64,
    /// Variance of off-diagonal entries (collapses even faster).
    pub off_diagonal_variance: f64,
    /// Participation ratio of the spectrum (→ n under concentration).
    pub effective_dimension: f64,
    /// Spectral entropy in nats (→ ln n under concentration).
    pub spectral_entropy: f64,
    /// Kernel–target alignment (→ 1/√n under concentration).
    pub alignment: f64,
}

/// Computes all concentration diagnostics in one pass.
pub fn concentration_report(k: &KernelMatrix, labels: &[f64]) -> ConcentrationReport {
    ConcentrationReport {
        off_diagonal_mean: k.off_diagonal_mean(),
        off_diagonal_variance: k.off_diagonal_variance(),
        effective_dimension: effective_dimension(k),
        spectral_entropy: spectral_entropy(k),
        alignment: kernel_target_alignment(k, labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(n: usize) -> KernelMatrix {
        KernelMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    fn all_ones(n: usize) -> KernelMatrix {
        KernelMatrix::from_fn(n, |_, _| 1.0)
    }

    #[test]
    fn eigenvalues_of_identity_are_ones() {
        let eigs = symmetric_eigenvalues(&identity(6));
        for &l in &eigs {
            assert!((l - 1.0).abs() < 1e-12, "{eigs:?}");
        }
    }

    #[test]
    fn eigenvalues_of_rank_one_kernel() {
        // All-ones n x n has spectrum {n, 0, ..., 0}.
        let eigs = symmetric_eigenvalues(&all_ones(5));
        assert!((eigs[0] - 5.0).abs() < 1e-10, "{eigs:?}");
        for &l in &eigs[1..] {
            assert!(l.abs() < 1e-10, "{eigs:?}");
        }
    }

    #[test]
    fn eigenvalues_match_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let k = KernelMatrix::from_fn(2, |i, j| if i == j { 2.0 } else { 1.0 });
        let eigs = symmetric_eigenvalues(&k);
        assert!((eigs[0] - 3.0).abs() < 1e-12);
        assert!((eigs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let k = KernelMatrix::from_fn(7, |i, j| {
            let (fi, fj) = (i as f64 + 1.0, j as f64 + 1.0);
            (-((fi - fj) * (fi - fj)) / 8.0).exp()
        });
        let eigs = symmetric_eigenvalues(&k);
        let trace = 7.0; // unit diagonal
        assert!((eigs.iter().sum::<f64>() - trace).abs() < 1e-10);
        // Gaussian kernels are PSD.
        assert!(eigs.iter().all(|&l| l > -1e-10), "{eigs:?}");
    }

    #[test]
    fn effective_dimension_extremes() {
        assert!((effective_dimension(&identity(8)) - 8.0).abs() < 1e-9);
        assert!((effective_dimension(&all_ones(8)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_entropy_extremes() {
        assert!((spectral_entropy(&identity(8)) - (8.0f64).ln()).abs() < 1e-9);
        assert!(spectral_entropy(&all_ones(8)).abs() < 1e-9);
    }

    #[test]
    fn alignment_is_perfect_for_label_kernel() {
        // K = yy^T aligns exactly with y.
        let labels = [1.0, -1.0, 1.0, 1.0, -1.0];
        let k = KernelMatrix::from_fn(5, |i, j| labels[i] * labels[j]);
        let a = kernel_target_alignment(&k, &labels);
        assert!((a - 1.0).abs() < 1e-12, "alignment {a}");
    }

    #[test]
    fn alignment_of_identity_is_inverse_sqrt_n() {
        // <I, yy^T> = n, |I|_F = sqrt(n), |yy^T|_F = n -> 1/sqrt(n).
        let n = 9;
        let labels: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let a = kernel_target_alignment(&identity(n), &labels);
        assert!((a - 1.0 / (n as f64).sqrt()).abs() < 1e-12, "alignment {a}");
    }

    #[test]
    fn geometric_difference_of_kernel_with_itself_is_about_one() {
        let k = KernelMatrix::from_fn(6, |i, j| {
            let (fi, fj) = (i as f64, j as f64);
            (-((fi - fj) * (fi - fj)) / 4.0).exp()
        });
        let g = geometric_difference(&k, &k, 1e-6);
        // K (K + lambda)^-1 has top eigenvalue slightly below 1.
        assert!((0.9..=1.01).contains(&g), "g = {g}");
    }

    #[test]
    fn geometric_difference_detects_richer_kernel() {
        // K1 concentrated (near identity), K2 structured: a model on the
        // structured kernel can express functions the concentrated one
        // cannot, so g should be noticeably above 1.
        let k1 = identity(8);
        let k2 = KernelMatrix::from_fn(8, |i, j| if (i < 4) == (j < 4) { 1.0 } else { 0.0 });
        let g12 = geometric_difference(&k1, &k2, 1e-3);
        assert!(g12 > 1.2, "expected separation, g = {g12}");
    }

    #[test]
    fn concentration_report_tracks_collapse() {
        // A structured kernel vs a concentrated one: every diagnostic
        // must move in the documented direction.
        let structured = KernelMatrix::from_fn(8, |i, j| {
            if i == j {
                1.0
            } else if (i < 4) == (j < 4) {
                0.8
            } else {
                0.1
            }
        });
        let concentrated = KernelMatrix::from_fn(8, |i, j| if i == j { 1.0 } else { 0.001 });
        let labels: Vec<f64> = (0..8).map(|i| if i < 4 { 1.0 } else { -1.0 }).collect();
        let rs = concentration_report(&structured, &labels);
        let rc = concentration_report(&concentrated, &labels);
        assert!(rc.off_diagonal_mean < rs.off_diagonal_mean);
        assert!(rc.off_diagonal_variance < rs.off_diagonal_variance);
        assert!(rc.effective_dimension > rs.effective_dimension);
        assert!(rc.spectral_entropy > rs.spectral_entropy);
        assert!(rc.alignment < rs.alignment);
    }

    #[test]
    #[should_panic(expected = "label count must match")]
    fn alignment_rejects_wrong_label_count() {
        kernel_target_alignment(&identity(4), &[1.0, -1.0]);
    }
}
