//! # qk-svm
//!
//! The classical-ML substrate of the quantum-kernel pipeline:
//!
//! * [`kernel`] — dense Gram matrices and rectangular test blocks.
//! * [`smo`] — a from-scratch SMO solver for C-SVC on precomputed kernels.
//! * [`gaussian`] — the paper's classical baseline (eq. 9) with
//!   `alpha = 1/(m var(X))`.
//! * [`metrics`] — accuracy / precision / recall / ROC-AUC, plus F1,
//!   balanced accuracy, Matthews correlation and precision-recall curves.
//! * [`model_select`] — the `C in [0.01, 4]` regularization sweep.
//! * [`cv`] — stratified k-fold cross-validation on precomputed kernels.
//! * [`platt`] — probability calibration of SVM decision values.
//! * [`trainer`] — crash-safe SMO training: checkpointed warm-start, a
//!   budgeted kernel-row cache, and chaos-drilled recovery paths.
//! * [`diagnostics`] — spectral concentration diagnostics (effective
//!   dimension, kernel–target alignment, geometric difference).
//!
//! ## Example: train on a precomputed kernel and score it
//!
//! ```
//! use qk_svm::{train_svc, KernelMatrix, SmoParams};
//!
//! // A 4-point toy problem: two tight clusters.
//! let k = KernelMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 1.0 } else { 0.1 });
//! let labels = [1.0, 1.0, -1.0, -1.0];
//! let model = train_svc(&k, &labels, &SmoParams::with_c(1.0));
//! assert_eq!(model.predict(k.row(0)), 1.0);
//! assert_eq!(model.predict(k.row(3)), -1.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod diagnostics;
pub mod gaussian;
pub mod kernel;
pub mod metrics;
pub mod model_select;
pub mod platt;
pub mod smo;
pub mod trainer;

pub use cv::{cross_validate, select_c_by_cv, stratified_folds, CvResult, Fold};
pub use diagnostics::{
    concentration_report, effective_dimension, geometric_difference, kernel_target_alignment,
    spectral_entropy, symmetric_eigenvalues, ConcentrationReport,
};
pub use gaussian::{gaussian_block, gaussian_gram, scale_bandwidth};
pub use kernel::{KernelBlock, KernelMatrix, KernelSource};
pub use metrics::{
    average_precision, balanced_accuracy, f1_score, matthews_corrcoef, pr_curve, roc_auc,
    roc_curve, Metrics,
};
pub use model_select::{default_c_grid, sweep_c, SweepPoint, SweepResult};
pub use platt::{fit_platt, PlattCalibration};
pub use smo::{train_svc, train_svc_observed, SmoParams, TrainedSvm};
pub use trainer::{
    checkpoint_path, job_fingerprint, RowSource, TrainError, TrainOutcome, Trainer, TrainerConfig,
    TrainerStats,
};
